#!/usr/bin/env python
"""Repo-specific invariant linter: rules generic linters cannot express.

Every rule encodes a correctness invariant the codebase has adopted and
documented (``docs/STATIC_ANALYSIS.md``); each fires with a file:line and
the rule's name so CI summaries can count hits per rule.

========================  =====================================================
rule                      invariant
========================  =====================================================
raw-lambda-predicate      Predicates are declarative expressions
                          (``repro.plan.col``), never raw lambdas handed to
                          ``where``/``subset``/``select`` — lambdas are opaque
                          to the optimizer and to every engine's fast path.
                          The deprecated callable shims (which issue a
                          ``DeprecationWarning``) are the one blessed escape.
decode-in-fast-path       The column store's encoding fast paths must not
                          silently fall back to full decompression: any
                          ``.decode()`` / ``.to_dense()`` call in a fast-path
                          module needs an explicit ``# decode-ok: <reason>``
                          pragma on the same line.
unseeded-rng              All randomness is reproducible: no legacy global
                          ``np.random.*`` calls, and ``default_rng()`` must be
                          given a seed.
fragment-state-mutation   Per-node worker closures (``on_fragment``
                          consumers, ``work`` closures run by
                          ``run_on_nodes``) are pure: no ``nonlocal`` /
                          ``global`` rebinding, no ``self.attr`` mutation —
                          the threaded executor would race.
bare-except               No bare ``except:`` — it swallows KeyboardInterrupt
                          and SystemExit.
plan-dataclass-eq         ``Expression.__eq__`` is overloaded to *build* a
                          comparison AST node, so a dataclass with an
                          ``Expression``-typed field must declare ``eq=False``
                          or its generated ``__eq__`` silently returns a
                          truthy AST node for any operand.
========================  =====================================================

Usage::

    python tools/lint_invariants.py [paths ...]      # default: src benchmarks tools
    python tools/lint_invariants.py --self-test      # prove every rule fires
    python tools/lint_invariants.py --summary out.md # append a rule-hit table

Exit status 0 when clean, 1 on violations (or a failed self-test).
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default lint targets, relative to the repo root.
DEFAULT_PATHS = ("src", "benchmarks", "tools")

#: Directories whose contents are deliberate rule triggers, never linted
#: by default (the self-test runs the rules on them directly).
FIXTURE_DIR = REPO_ROOT / "tests" / "data" / "lint_fixtures"

#: Methods that accept predicates: a raw lambda handed to any of these is
#: invisible to the optimizer (rule ``raw-lambda-predicate``).
PREDICATE_METHODS = frozenset({"where", "subset", "select"})

#: Module suffixes forming the column store's encoding fast path — the
#: modules where a stray ``decode()`` defeats the architecture's point.
FAST_PATH_SUFFIXES = (
    "colstore/compression.py",
    "colstore/column.py",
    "colstore/query.py",
    "colstore/planner.py",
)

#: The pragma blessing a deliberate decompression fallback.
DECODE_PRAGMA = "# decode-ok:"

#: Parameter/keyword names marking a callable as per-node worker code.
WORKER_KEYWORDS = frozenset({"on_fragment"})

#: Nested function names conventionally dispatched to cluster nodes.
WORKER_NAMES = frozenset({"work"})

ALL_RULES = (
    "raw-lambda-predicate",
    "decode-in-fast-path",
    "unseeded-rng",
    "fragment-state-mutation",
    "bare-except",
    "plan-dataclass-eq",
)


@dataclass(frozen=True)
class Violation:
    """One rule hit: where, which rule, and a human-readable reason."""

    path: Path
    line: int
    rule: str
    message: str

    def render(self) -> str:
        try:
            shown = self.path.relative_to(REPO_ROOT)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------- #
# Rule helpers
# --------------------------------------------------------------------------- #

def _warns_deprecation(node: ast.AST) -> bool:
    """Does this function body issue a DeprecationWarning (a blessed shim)?"""
    for inner in ast.walk(node):
        if isinstance(inner, ast.Call):
            names = {a.id for a in ast.walk(inner) if isinstance(a, ast.Name)}
            names |= {a.attr for a in ast.walk(inner) if isinstance(a, ast.Attribute)}
            if "warn" in names and "DeprecationWarning" in names:
                return True
    return False


def _annotation_names(annotation: ast.AST | None) -> set[str]:
    """Every bare identifier mentioned in an annotation expression."""
    if annotation is None:
        return set()
    names: set[str] = set()
    for inner in ast.walk(annotation):
        if isinstance(inner, ast.Name):
            names.add(inner.id)
        elif isinstance(inner, ast.Constant) and isinstance(inner.value, str):
            # String annotations ("Expression") — parse and recurse.
            try:
                parsed = ast.parse(inner.value, mode="eval")
            except SyntaxError:
                continue
            names |= _annotation_names(parsed.body)
    return names


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return decorator
    return None


def _declares_eq_false(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "eq" and isinstance(keyword.value, ast.Constant):
            return keyword.value.value is False
    return False


def _is_np_random_attribute(func: ast.AST) -> str | None:
    """``np.random.X`` / ``numpy.random.X`` → ``X``; else None."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if (isinstance(value, ast.Attribute) and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in {"np", "numpy"}):
        return func.attr
    return None


# --------------------------------------------------------------------------- #
# The checker
# --------------------------------------------------------------------------- #

class _Checker(ast.NodeVisitor):
    def __init__(self, path: Path, source_lines: list[str]):
        self.path = path
        self.lines = source_lines
        self.violations: list[Violation] = []
        self.is_fast_path = str(path).replace("\\", "/").endswith(FAST_PATH_SUFFIXES)
        self._shim_depth = 0       # > 0 inside a blessed DeprecationWarning shim
        self._worker_depth = 0     # > 0 inside a per-node worker closure
        self._worker_names: set[str] = set()

    def _hit(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            Violation(self.path, getattr(node, "lineno", 0), rule, message)
        )

    def check(self, tree: ast.Module) -> list[Violation]:
        # Pass 1: names bound to on_fragment= anywhere in the module are
        # workers wherever they are defined.
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if (keyword.arg in WORKER_KEYWORDS
                            and isinstance(keyword.value, ast.Name)):
                        self._worker_names.add(keyword.value.id)
        self.visit(tree)
        return self.violations

    # -- function scopes -----------------------------------------------------

    def _visit_function(self, node) -> None:
        is_shim = _warns_deprecation(node)
        is_worker = (node.name in WORKER_NAMES
                     or node.name in self._worker_names)
        self._shim_depth += is_shim
        self._worker_depth += is_worker
        self.generic_visit(node)
        self._shim_depth -= is_shim
        self._worker_depth -= is_worker

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- rules ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # raw-lambda-predicate
        if (isinstance(func, ast.Attribute) and func.attr in PREDICATE_METHODS
                and self._shim_depth == 0):
            for argument in [*node.args, *(k.value for k in node.keywords)]:
                if isinstance(argument, ast.Lambda):
                    self._hit(
                        node, "raw-lambda-predicate",
                        f"raw lambda passed to .{func.attr}(); build a "
                        "declarative expression with repro.plan.col instead",
                    )
        # decode-in-fast-path
        if (self.is_fast_path and isinstance(func, ast.Attribute)
                and func.attr in {"decode", "to_dense"} and not node.args):
            line = self.lines[node.lineno - 1] if node.lineno <= len(self.lines) else ""
            if DECODE_PRAGMA not in line:
                self._hit(
                    node, "decode-in-fast-path",
                    f".{func.attr}() decompresses the whole column in an "
                    f"encoding fast-path module; bless deliberate fallbacks "
                    f"with '{DECODE_PRAGMA} <reason>'",
                )
        # unseeded-rng
        legacy = _is_np_random_attribute(func)
        if legacy is not None and legacy not in {"default_rng", "Generator"}:
            self._hit(
                node, "unseeded-rng",
                f"legacy global np.random.{legacy}() is unseeded state; use "
                "np.random.default_rng(seed)",
            )
        if ((legacy == "default_rng"
             or (isinstance(func, ast.Name) and func.id == "default_rng"))
                and not node.args and not node.keywords):
            self._hit(
                node, "unseeded-rng",
                "default_rng() without a seed is irreproducible; pass an "
                "explicit seed",
            )
        self.generic_visit(node)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        if self._worker_depth:
            self._hit(
                node, "fragment-state-mutation",
                f"nonlocal {', '.join(node.names)} inside a per-node worker "
                "— rebinding driver state from worker threads races; return "
                "the value instead",
            )

    def visit_Global(self, node: ast.Global) -> None:
        if self._worker_depth:
            self._hit(
                node, "fragment-state-mutation",
                f"global {', '.join(node.names)} inside a per-node worker — "
                "mutating module state from worker threads races",
            )

    def _check_worker_target(self, target: ast.AST, node: ast.AST) -> None:
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            self._hit(
                node, "fragment-state-mutation",
                f"assignment to self.{target.attr} inside a per-node worker "
                "— mutating shared driver state from worker threads races",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._worker_depth:
            for target in node.targets:
                self._check_worker_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._worker_depth:
            self._check_worker_target(node.target, node)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._hit(
                node, "bare-except",
                "bare 'except:' swallows KeyboardInterrupt/SystemExit; catch "
                "Exception (or narrower)",
            )
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        decorator = _dataclass_decorator(node)
        if decorator is not None and not _declares_eq_false(decorator):
            for statement in node.body:
                if (isinstance(statement, ast.AnnAssign)
                        and "Expression" in _annotation_names(statement.annotation)):
                    field = (statement.target.id
                             if isinstance(statement.target, ast.Name) else "?")
                    self._hit(
                        node, "plan-dataclass-eq",
                        f"dataclass {node.name} has Expression-typed field "
                        f"{field!r} but no eq=False — the generated __eq__ "
                        "would delegate to Expression.__eq__, which builds a "
                        "(truthy) AST node instead of comparing",
                    )
                    break
        self.generic_visit(node)


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #

def lint_file(path: Path) -> list[Violation]:
    """Run every rule over one Python source file."""
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [Violation(path, error.lineno or 0, "syntax-error", str(error.msg))]
    return _Checker(path, source.splitlines()).check(tree)


def iter_python_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if FIXTURE_DIR not in p.parents
            )
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(paths: list[Path]) -> tuple[list[Violation], int]:
    violations: list[Violation] = []
    files = iter_python_files(paths)
    for file in files:
        violations.extend(lint_file(file))
    return violations, len(files)


def rule_counts(violations: list[Violation]) -> dict[str, int]:
    counts = {rule: 0 for rule in ALL_RULES}
    for violation in violations:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    return counts


def write_summary(path: Path, violations: list[Violation], n_files: int) -> None:
    """Append a markdown rule-hit table (the CI job summary)."""
    lines = [
        "## Invariant linter",
        "",
        f"{n_files} files checked, {len(violations)} violation(s).",
        "",
        "| rule | hits |",
        "| --- | ---: |",
    ]
    for rule, count in rule_counts(violations).items():
        lines.append(f"| `{rule}` | {count} |")
    lines.append("")
    with path.open("a") as handle:
        handle.write("\n".join(lines) + "\n")


# --------------------------------------------------------------------------- #
# Self-test: prove every rule fires on its fixture and spares the blessed form
# --------------------------------------------------------------------------- #

def run_self_test() -> int:
    """Each fixture file declares its expected hits in a header comment."""
    failures: list[str] = []
    fixtures = sorted(FIXTURE_DIR.rglob("*.py"))
    if not fixtures:
        print(f"self-test: no fixtures under {FIXTURE_DIR}", file=sys.stderr)
        return 1
    covered: set[str] = set()
    for fixture in fixtures:
        expected = _expected_rules(fixture)
        got = [v.rule for v in lint_file(fixture)]
        covered.update(got)
        if sorted(got) != sorted(expected):
            failures.append(
                f"{fixture.name}: expected rules {sorted(expected)}, "
                f"linter fired {sorted(got)}"
            )
    missing = set(ALL_RULES) - covered
    if missing:
        failures.append(f"no fixture exercises rule(s): {sorted(missing)}")
    for failure in failures:
        print(f"self-test FAILED: {failure}", file=sys.stderr)
    if not failures:
        print(f"self-test OK: {len(fixtures)} fixtures, "
              f"all {len(ALL_RULES)} rules fire and blessed forms pass")
    return 1 if failures else 0


def _expected_rules(fixture: Path) -> list[str]:
    """Parse ``# expect: rule, rule`` headers (one per expected hit)."""
    expected: list[str] = []
    for line in fixture.read_text().splitlines():
        if line.startswith("# expect:"):
            expected.extend(
                name.strip() for name in line[len("# expect:"):].split(",")
                if name.strip()
            )
    return expected


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to lint (default: %(default)s)")
    parser.add_argument("--self-test", action="store_true",
                        help="run every rule against its fixtures and exit")
    parser.add_argument("--summary", type=Path, default=None,
                        help="append a markdown rule-hit table to this file")
    options = parser.parse_args(argv)

    if options.self_test:
        return run_self_test()

    paths = [REPO_ROOT / p if not Path(p).is_absolute() else Path(p)
             for p in options.paths]
    violations, n_files = lint_paths(paths)
    for violation in violations:
        print(violation.render())
    if options.summary is not None:
        write_summary(options.summary, violations, n_files)
    if violations:
        print(f"\n{len(violations)} violation(s) in {n_files} files",
              file=sys.stderr)
        return 1
    print(f"{n_files} files clean ({len(ALL_RULES)} rules)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
