"""Docs gate: every relative markdown link in the repo's docs must resolve.

Scans ``README.md``, everything under ``docs/`` and the in-tree package
READMEs for inline markdown links ``[text](target)`` and verifies that
each relative target exists on disk (external ``http(s)``/``mailto``
links and pure in-page ``#anchors`` are skipped; a ``path#anchor``
target is checked for the path only).

    python tools/check_docs.py

Exit status 0 when every link resolves, 1 otherwise (one line per broken
link).  CI runs this in the ``docs`` job next to the doctest pass.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link — the target stops at the first ')' or whitespace,
#: which is exactly the subset these docs use (no titles, no angle brackets).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The documentation surface the gate covers.
DOC_GLOBS = (
    "README.md",
    "docs/**/*.md",
    "src/repro/**/README.md",
)


def broken_links(path: Path) -> list[str]:
    """Return one message per unresolvable relative link in ``path``."""
    failures = []
    for match in LINK.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:  # pure in-page anchor
            continue
        if not (path.parent / target).resolve().exists():
            failures.append(
                f"{path.relative_to(REPO_ROOT)}: broken link -> {match.group(1)}"
            )
    return failures


def main() -> int:
    documents = sorted(
        {doc for pattern in DOC_GLOBS for doc in REPO_ROOT.glob(pattern)}
    )
    if not documents:
        print("no documentation files found — nothing to check", file=sys.stderr)
        return 1
    failures: list[str] = []
    for document in documents:
        failures.extend(broken_links(document))
    checked = ", ".join(str(d.relative_to(REPO_ROOT)) for d in documents)
    print(f"checked {len(documents)} documents: {checked}")
    if failures:
        print(f"\nFAIL: {len(failures)} broken link(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("OK: all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
