#!/usr/bin/env python3
"""Gate the optimizer's cost calibration from a fuzz report.

Reads the calibration report ``python -m repro.fuzz`` writes, recomputes
the q-error (``max(p+1, o+1) / min(p+1, o+1)``) of every record, buckets
row-count errors by structural predicate class, and fails when any
bucket's median or p90 exceeds its limit — i.e. when the selectivity
model has drifted from what the engines actually observe.  Shuffle-byte
predictions (the MapReduce bridge estimator) are gated as one bucket.

The limits are deliberately loose: the estimator is a structural model
with coarse statistics, so q-errors of 2–4 are normal.  What the gate
catches is *systematic* miscalibration — e.g. a selectivity forced to 1.0
multiplies every selective plan's q-error by 1/selectivity and blows the
median immediately (``tests/test_fuzz.py`` proves the trip-wire works).

Usage: python tools/check_cost_calibration.py [--report fuzz_calibration.json]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.fuzz.calibration import load_report  # noqa: E402

#: Per-bucket (median, p90) q-error limits for row-count predictions.
#: ``default`` covers predicate classes without an explicit entry.
ROW_LIMITS: dict[str, tuple[float, float]] = {
    "default": (8.0, 100.0),
}

#: (median, p90) q-error limits for shuffle-byte predictions.
SHUFFLE_LIMITS: tuple[float, float] = (8.0, 32.0)

#: The gate refuses to pass on a trivially small sample.
MIN_RECORDS = 10


def check(report_path: pathlib.Path) -> int:
    meta, records = load_report(report_path)
    gradeable = [r for r in records if r.rows_q_error() is not None]
    print(f"calibration report: {report_path} "
          f"({len(records)} records, {len(gradeable)} gradeable, meta={meta})")
    if len(gradeable) < MIN_RECORDS:
        print(f"FAIL: only {len(gradeable)} gradeable records "
              f"(need >= {MIN_RECORDS})")
        return 1

    failures = []
    by_class: dict[str, list[float]] = {}
    for record in gradeable:
        for kind in (record.classes or ["none"]):
            by_class.setdefault(kind, []).append(record.rows_q_error())
    for kind, errors in sorted(by_class.items()):
        median = float(np.median(errors))
        p90 = float(np.percentile(errors, 90))
        limit_median, limit_p90 = ROW_LIMITS.get(kind, ROW_LIMITS["default"])
        status = "ok"
        if median > limit_median or p90 > limit_p90:
            status = "FAIL"
            failures.append(
                f"rows[{kind}]: median_q={median:.2f} (limit {limit_median}), "
                f"p90_q={p90:.2f} (limit {limit_p90})"
            )
        print(f"  rows[{kind:>10}] n={len(errors):<4} median_q={median:.2f} "
              f"p90_q={p90:.2f} [{status}]")

    shuffle_errors = [r.shuffle_q_error() for r in records
                      if r.shuffle_q_error() is not None]
    if shuffle_errors:
        median = float(np.median(shuffle_errors))
        p90 = float(np.percentile(shuffle_errors, 90))
        limit_median, limit_p90 = SHUFFLE_LIMITS
        status = "ok"
        if median > limit_median or p90 > limit_p90:
            status = "FAIL"
            failures.append(
                f"shuffle_bytes: median_q={median:.2f} (limit {limit_median}), "
                f"p90_q={p90:.2f} (limit {limit_p90})"
            )
        print(f"  shuffle_bytes  n={len(shuffle_errors):<4} median_q={median:.2f} "
              f"p90_q={p90:.2f} [{status}]")

    if failures:
        print("\nCost calibration gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        worst = max(gradeable, key=lambda r: r.rows_q_error())
        print(f"\nworst record (seed={worst.seed}, shape={worst.shape}, "
              f"q={worst.rows_q_error():.1f}):")
        print(worst.explain)
        return 1
    print("\nCost calibration gate passed.")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", default="fuzz_calibration.json",
                        help="calibration report path (from python -m repro.fuzz)")
    args = parser.parse_args(argv)
    return check(pathlib.Path(args.report))


if __name__ == "__main__":
    sys.exit(main())
