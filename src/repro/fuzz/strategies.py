"""Hypothesis strategies over the fuzz grammar.

The grammar itself lives in :mod:`repro.fuzz.generate`; this module only
supplies a :class:`Chooser` whose decisions are hypothesis draws, so the
*same* generator yields shrinkable cases: when a property fails, hypothesis
minimises the draw sequence, which walks the grammar toward fewer filters,
smaller literal pools, and the simplest failing shape.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.fuzz.generate import Chooser, FuzzCase, FuzzSchema, generate_case


class DrawChooser(Chooser):
    """Grammar decisions as hypothesis draws (shrink-friendly)."""

    def __init__(self, draw):
        self.draw = draw

    def choice(self, options):
        return self.draw(st.sampled_from(list(options)))

    def randint(self, low: int, high: int) -> int:
        return self.draw(st.integers(min_value=low, max_value=high))

    def chance(self, probability: float) -> bool:
        # The probability is a sampling weight for the random driver;
        # hypothesis explores both branches and shrinks toward False —
        # i.e. toward fewer optional grammar parts.
        return self.draw(st.booleans())


@st.composite
def fuzz_cases(draw, schema: FuzzSchema) -> FuzzCase:
    """One random-but-valid :class:`FuzzCase` over the given schema."""
    return generate_case(DrawChooser(draw), schema)
