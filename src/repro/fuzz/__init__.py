"""Differential fuzzing of the shared plan layer across every engine.

The packages under here generate random-but-valid expression ASTs and
logical plans over the GenBase schemas, execute each plan on all five
engine families *and* an unoptimized numpy reference, and assert the
results agree — byte-identical where the engine matrix guarantees it,
last-ulp-tolerant where :mod:`repro.fuzz.tolerances` documents a float
reassociation.  Every run also records the optimizer's cardinality
predictions (and the MapReduce bridge's shuffle-byte predictions) next to
the observed counters, feeding the cost-calibration gate in
``tools/check_cost_calibration.py``.

Entry points:

- ``python -m repro.fuzz`` — seed-driven fuzz loop (the CI job).
- ``python -m repro.fuzz.repro <seed>`` — replay one case, or a shrunken
  failure artifact, with full diagnostics.
- :mod:`repro.fuzz.strategies` — hypothesis strategies for the property
  tests in ``tests/test_fuzz.py``.
"""

from repro.fuzz.generate import FuzzCase, MutationOp, generate_case, lower_mutations
from repro.fuzz.harness import FuzzHarness
from repro.fuzz.tolerances import (
    EXACT,
    MAHOUT_FLOAT_FIELDS,
    ULP,
    Tolerance,
    aggregate_tolerance,
    assert_values_match,
    summary_tolerance,
)

__all__ = [
    "EXACT",
    "MAHOUT_FLOAT_FIELDS",
    "ULP",
    "FuzzCase",
    "FuzzHarness",
    "MutationOp",
    "Tolerance",
    "aggregate_tolerance",
    "assert_values_match",
    "generate_case",
    "lower_mutations",
    "summary_tolerance",
]
