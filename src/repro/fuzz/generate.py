"""The fuzz grammar: random-but-valid expressions and plans.

One grammar, two drivers.  Every decision the generator makes goes through
a tiny :class:`Chooser` interface, so the same code yields

- seed-reproducible cases for the CLI (``RandomChooser`` wraps
  ``random.Random(seed)`` — ``python -m repro.fuzz.repro <seed>`` replays
  any case bit for bit), and
- shrinkable cases for the property tests (:mod:`repro.fuzz.strategies`
  wraps hypothesis ``draw`` calls, so failures minimise structurally).

The grammar is the *portable* subset of the plan algebra — shapes every
engine family executes (see ``docs/FUZZING.md`` for the admission table):

- **meta**: ``[Project] Filter* (Scan(meta-table))`` — compared as sorted
  id sets on all six executors.
- **aggregate** / **pivot**: the GenBase join spine
  ``terminal(Project(Filter(Join(meta, microarray)), EXPRESSION_TRIPLE))``
  with metadata predicates (and, optionally, an ``expression_value`` cell
  predicate, which excludes the array DBMS — its empty-group labelling
  legitimately differs).
- **sample**: ``Sample(Filter*(Scan(meta-table)))`` — column store versus
  reference only; the engines' documented sampling semantics differ.
- **approx**: ``ApproxAggregate(Filter*(Scan(meta-table)))`` with a
  sketch-backed kind (``approx_distinct`` / ``approx_quantile``) — column
  store versus the reference's *exact* answer, within the per-sketch
  relative-error bound in :mod:`repro.fuzz.tolerances`.

Division and ``Opaque`` predicates stay out: division is partial (the row
store raises on a zero divisor mid-scan) and opaque callables cannot be
serialised into failure artifacts.

**Mutation preludes.**  Any non-``sample`` case may additionally carry a
short sequence of :class:`MutationOp` writes — appends, deletes, a
compaction — applied to the case's meta table through the column store's
delta tier *before* the plan runs.  Mutated cases compare the column
store (optimized and unoptimized) against the reference interpreter
only: the other engine families load the pristine dataset once and have
no write path.  ``sample`` is excluded because the drawn row set is a
function of physical row positions, which compaction legitimately
renumbers.  Ops are lowered to concrete arrays by
:func:`lower_mutations`, deterministically from each op's seed, so both
sides replay the identical write history.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.core.queries import EXPRESSION_TRIPLE
from repro.fuzz.serialize import plan_from_json, plan_to_json
from repro.plan import (
    Aggregate,
    ApproxAggregate,
    Expression,
    Filter,
    Join,
    Pivot,
    PlanNode,
    Project,
    Sample,
    Scan,
    col,
)

#: Meta table → its id (join/compare key) column.
META_KEYS = {"patients": "patient_id", "genes": "gene_id"}

#: Aggregate functions in the portable grammar.
AGGREGATE_FUNCTIONS = ("count", "sum", "mean", "min", "max")

#: Comparison symbols the grammar draws from.
_SYMBOLS = ("=", "<>", "<", "<=", ">", ">=")

#: How many distinct observed values to keep per column as literal pool.
_VALUE_POOL = 24


class Chooser:
    """The decision interface the grammar is written against."""

    def choice(self, options):  # pragma: no cover - interface
        raise NotImplementedError

    def randint(self, low: int, high: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def chance(self, probability: float) -> bool:  # pragma: no cover
        raise NotImplementedError


class RandomChooser(Chooser):
    """Seed-reproducible decisions from ``random.Random``."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def choice(self, options):
        return self.rng.choice(list(options))

    def randint(self, low: int, high: int) -> int:
        return self.rng.randint(low, high)

    def chance(self, probability: float) -> bool:
        return self.rng.random() < probability


@dataclass
class ColumnPool:
    """Observed values of one column, the grammar's literal source."""

    name: str
    values: list  # up to _VALUE_POOL distinct observed values, sorted
    is_float: bool


@dataclass
class FuzzSchema:
    """Per-table literal pools derived from the actual dataset.

    Drawing literals from *observed* values keeps single predicates
    satisfiable (selectivity neither pinned at 0 nor 1), which is what
    makes the calibration records informative.
    """

    tables: dict[str, dict[str, np.ndarray]]
    pools: dict[str, list[ColumnPool]]

    @classmethod
    def from_tables(cls, tables: dict[str, dict[str, np.ndarray]]) -> "FuzzSchema":
        pools: dict[str, list[ColumnPool]] = {}
        for table, key in META_KEYS.items():
            pools[table] = []
            for name, values in tables[table].items():
                if name == key:
                    continue
                distinct = np.unique(values)
                step = max(1, len(distinct) // _VALUE_POOL)
                sample = [v.item() for v in distinct[::step][:_VALUE_POOL]]
                pools[table].append(ColumnPool(
                    name, sample, is_float=distinct.dtype.kind == "f"
                ))
        value = np.unique(tables["microarray"]["expression_value"])
        step = max(1, len(value) // _VALUE_POOL)
        pools["microarray"] = [ColumnPool(
            "expression_value", [v.item() for v in value[::step][:_VALUE_POOL]],
            is_float=True,
        )]
        return cls(tables, pools)


@dataclass
class MutationOp:
    """One write applied through the delta tier before the plan runs.

    The op is symbolic: ``seed`` fully determines the concrete appended
    rows / deleted ids once :func:`lower_mutations` resolves it against
    the dataset, so an op serialises as four scalars and replays bit for
    bit on both the column store and the reference interpreter.
    """

    kind: str    # append | delete | compact
    table: str   # the meta table mutated (the case's filter table)
    seed: int    # drives the lowered rows/ids
    count: int   # rows appended / ids deleted (ignored by compact)

    def to_json(self) -> dict:
        return {"kind": self.kind, "table": self.table,
                "seed": self.seed, "count": self.count}

    @classmethod
    def from_json(cls, data: dict) -> "MutationOp":
        return cls(kind=data["kind"], table=data["table"],
                   seed=data["seed"], count=data["count"])


@dataclass
class FuzzCase:
    """One generated differential test case."""

    shape: str                 # meta | aggregate | pivot | sample
    plan: PlanNode
    table: str                 # the meta table the case filters
    key: str                   # the id column compared for meta/sample shapes
    has_value_predicate: bool  # excludes the array DBMS when True
    seed: int | None = None    # set by the seed-driven CLI path
    mutations: tuple[MutationOp, ...] = field(default=())  # write prelude

    def to_json(self) -> dict:
        return {
            "shape": self.shape,
            "plan": plan_to_json(self.plan),
            "table": self.table,
            "key": self.key,
            "has_value_predicate": self.has_value_predicate,
            "seed": self.seed,
            "mutations": [op.to_json() for op in self.mutations],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FuzzCase":
        return cls(
            shape=data["shape"],
            plan=plan_from_json(data["plan"]),
            table=data["table"],
            key=data["key"],
            has_value_predicate=data["has_value_predicate"],
            seed=data.get("seed"),
            # Absent in artifacts predating the mutation prelude.
            mutations=tuple(MutationOp.from_json(op)
                            for op in data.get("mutations", [])),
        )


def _leaf(chooser: Chooser, pool: ColumnPool) -> Expression:
    """One column-vs-literal predicate drawn from the observed values."""
    column = col(pool.name)
    if not pool.is_float and chooser.chance(0.3):
        count = chooser.randint(1, min(4, len(pool.values)))
        values = sorted({chooser.choice(pool.values) for _ in range(count)})
        return column.isin(values)
    symbol = chooser.choice(_SYMBOLS if not pool.is_float else ("<", "<=", ">", ">="))
    value = chooser.choice(pool.values)
    if symbol == "=":
        return column == value
    if symbol == "<>":
        return column != value
    if symbol == "<":
        return column < value
    if symbol == "<=":
        return column <= value
    if symbol == ">":
        return column > value
    return column >= value


def _predicate(chooser: Chooser, pools: list[ColumnPool]) -> Expression:
    """A depth-≤2 predicate: leaf, negation, or a binary and/or."""
    first = _leaf(chooser, chooser.choice(pools))
    form = chooser.choice(("leaf", "leaf", "not", "and", "or"))
    if form == "leaf":
        return first
    if form == "not":
        return ~first
    second = _leaf(chooser, chooser.choice(pools))
    return (first & second) if form == "and" else (first | second)


def _meta_filters(chooser: Chooser, schema: FuzzSchema, table: str,
                  node: PlanNode, max_filters: int) -> PlanNode:
    for _ in range(chooser.randint(0, max_filters)):
        node = Filter(node, _predicate(chooser, schema.pools[table]))
    return node


def generate_case(chooser: Chooser, schema: FuzzSchema) -> FuzzCase:
    """Draw one case from the grammar (plan first, then a write prelude).

    Mutation decisions are drawn strictly *after* the plan, so seeds that
    predate the mutation prelude still generate the exact same plan — the
    prelude only appends to the decision stream.
    """
    case = _generate_plan(chooser, schema)
    if case.shape != "sample" and chooser.chance(0.35):
        case.mutations = tuple(
            MutationOp(
                kind=chooser.choice(("append", "append", "delete", "compact")),
                table=case.table,
                seed=chooser.randint(0, 2**20),
                count=chooser.randint(1, 6),
            )
            for _ in range(chooser.randint(1, 3))
        )
    return case


def _generate_plan(chooser: Chooser, schema: FuzzSchema) -> FuzzCase:
    """Draw one plan-only case from the grammar."""
    shape = chooser.choice(
        ("meta", "meta", "aggregate", "aggregate", "pivot", "sample", "approx")
    )
    table = chooser.choice(sorted(META_KEYS))
    key = META_KEYS[table]
    if shape == "approx":
        node = _meta_filters(chooser, schema, table, Scan(table), max_filters=2)
        kind = chooser.choice(("approx_distinct", "approx_quantile"))
        value = chooser.choice((key, chooser.choice(schema.pools[table]).name))
        if kind == "approx_quantile":
            plan = ApproxAggregate(node, value, kind,
                                   quantile=chooser.randint(1, 19) / 20.0)
        else:
            plan = ApproxAggregate(node, value, kind)
        return FuzzCase(shape, plan, table, key, has_value_predicate=False)
    if shape == "meta":
        node = _meta_filters(chooser, schema, table, Scan(table), max_filters=2)
        if chooser.chance(0.3):
            other = chooser.choice(schema.pools[table]).name
            node = Project(node, (key, other))
        return FuzzCase(shape, node, table, key, has_value_predicate=False)
    if shape == "sample":
        node = _meta_filters(chooser, schema, table, Scan(table), max_filters=1)
        fraction = chooser.randint(1, 18) / 20.0
        node = Sample(node, fraction, seed=chooser.randint(0, 7))
        return FuzzCase(shape, node, table, key, has_value_predicate=False)
    # aggregate / pivot: the GenBase join spine.
    joined: PlanNode = Join(Scan(table), Scan("microarray"), key, key)
    for _ in range(chooser.randint(0, 2)):
        joined = Filter(joined, _predicate(chooser, schema.pools[table]))
    has_value_predicate = chooser.chance(0.25)
    if has_value_predicate:
        joined = Filter(joined, _leaf(chooser, schema.pools["microarray"][0]))
    child = Project(joined, EXPRESSION_TRIPLE)
    if shape == "aggregate":
        group_by = chooser.choice(("patient_id", "gene_id"))
        function = chooser.choice(AGGREGATE_FUNCTIONS)
        plan: PlanNode = Aggregate(child, group_by, "expression_value", function)
    else:
        plan = Pivot(child, "patient_id", "gene_id", "expression_value")
    return FuzzCase(shape, plan, table, key, has_value_predicate)


def case_from_seed(seed: int, schema: FuzzSchema) -> FuzzCase:
    """The CLI path: one case, fully determined by one integer seed."""
    case = generate_case(RandomChooser(seed), schema)
    case.seed = seed
    return case


def lower_mutations(
    mutations: tuple[MutationOp, ...],
    tables: dict[str, dict[str, np.ndarray]],
    schema: FuzzSchema,
) -> list[tuple[str, str, np.ndarray | dict[str, np.ndarray] | None]]:
    """Resolve symbolic mutation ops to concrete delta-API steps.

    Returns ``(kind, table, payload)`` triples: an append's payload is the
    column → array mapping handed to ``ColumnStore.append``, a delete's is
    the int64 logical row ids, a compact's is ``None``.  Lowering tracks
    the evolving logical row space exactly as the delta tier does —
    appends extend it, deletes leave it (logical ids are stable until
    compaction), compaction renumbers survivors densely — so deletes only
    ever target currently-live ids and always leave at least one live row
    (an empty meta table would make approx shapes degenerate rather than
    interesting).

    Appended rows get fresh key values past the dataset's maximum (new
    entities, joining to no microarray cell) and attribute values drawn
    from the schema's observed-value pools, keeping the case's predicates
    satisfiable over the new rows.
    """
    steps: list[tuple[str, str, np.ndarray | dict[str, np.ndarray] | None]] = []
    live = {name: np.arange(len(next(iter(columns.values()))), dtype=np.int64)
            for name, columns in tables.items()}
    logical_total = {name: len(positions) for name, positions in live.items()}
    next_key = {name: int(np.max(tables[name][key])) + 1
                for name, key in META_KEYS.items()}
    for op in mutations:
        rng = np.random.default_rng(op.seed)
        if op.kind == "append":
            key = META_KEYS[op.table]
            start = next_key[op.table]
            rows: dict[str, np.ndarray] = {
                key: np.arange(start, start + op.count)
                .astype(tables[op.table][key].dtype)
            }
            for pool in schema.pools[op.table]:
                drawn = rng.choice(np.asarray(pool.values), size=op.count)
                rows[pool.name] = drawn.astype(tables[op.table][pool.name].dtype)
            next_key[op.table] = start + op.count
            first = logical_total[op.table]
            live[op.table] = np.concatenate([
                live[op.table],
                np.arange(first, first + op.count, dtype=np.int64),
            ])
            logical_total[op.table] = first + op.count
            steps.append(("append", op.table, rows))
        elif op.kind == "delete":
            alive = live[op.table]
            count = min(op.count, len(alive) - 1)
            if count <= 0:
                continue
            ids = np.sort(rng.choice(alive, size=count, replace=False))
            live[op.table] = np.setdiff1d(alive, ids)
            steps.append(("delete", op.table, ids))
        elif op.kind == "compact":
            live[op.table] = np.arange(len(live[op.table]), dtype=np.int64)
            logical_total[op.table] = len(live[op.table])
            steps.append(("compact", op.table, None))
        else:
            raise ValueError(f"unknown mutation kind {op.kind!r}")
    return steps
