"""The fuzz loop CLI: ``python -m repro.fuzz``.

Runs seed-driven cases through the full differential harness, writes the
cost-calibration report, and on the first failure dumps a replayable
failure artifact (the serialised plan plus the failing seed) and exits
non-zero with the one-line repro command CI surfaces in the job log.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
import traceback

from repro.fuzz.calibration import write_report
from repro.fuzz.generate import case_from_seed
from repro.fuzz.harness import FuzzHarness


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing of the shared plan layer.",
    )
    parser.add_argument("--plans", type=int, default=100,
                        help="number of fuzzed plans to run (default 100)")
    parser.add_argument("--start-seed", type=int, default=0,
                        help="first case seed (seeds are sequential)")
    parser.add_argument("--size", default="tiny",
                        help="GenBase dataset size preset (default tiny)")
    parser.add_argument("--dataset-seed", type=int, default=7,
                        help="dataset generation seed (default 7)")
    parser.add_argument("--report", default="fuzz_calibration.json",
                        help="calibration report output path")
    parser.add_argument("--artifact-dir", default="fuzz_artifacts",
                        help="where failing plans are dumped")
    parser.add_argument("--skew-selectivity", action="store_true",
                        help="record predictions with all selectivities "
                             "forced to 1.0 (for gate trip-wire tests)")
    args = parser.parse_args(argv)

    started = time.monotonic()
    harness = FuzzHarness(size=args.size, dataset_seed=args.dataset_seed)
    records = []
    checked = 0
    skipped_empty = 0
    mutated = 0
    for seed in range(args.start_seed, args.start_seed + args.plans):
        case = case_from_seed(seed, harness.schema)
        mutated += int(bool(case.mutations))
        try:
            outcome = harness.check_case(case, skew_selectivity=args.skew_selectivity)
        except Exception:
            artifact_dir = pathlib.Path(args.artifact_dir)
            artifact_dir.mkdir(parents=True, exist_ok=True)
            artifact = artifact_dir / f"failing_plan_seed_{seed}.json"
            artifact.write_text(json.dumps({
                "seed": seed,
                "size": args.size,
                "dataset_seed": args.dataset_seed,
                "case": case.to_json(),
                "error": traceback.format_exc(),
            }, indent=2) + "\n")
            print(traceback.format_exc(), file=sys.stderr)
            print(f"FAILED at seed {seed}; artifact: {artifact}", file=sys.stderr)
            print(f"reproduce with: python -m repro.fuzz.repro {seed}",
                  file=sys.stderr)
            return 1
        records.append(outcome.record)
        checked += len(outcome.engines_checked)
        skipped_empty += int(outcome.skipped_empty)
    report = write_report(args.report, records, meta={
        "plans": args.plans,
        "start_seed": args.start_seed,
        "size": args.size,
        "dataset_seed": args.dataset_seed,
        "skew_selectivity": args.skew_selectivity,
        "engine_checks": checked,
        "skipped_empty": skipped_empty,
        "mutated_cases": mutated,
        "elapsed_seconds": round(time.monotonic() - started, 2),
    })
    print(f"{args.plans} plans fuzzed, {checked} engine checks, "
          f"{mutated} with write preludes, "
          f"{skipped_empty} empty aggregate/pivot cases skipped, "
          f"report: {args.report}")
    for kind, stats in report["summary"].get("rows", {}).items():
        print(f"  rows[{kind:>10}] n={stats['count']:<4} "
              f"median_q={stats['median_q']:.2f} p90_q={stats['p90_q']:.2f}")
    shuffle = report["summary"].get("shuffle_bytes")
    if shuffle:
        print(f"  shuffle_bytes  n={shuffle['count']:<4} "
              f"median_q={shuffle['median_q']:.2f} p90_q={shuffle['p90_q']:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
