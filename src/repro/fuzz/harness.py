"""Execute one fuzz case on every admitted engine and compare results.

The harness loads one GenBase dataset into all five engine families once
(column store, row store, array DBMS, Hive tables, R frames), then per
case:

1. runs the unoptimized numpy reference (:mod:`repro.fuzz.reference`),
2. runs every engine the case's shape admits — the column store both
   optimized and unoptimized, so the optimizer's rewrites are covered too,
3. normalises each result into the shape-specific comparison form and
   asserts agreement under :mod:`repro.fuzz.tolerances`,
4. returns a :class:`~repro.fuzz.calibration.CalibrationRecord` pairing
   the optimizer's row estimate (and the MapReduce shuffle-byte estimate)
   with the observed counters.

Admission matrix (why an engine sits a shape out is documented in
``docs/FUZZING.md``):

========== ========= ======== ====== ====== =========
shape      colstore  postgres hadoop scidb  vanilla-r
========== ========= ======== ====== ====== =========
meta       yes       yes      yes    yes    yes
aggregate  yes       yes      yes    no cell predicates  yes
pivot      yes       yes      yes    no cell predicates  yes
sample     yes       no       no     no     no
approx     yes       no       no     no     no
========== ========= ======== ====== ====== =========

Aggregate/pivot cases whose reference long-format output is *empty* are
compared on no engine (the empties' label conventions legitimately
differ); the calibration record is still produced.

Cases carrying a **mutation prelude** (appends/deletes/compaction through
the column store's delta tier, see
:class:`~repro.fuzz.generate.MutationOp`) run on the column store
(optimized and unoptimized) versus the reference interpreter only — the
other engine families load the pristine dataset once and have no write
path.  Both sides replay the identical lowered write history
(:func:`~repro.fuzz.generate.lower_mutations`), the column store through
a per-case store's snapshot machinery, the reference through
:func:`~repro.fuzz.reference.mutated_tables`; shuffle-byte predictions
are skipped (the calibration gate ignores ``None``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arraydb.bridge import (
    ArrayFrame,
    MatrixFrame,
    metadata_array,
    run_shared_plan as run_array_plan,
)
from repro.arraydb import ChunkedArray
from repro.colstore.catalog import ColumnStore
from repro.colstore.planner import (
    ColumnStoreCatalog,
    explain_plan,
    optimize_plan,
    run_plan,
)
from repro.core.queries import dataset_tables
from repro.datagen.dataset import GenBaseDataset
from repro.fuzz.calibration import CalibrationRecord
from repro.fuzz.generate import META_KEYS, FuzzCase, FuzzSchema, lower_mutations
from repro.fuzz.reference import ReferenceTrace, mutated_tables, run_reference
from repro.fuzz.tolerances import (
    EXACT,
    aggregate_tolerance,
    assert_values_match,
    sketch_tolerance,
)
from repro.mapreduce import HiveSession, HiveTable, MapReduceEngine
from repro.mapreduce.bridge import (
    estimate_shuffle_bytes,
    run_shared_plan as run_mr_plan,
)
from repro.plan import logical
from repro.plan.observe import PlanObservation
from repro.plan.optimizer import classify, estimate_output_rows, split_conjuncts
from repro.plan.verify import verified_schema, verify_rewrite
from repro.relational.bridge import run_shared_plan as run_pg_plan
from repro.relational.catalog import ColumnType, Database
from repro.rlang.bridge import run_shared_plan as run_r_plan
from repro.rlang.dataframe import DataFrame

#: Chunk size for the array-DBMS frames — small enough that tiny datasets
#: still exercise multi-chunk grids and synopsis skipping.
_ARRAY_CHUNK = 32


@dataclass
class FuzzOutcome:
    """What one case execution produced (for reports and diagnostics)."""

    case: FuzzCase
    record: CalibrationRecord
    engines_checked: list[str] = field(default_factory=list)
    skipped_empty: bool = False


class FuzzHarness:
    """All five engine contexts over one GenBase dataset."""

    def __init__(self, size: str = "tiny", dataset_seed: int = 7):
        dataset = GenBaseDataset.generate(size, seed=dataset_seed)
        self.dataset = dataset
        self.tables = dataset_tables(dataset)
        self.schema = FuzzSchema.from_tables(self.tables)

        # Column store.
        self.store = ColumnStore()
        for name, columns in self.tables.items():
            self.store.create_table(name, columns)

        # Row store.
        self.db = Database()
        for name, columns in self.tables.items():
            types = [
                (column, ColumnType.FLOAT if values.dtype.kind == "f"
                 else ColumnType.INT)
                for column, values in columns.items()
            ]
            self.db.create_table(name, types)
            self.db.load_array(
                name, np.column_stack([v for v in columns.values()]).astype(np.float64)
            )

        # MapReduce (Hive tables + one engine whose counters we snapshot).
        self.hive_tables = {
            name: HiveTable.from_array(
                name, list(columns),
                np.column_stack([v for v in columns.values()]).astype(np.float64),
            )
            for name, columns in self.tables.items()
        }
        self.mr_engine = MapReduceEngine(n_splits=4)
        self.hive = HiveSession(self.mr_engine)

        # R environment.
        self.frames = {name: DataFrame(columns)
                       for name, columns in self.tables.items()}

        # Array DBMS: the dense fact array plus 1-D metadata arrays.
        expression = ChunkedArray.from_dense(
            "expression",
            dataset.expression_matrix,
            dimension_names=["patient_id", "gene_id"],
            attribute_name="expression_value",
            chunk_sizes=[_ARRAY_CHUNK, _ARRAY_CHUNK],
        )
        self.array_frames: dict[str, ArrayFrame | MatrixFrame] = {
            "microarray": MatrixFrame(expression, "expression_value"),
        }
        for table, key in META_KEYS.items():
            self.array_frames[table] = ArrayFrame(key, {
                column: metadata_array(
                    f"{table}_{column}", values.astype(np.float64), key,
                    column, chunk_size=_ARRAY_CHUNK,
                )
                for column, values in self.tables[table].items()
                if column != key
            })

    # -- case execution ---------------------------------------------------------------

    def check_case(self, case: FuzzCase,
                   skew_selectivity: bool = False) -> FuzzOutcome:
        """Run one case everywhere it is admitted; assert equivalence.

        Args:
            case: the generated plan plus its admission tags.
            skew_selectivity: compute the calibration *predictions* from
                the plan with every filter stripped — i.e. force every
                selectivity to 1.0.  Comparisons still run normally; this
                exists so the calibration gate's trip-wire can be tested
                against deliberately miscalibrated records.

        Every generated plan is first statically typechecked against the
        column store's schemas, and the optimizer rewrite is checked for
        schema preservation (:mod:`repro.plan.verify`) — unconditionally,
        not behind ``REPRO_VERIFY_PLANS``: the fuzzer is exactly where a
        grammar bug or unsound rewrite should be caught.

        Cases with a mutation prelude take the delta-tier path: a
        per-case column store replays the writes, the reference runs over
        the equivalently-mutated tables, and only the two column-store
        lowerings are compared (see the module admission notes).
        """
        if case.mutations:
            return self._check_mutated_case(case, skew_selectivity)
        catalog = ColumnStoreCatalog(self.store)
        verified_schema(case.plan, catalog)
        verify_rewrite(case.plan, optimize_plan(case.plan, self.store), catalog)
        trace = ReferenceTrace()
        reference = run_reference(case.plan, self.tables, trace)
        outcome = FuzzOutcome(case, self._record(case, trace, skew_selectivity))
        if case.shape == "meta":
            self._check_meta(case, reference, outcome)
        elif case.shape == "sample":
            self._check_sample(case, reference, outcome)
        elif trace.terminal_input_rows == 0:
            outcome.skipped_empty = True
        elif case.shape == "approx":
            self._check_approx(case, reference, outcome)
        elif case.shape == "aggregate":
            self._check_aggregate(case, reference, outcome)
        elif case.shape == "pivot":
            self._check_pivot(case, reference, outcome)
        else:
            raise ValueError(f"unknown fuzz shape {case.shape!r}")
        return outcome

    # -- shape checks -----------------------------------------------------------------

    def _check_meta(self, case: FuzzCase, reference: dict, outcome: FuzzOutcome):
        expected = np.sort(np.asarray(reference[case.key], dtype=np.int64))
        context = f"seed={case.seed} shape=meta table={case.table}"
        for label, optimized in (("colstore", True), ("colstore-unopt", False)):
            query = run_plan(case.plan, self.store, optimized=optimized)
            ids = np.sort(np.asarray(query.column(case.key), dtype=np.int64))
            assert_values_match(ids, expected, EXACT, f"{context} [{label}]")
            outcome.engines_checked.append(label)
        result = run_pg_plan(case.plan, self.db)
        ids = np.sort(np.asarray(result.column(case.key), dtype=np.int64))
        assert_values_match(ids, expected, EXACT, f"{context} [postgres]")
        outcome.engines_checked.append("postgres")
        observation = PlanObservation()
        table = run_mr_plan(case.plan, self.hive_tables, self.hive,
                            observation=observation)
        ids = np.sort(np.asarray(table.column_values(case.key), dtype=np.float64)
                      .astype(np.int64))
        assert_values_match(ids, expected, EXACT, f"{context} [hadoop]")
        outcome.engines_checked.append("hadoop")
        outcome.record.observed_shuffle_bytes = observation.shuffle_bytes
        frame = run_r_plan(case.plan, self.frames)
        ids = np.sort(np.asarray(frame[case.key], dtype=np.int64))
        assert_values_match(ids, expected, EXACT, f"{context} [vanilla-r]")
        outcome.engines_checked.append("vanilla-r")
        coordinates = run_array_plan(case.plan, self.array_frames)
        ids = np.sort(np.asarray(coordinates, dtype=np.int64))
        assert_values_match(ids, expected, EXACT, f"{context} [scidb]")
        outcome.engines_checked.append("scidb")

    def _check_sample(self, case: FuzzCase, reference: dict, outcome: FuzzOutcome):
        """Sample plans: column store only — sampling semantics are per-engine."""
        expected = np.asarray(reference[case.key], dtype=np.int64)
        order = np.argsort(expected)
        context = f"seed={case.seed} shape=sample table={case.table}"
        for label, optimized in (("colstore", True), ("colstore-unopt", False)):
            query = run_plan(case.plan, self.store, optimized=optimized)
            ids = np.asarray(query.column(case.key), dtype=np.int64)
            qorder = np.argsort(ids)
            assert_values_match(ids[qorder], expected[order], EXACT,
                                f"{context} [{label}] ids")
            for column in reference:
                assert_values_match(
                    np.asarray(query.column(column))[qorder],
                    np.asarray(reference[column])[order],
                    EXACT, f"{context} [{label}] {column}",
                )
            outcome.engines_checked.append(label)

    def _check_approx(self, case: FuzzCase, reference: float, outcome: FuzzOutcome):
        """Sketch terminals: column store estimates vs the exact reference.

        Both the optimized and unoptimized lowerings must return a
        well-formed ``(estimate, ci_low, ci_high, confidence)`` whose
        estimate agrees with the reference's *exact* answer under the
        per-sketch tolerance — HLL within its three-sigma relative bound,
        the t-digest's deterministic rank bracket covering the truth.
        """
        for label, optimized in (("colstore", True), ("colstore-unopt", False)):
            result = run_plan(case.plan, self.store, optimized=optimized)
            self._assert_approx_run(case, result, reference, label)
            outcome.engines_checked.append(label)

    def _assert_approx_run(self, case: FuzzCase, result, reference: float,
                           label: str) -> None:
        """The per-lowering approx assertions (shared with mutated cases)."""
        plan = case.plan
        assert isinstance(plan, logical.ApproxAggregate)
        tolerance = sketch_tolerance(plan.kind)
        context = (f"seed={case.seed} shape=approx table={case.table} "
                   f"kind={plan.kind}")
        assert result.ci_low <= result.estimate <= result.ci_high, (
            f"{context} [{label}]: malformed interval {result}"
        )
        assert 0.0 < result.confidence < 1.0, (
            f"{context} [{label}]: confidence {result.confidence}"
        )
        if plan.kind == "approx_quantile":
            assert result.ci_low <= reference <= result.ci_high, (
                f"{context} [{label}]: exact quantile {reference} outside "
                f"rank bracket [{result.ci_low}, {result.ci_high}]"
            )
        else:
            assert_values_match(
                np.float64(result.estimate), np.float64(reference),
                tolerance, f"{context} [{label}]",
            )

    # -- mutated cases ----------------------------------------------------------------

    def _check_mutated_case(self, case: FuzzCase,
                            skew_selectivity: bool) -> FuzzOutcome:
        """Replay the write prelude, then compare colstore vs reference.

        A fresh per-case column store replays the lowered steps through
        the real delta API (append/delete/compact → tail, bitmap,
        generation bump), so the plan executes over ``MergedColumn``
        scans; the reference executes over the identically-mutated plain
        tables.  Static verification and the calibration record run
        against the *mutated* store, covering version-aware dtype answers
        and live-row estimates.
        """
        steps = lower_mutations(case.mutations, self.tables, self.schema)
        store = ColumnStore()
        for name, columns in self.tables.items():
            store.create_table(name, columns)
        for kind, table, payload in steps:
            if kind == "append":
                store.append(table, payload)
            elif kind == "delete":
                store.delete(table, payload)
            else:
                store.compact(table)
        tables = mutated_tables(self.tables, steps)
        catalog = ColumnStoreCatalog(store)
        verified_schema(case.plan, catalog)
        verify_rewrite(case.plan, optimize_plan(case.plan, store), catalog)
        trace = ReferenceTrace()
        reference = run_reference(case.plan, tables, trace)
        outcome = FuzzOutcome(case, self._record(case, trace, skew_selectivity,
                                                 store=store,
                                                 with_shuffle=False))
        runs = (("colstore", True), ("colstore-unopt", False))
        if case.shape == "meta":
            expected = np.sort(np.asarray(reference[case.key], dtype=np.int64))
            context = (f"seed={case.seed} shape=meta table={case.table} "
                       f"[mutated]")
            for label, optimized in runs:
                query = run_plan(case.plan, store, optimized=optimized)
                ids = np.sort(np.asarray(query.column(case.key),
                                         dtype=np.int64))
                assert_values_match(ids, expected, EXACT,
                                    f"{context} [{label}]")
                outcome.engines_checked.append(label)
            return outcome
        if trace.terminal_input_rows == 0:
            outcome.skipped_empty = True
            return outcome
        if case.shape == "approx":
            for label, optimized in runs:
                result = run_plan(case.plan, store, optimized=optimized)
                self._assert_approx_run(case, result, reference,
                                        f"{label} mutated")
                outcome.engines_checked.append(label)
            return outcome
        if case.shape == "aggregate":
            plan = case.plan
            assert isinstance(plan, logical.Aggregate)
            expected_keys = np.asarray(reference[0], dtype=np.int64)
            expected_values = np.asarray(reference[1], dtype=np.float64)
            tolerance = aggregate_tolerance("colstore", plan.function)
            context = (f"seed={case.seed} shape=aggregate table={case.table} "
                       f"fn={plan.function} [mutated]")
            for label, optimized in runs:
                keys, values = run_plan(case.plan, store, optimized=optimized)
                keys = np.asarray(np.asarray(keys, dtype=np.float64),
                                  dtype=np.int64)
                assert_values_match(keys, expected_keys, EXACT,
                                    f"{context} [{label}] keys")
                assert_values_match(np.asarray(values, dtype=np.float64),
                                    expected_values, tolerance,
                                    f"{context} [{label}] values")
                outcome.engines_checked.append(label)
            return outcome
        if case.shape == "pivot":
            matrix, rows, cols = reference
            context = f"seed={case.seed} shape=pivot table={case.table} [mutated]"
            for label, optimized in runs:
                m, r, c = _normalise_pivot(
                    *run_plan(case.plan, store, optimized=optimized)
                )
                assert_values_match(r, rows, EXACT, f"{context} [{label}] rows")
                assert_values_match(c, cols, EXACT, f"{context} [{label}] cols")
                assert_values_match(m, matrix, EXACT,
                                    f"{context} [{label}] matrix")
                outcome.engines_checked.append(label)
            return outcome
        raise ValueError(
            f"shape {case.shape!r} does not admit a mutation prelude"
        )

    def _check_aggregate(self, case: FuzzCase, reference, outcome: FuzzOutcome):
        plan = case.plan
        assert isinstance(plan, logical.Aggregate)
        expected_keys = np.asarray(reference[0], dtype=np.int64)
        expected_values = np.asarray(reference[1], dtype=np.float64)
        context = (f"seed={case.seed} shape=aggregate table={case.table} "
                   f"fn={plan.function}")
        for engine, keys, values in self._aggregate_runs(case, outcome):
            tolerance = aggregate_tolerance(engine, plan.function)
            keys = np.asarray(np.asarray(keys, dtype=np.float64), dtype=np.int64)
            assert_values_match(keys, expected_keys, EXACT,
                                f"{context} [{engine}] keys")
            assert_values_match(np.asarray(values, dtype=np.float64),
                                expected_values, tolerance,
                                f"{context} [{engine}] values")
            outcome.engines_checked.append(engine)

    def _aggregate_runs(self, case: FuzzCase, outcome: FuzzOutcome):
        yield ("colstore", *run_plan(case.plan, self.store, optimized=True))
        yield ("colstore-unopt", *run_plan(case.plan, self.store, optimized=False))
        yield ("postgres", *run_pg_plan(case.plan, self.db))
        observation = PlanObservation()
        keys, values = run_mr_plan(case.plan, self.hive_tables, self.hive,
                                   observation=observation)
        outcome.record.observed_shuffle_bytes = observation.shuffle_bytes
        yield ("hadoop", keys, values)
        yield ("vanilla-r", *run_r_plan(case.plan, self.frames))
        if not case.has_value_predicate:
            yield ("scidb", *run_array_plan(case.plan, self.array_frames))

    def _check_pivot(self, case: FuzzCase, reference, outcome: FuzzOutcome):
        matrix, rows, cols = reference
        context = f"seed={case.seed} shape=pivot table={case.table}"
        runs = [
            ("colstore", run_plan(case.plan, self.store, optimized=True)),
            ("colstore-unopt", run_plan(case.plan, self.store, optimized=False)),
            ("postgres", run_pg_plan(case.plan, self.db)),
        ]
        observation = PlanObservation()
        runs.append(("hadoop", run_mr_plan(case.plan, self.hive_tables, self.hive,
                                           observation=observation)))
        runs.append(("vanilla-r", run_r_plan(case.plan, self.frames)))
        if not case.has_value_predicate:
            runs.append(("scidb", run_array_plan(case.plan, self.array_frames)))
        for engine, (m, r, c) in runs:
            m, r, c = _normalise_pivot(m, r, c)
            assert_values_match(r, rows, EXACT, f"{context} [{engine}] rows")
            assert_values_match(c, cols, EXACT, f"{context} [{engine}] cols")
            assert_values_match(m, matrix, EXACT, f"{context} [{engine}] matrix")
            outcome.engines_checked.append(engine)
        outcome.record.observed_shuffle_bytes = observation.shuffle_bytes

    # -- calibration ------------------------------------------------------------------

    def _record(self, case: FuzzCase, trace: ReferenceTrace,
                skew_selectivity: bool, store: ColumnStore | None = None,
                with_shuffle: bool = True) -> CalibrationRecord:
        store = self.store if store is None else store
        catalog = ColumnStoreCatalog(store)
        predicted_plan = (_strip_filters(case.plan) if skew_selectivity
                          else case.plan)
        predicted = estimate_output_rows(predicted_plan, catalog)
        shuffle = None
        if with_shuffle and case.shape not in ("sample", "approx"):
            shuffle = estimate_shuffle_bytes(
                predicted_plan, self.hive_tables, n_splits=self.mr_engine.n_splits
            )
        record = CalibrationRecord(
            seed=case.seed,
            shape=case.shape,
            classes=_predicate_classes(case.plan),
            predicted_rows=None if predicted is None else float(predicted),
            observed_rows=trace.output_rows,
            predicted_shuffle_bytes=shuffle,
            explain=explain_plan(case.plan, store),
        )
        return record


def _normalise_pivot(matrix, rows, cols):
    """Reorder a pivot result to sorted labels (postgres uses first-seen)."""
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    row_order = np.argsort(rows)
    col_order = np.argsort(cols)
    return (np.asarray(matrix, dtype=np.float64)[np.ix_(row_order, col_order)],
            rows[row_order], cols[col_order])


def _predicate_classes(plan: logical.PlanNode) -> list[str]:
    """The structural classes of every filter conjunct in the plan."""
    kinds: list[str] = []

    def walk(node: logical.PlanNode):
        if isinstance(node, logical.Filter):
            for conjunct in split_conjuncts(node.predicate):
                kinds.append(classify(conjunct).kind)
        for child in node.children():
            walk(child)

    walk(plan)
    return kinds


def _strip_filters(node: logical.PlanNode) -> logical.PlanNode:
    """Remove every Filter — i.e. pretend all selectivities are 1.0."""
    if isinstance(node, logical.Filter):
        return _strip_filters(node.child)
    if isinstance(node, logical.Project):
        return logical.Project(_strip_filters(node.child), node.columns)
    if isinstance(node, logical.Sample):
        return logical.Sample(_strip_filters(node.child), node.fraction, node.seed)
    if isinstance(node, logical.Join):
        return logical.Join(
            _strip_filters(node.left), _strip_filters(node.right),
            node.left_key, node.right_key,
        )
    if isinstance(node, logical.Aggregate):
        return logical.Aggregate(
            _strip_filters(node.child), node.group_by, node.value, node.function
        )
    if isinstance(node, logical.Pivot):
        return logical.Pivot(
            _strip_filters(node.child), node.row_key, node.column_key, node.value
        )
    if isinstance(node, logical.ApproxAggregate):
        return logical.ApproxAggregate(
            _strip_filters(node.child), node.value, node.kind,
            node.quantile, node.confidence, node.fraction, node.seed,
        )
    return node
