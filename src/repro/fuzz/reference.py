"""Unoptimized numpy reference executor for shared logical plans.

The fuzzer's ground truth: a direct, rule-free interpretation of the plan
tree *exactly as written* — no pushdown, no pruning, no build-side choice,
no encoding fast paths.  Every engine (optimized or not) must agree with
this executor under the tolerances in :mod:`repro.fuzz.tolerances`.

Relations are plain ``{column: np.ndarray}`` dicts (the
:func:`repro.core.queries.dataset_tables` form) plus the surviving base-row
positions of the leftmost scan, which lets ``Sample`` replicate the column
store's documented semantics: score every *base* row once with
``default_rng(seed)``, keep the ``max(1, round(fraction·n))`` selected rows
with the smallest scores (see :meth:`repro.colstore.query.ColumnQuery.sample`).

A :class:`ReferenceTrace` records the observed cardinalities the cost
calibration compares against the optimizer's predictions.

For mutated cases (a :class:`~repro.fuzz.generate.MutationOp` prelude),
:func:`mutated_tables` replays the lowered write steps over the plain
dict-of-arrays tables with the delta tier's exact semantics — appends
extend the logical row space, deletes mark stable logical ids (idempotent,
no renumbering), compaction materialises survivors densely — so the
reference executes over precisely the rows a delta-store snapshot holds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.plan import logical


@dataclass
class ReferenceTrace:
    """Observed cardinalities of one reference execution."""

    #: Rows entering the terminal (Aggregate/Pivot), or the final row
    #: count for relational-algebra plans.
    terminal_input_rows: int | None = None
    #: Rows of the final result (groups for Aggregate, row labels for
    #: Pivot, rows otherwise).
    output_rows: int | None = None
    #: Cells of the final pivot matrix, when the terminal is a Pivot.
    output_cells: int | None = None


@dataclass
class _Relation:
    """Columns plus the base-row positions of the leftmost scan."""

    columns: dict[str, np.ndarray]
    base_positions: np.ndarray | None = None
    base_row_count: int = 0

    def __len__(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def take(self, mask_or_index) -> "_Relation":
        positions = self.base_positions
        if positions is not None:
            positions = positions[mask_or_index]
        return _Relation(
            {name: values[mask_or_index] for name, values in self.columns.items()},
            positions,
            self.base_row_count,
        )


def mutated_tables(
    tables: dict[str, dict[str, np.ndarray]],
    steps: list,
) -> dict[str, dict[str, np.ndarray]]:
    """Apply lowered mutation steps to dict-of-arrays tables.

    ``steps`` is the output of :func:`repro.fuzz.generate.lower_mutations`
    — ``(kind, table, payload)`` triples.  Returns new table dicts holding
    only the live rows, in logical (append) order; the input is never
    mutated.
    """
    state = {name: {column: np.asarray(values)
                    for column, values in columns.items()}
             for name, columns in tables.items()}
    deleted: dict[str, set[int]] = {name: set() for name in tables}

    def survivors(name: str) -> dict[str, np.ndarray]:
        dead = deleted[name]
        if not dead:
            return state[name]
        length = len(next(iter(state[name].values())))
        keep = np.setdiff1d(np.arange(length, dtype=np.int64),
                            np.fromiter(dead, dtype=np.int64, count=len(dead)))
        return {column: values[keep]
                for column, values in state[name].items()}

    for kind, table, payload in steps:
        if kind == "append":
            state[table] = {
                column: np.concatenate([values, payload[column]])
                for column, values in state[table].items()
            }
        elif kind == "delete":
            deleted[table].update(int(i) for i in np.asarray(payload))
        elif kind == "compact":
            state[table] = survivors(table)
            deleted[table] = set()
        else:
            raise ValueError(f"unknown mutation step kind {kind!r}")
    return {name: survivors(name) for name in state}


def run_reference(plan: logical.PlanNode,
                  tables: dict[str, dict[str, np.ndarray]],
                  trace: ReferenceTrace | None = None):
    """Execute ``plan`` literally over dict-of-columns tables.

    Returns the shared executor shapes: a ``{column: array}`` dict for
    relational-algebra plans, ``(group_keys, aggregates)`` sorted by key
    for ``Aggregate`` and ``(matrix, row_labels, column_labels)`` with
    sorted labels for ``Pivot``.
    """
    if isinstance(plan, logical.Aggregate):
        child = _evaluate(plan.child, tables)
        if trace is not None:
            trace.terminal_input_rows = len(child)
        keys, values = _group_aggregate(
            child.columns[plan.group_by], child.columns[plan.value], plan.function
        )
        if trace is not None:
            trace.output_rows = int(len(keys))
        return keys, values
    if isinstance(plan, logical.Pivot):
        child = _evaluate(plan.child, tables)
        if trace is not None:
            trace.terminal_input_rows = len(child)
        matrix, row_labels, column_labels = _pivot(
            child.columns[plan.row_key],
            child.columns[plan.column_key],
            child.columns[plan.value],
        )
        if trace is not None:
            trace.output_rows = int(len(row_labels))
            trace.output_cells = int(matrix.size)
        return matrix, row_labels, column_labels
    if isinstance(plan, logical.ApproxAggregate):
        child = _evaluate(plan.child, tables)
        if trace is not None:
            trace.terminal_input_rows = len(child)
            trace.output_rows = 1
        return _exact_approx(np.asarray(child.columns[plan.value]), plan)
    result = _evaluate(plan, tables)
    if trace is not None:
        trace.terminal_input_rows = len(result)
        trace.output_rows = len(result)
    return dict(result.columns)


def _evaluate(node: logical.PlanNode,
              tables: dict[str, dict[str, np.ndarray]]) -> _Relation:
    if isinstance(node, logical.Scan):
        table = tables.get(node.table)
        if table is None:
            raise KeyError(f"no table named {node.table!r}; have {sorted(tables)}")
        length = len(next(iter(table.values())))
        return _Relation(
            {name: np.asarray(values) for name, values in table.items()},
            np.arange(length),
            length,
        )
    if isinstance(node, logical.Filter):
        relation = _evaluate(node.child, tables)
        mask = np.asarray(node.predicate.evaluate(relation.columns), dtype=bool)
        return relation.take(mask)
    if isinstance(node, logical.Project):
        relation = _evaluate(node.child, tables)
        missing = set(node.columns) - set(relation.columns)
        if missing:
            raise KeyError(f"no column {sorted(missing)[0]!r} to project")
        return _Relation(
            {name: relation.columns[name] for name in node.columns},
            relation.base_positions,
            relation.base_row_count,
        )
    if isinstance(node, logical.Sample):
        relation = _evaluate(node.child, tables)
        if relation.base_positions is None:
            raise TypeError("Sample requires a scan-rooted subtree")
        rows = np.sort(relation.base_positions)
        n_keep = (max(1, int(round(node.fraction * len(rows))))
                  if len(rows) else 0)
        scores = np.random.default_rng(node.seed).random(relation.base_row_count)
        kept = np.sort(rows[np.argsort(scores[rows], kind="stable")[:n_keep]])
        index = np.searchsorted(relation.base_positions, kept)
        return relation.take(index)
    if isinstance(node, logical.Join):
        left = _evaluate(node.left, tables)
        right = _evaluate(node.right, tables)
        left_keys = left.columns[node.left_key]
        right_keys = right.columns[node.right_key]
        positions: dict = {}
        for i, key in enumerate(right_keys.tolist()):
            positions.setdefault(key, []).append(i)
        left_index, right_index = [], []
        for i, key in enumerate(left_keys.tolist()):
            for j in positions.get(key, ()):
                left_index.append(i)
                right_index.append(j)
        li = np.asarray(left_index, dtype=np.int64)
        ri = np.asarray(right_index, dtype=np.int64)
        columns = {name: values[li] for name, values in left.columns.items()}
        for name, values in right.columns.items():
            if name != node.right_key:
                columns[name] = values[ri]
        # The join re-keys rows: base positions no longer track one scan.
        return _Relation(columns, None, 0)
    raise TypeError(
        f"cannot execute plan node {type(node).__name__} in the reference"
    )


def _exact_approx(values: np.ndarray, plan: logical.ApproxAggregate) -> float:
    """The *exact* scalar an approximate aggregate estimates.

    The fuzzer compares every sketch/sample estimate against this ground
    truth under the per-sketch tolerance — not against another estimate.
    """
    if plan.kind == "approx_distinct":
        return float(len(np.unique(values)))
    if len(values) == 0:
        return 0.0 if plan.kind in ("approx_count", "approx_sum") else float("nan")
    doubles = values.astype(np.float64)
    if plan.kind == "approx_quantile":
        return float(np.quantile(doubles, plan.quantile, method="inverted_cdf"))
    if plan.kind == "approx_count":
        return float(len(values))
    if plan.kind == "approx_sum":
        return float(np.sum(doubles))
    return float(np.mean(doubles))


def _group_aggregate(keys: np.ndarray, values: np.ndarray, function: str):
    """Grouped reduction the obvious way: unique keys, one pass per group."""
    labels = np.unique(keys)
    out = np.empty(len(labels), dtype=np.float64)
    for i, label in enumerate(labels):
        group = values[keys == label]
        if function == "count":
            out[i] = float(len(group))
        elif function == "sum":
            out[i] = float(np.sum(group))
        elif function in ("mean", "avg"):
            out[i] = float(np.sum(group) / len(group))
        elif function == "min":
            out[i] = float(np.min(group))
        elif function == "max":
            out[i] = float(np.max(group))
        else:
            raise ValueError(f"unsupported aggregate {function!r}")
    return labels, out


def _pivot(rows: np.ndarray, cols: np.ndarray, values: np.ndarray):
    """Scatter long format into a dense matrix with sorted labels."""
    row_labels, row_positions = np.unique(
        np.asarray(rows, dtype=np.int64), return_inverse=True
    )
    column_labels, column_positions = np.unique(
        np.asarray(cols, dtype=np.int64), return_inverse=True
    )
    matrix = np.zeros((len(row_labels), len(column_labels)))
    matrix[row_positions, column_positions] = np.asarray(values, dtype=np.float64)
    return matrix, row_labels, column_labels
