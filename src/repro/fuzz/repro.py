"""Replay one fuzz case with full diagnostics: ``python -m repro.fuzz.repro``.

Accepts either a case seed (the integer printed by the fuzz loop on
failure) or a failure-artifact JSON path (the file CI uploads), rebuilds
the exact plan, prints its tree and annotated EXPLAIN, and re-runs the
differential check.

``--verify-only`` stops after the static plan verifier: the plan is
typechecked against the dataset's schemas (:mod:`repro.plan.verify`) and
its inferred output schema printed, but no engine executes anything —
the cheap first question for any failing case ("is the plan even
well-typed?") without paying for five engine loads.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.colstore.planner import explain_plan
from repro.core.queries import dataset_tables
from repro.datagen.dataset import GenBaseDataset
from repro.fuzz.generate import FuzzCase, FuzzSchema, case_from_seed
from repro.plan.logical import explain
from repro.plan.verify import PlanVerificationError, verified_schema


def _load_case(argument: str, size: str, dataset_seed: int):
    """Resolve a seed or artifact path to (case, size, dataset_seed, tables)."""
    if argument.lstrip("-").isdigit():
        dataset = GenBaseDataset.generate(size, seed=dataset_seed)
        tables = dataset_tables(dataset)
        case = case_from_seed(int(argument), FuzzSchema.from_tables(tables))
        return case, size, dataset_seed, tables
    artifact = json.loads(pathlib.Path(argument).read_text())
    size = artifact.get("size", size)
    dataset_seed = artifact.get("dataset_seed", dataset_seed)
    dataset = GenBaseDataset.generate(size, seed=dataset_seed)
    tables = dataset_tables(dataset)
    case = FuzzCase.from_json(artifact["case"])
    return case, size, dataset_seed, tables


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz.repro",
        description="Replay one fuzz case (by seed or failure artifact).",
    )
    parser.add_argument("case", help="case seed (integer) or artifact JSON path")
    parser.add_argument("--size", default="tiny",
                        help="GenBase dataset size preset (default tiny)")
    parser.add_argument("--dataset-seed", type=int, default=7,
                        help="dataset generation seed (default 7)")
    parser.add_argument("--verify-only", action="store_true",
                        help="statically typecheck the plan and print its "
                             "inferred schema; execute nothing")
    args = parser.parse_args(argv)

    case, size, dataset_seed, tables = _load_case(
        args.case, args.size, args.dataset_seed
    )
    print(f"seed={case.seed} shape={case.shape} table={case.table} "
          f"value_predicate={case.has_value_predicate} "
          f"mutations={len(case.mutations)}")
    for op in case.mutations:
        print(f"  prelude: {op.kind} table={op.table} seed={op.seed} "
              f"count={op.count}")
    print("\nplan:")
    print(explain(case.plan))

    if args.verify_only:
        schemas = {
            name: {column: values.dtype for column, values in columns.items()}
            for name, columns in tables.items()
        }
        try:
            schema = verified_schema(case.plan, schemas)
        except PlanVerificationError as error:
            print(f"\nVERIFY FAILED [{error.rule}]: {error}")
            return 1
        print("\nverified output schema:")
        for column, dtype in schema.items():
            print(f"  {column}: {dtype}")
        return 0

    from repro.fuzz.harness import FuzzHarness  # deferred: loads all engines

    harness = FuzzHarness(size=size, dataset_seed=dataset_seed)
    print("annotated (column-store estimates):")
    print(explain_plan(case.plan, harness.store))
    outcome = harness.check_case(case)
    print(f"\nPASS — engines checked: {', '.join(outcome.engines_checked) or 'none'}"
          f"{' (empty aggregate/pivot input: comparisons skipped)' if outcome.skipped_empty else ''}")
    record = outcome.record
    print(f"calibration: predicted_rows={record.predicted_rows} "
          f"observed_rows={record.observed_rows} "
          f"q={record.rows_q_error() and round(record.rows_q_error(), 2)}")
    if record.predicted_shuffle_bytes is not None:
        print(f"             predicted_shuffle_bytes="
              f"{round(record.predicted_shuffle_bytes)} "
              f"observed_shuffle_bytes={record.observed_shuffle_bytes}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
