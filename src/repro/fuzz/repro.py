"""Replay one fuzz case with full diagnostics: ``python -m repro.fuzz.repro``.

Accepts either a case seed (the integer printed by the fuzz loop on
failure) or a failure-artifact JSON path (the file CI uploads), rebuilds
the exact plan, prints its tree and annotated EXPLAIN, and re-runs the
differential check.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.colstore.planner import explain_plan
from repro.fuzz.generate import FuzzCase, case_from_seed
from repro.fuzz.harness import FuzzHarness
from repro.plan.logical import explain


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz.repro",
        description="Replay one fuzz case (by seed or failure artifact).",
    )
    parser.add_argument("case", help="case seed (integer) or artifact JSON path")
    parser.add_argument("--size", default="tiny",
                        help="GenBase dataset size preset (default tiny)")
    parser.add_argument("--dataset-seed", type=int, default=7,
                        help="dataset generation seed (default 7)")
    args = parser.parse_args(argv)

    size, dataset_seed = args.size, args.dataset_seed
    if args.case.lstrip("-").isdigit():
        harness = FuzzHarness(size=size, dataset_seed=dataset_seed)
        case = case_from_seed(int(args.case), harness.schema)
    else:
        artifact = json.loads(pathlib.Path(args.case).read_text())
        size = artifact.get("size", size)
        dataset_seed = artifact.get("dataset_seed", dataset_seed)
        harness = FuzzHarness(size=size, dataset_seed=dataset_seed)
        case = FuzzCase.from_json(artifact["case"])

    print(f"seed={case.seed} shape={case.shape} table={case.table} "
          f"value_predicate={case.has_value_predicate}")
    print("\nplan:")
    print(explain(case.plan))
    print("annotated (column-store estimates):")
    print(explain_plan(case.plan, harness.store))
    outcome = harness.check_case(case)
    print(f"\nPASS — engines checked: {', '.join(outcome.engines_checked) or 'none'}"
          f"{' (empty aggregate/pivot input: comparisons skipped)' if outcome.skipped_empty else ''}")
    record = outcome.record
    print(f"calibration: predicted_rows={record.predicted_rows} "
          f"observed_rows={record.observed_rows} "
          f"q={record.rows_q_error() and round(record.rows_q_error(), 2)}")
    if record.predicted_shuffle_bytes is not None:
        print(f"             predicted_shuffle_bytes="
              f"{round(record.predicted_shuffle_bytes)} "
              f"observed_shuffle_bytes={record.observed_shuffle_bytes}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
