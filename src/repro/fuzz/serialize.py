"""JSON round-trip for fuzzed expressions and plans.

Covers exactly the fuzz grammar (column-vs-literal comparisons, membership
lists, and/or/not, and the seven plan nodes) — not arbitrary expressions:
``Opaque`` predicates carry Python callables and are deliberately outside
both the grammar and this format.  Used for the shrunken failing-plan
artifacts CI uploads and the ``python -m repro.fuzz.repro`` replays.
"""

from __future__ import annotations

from repro.plan import logical
from repro.plan.expressions import (
    BooleanOp,
    Comparison,
    Expression,
    InList,
    Literal,
    Not,
    col,
    lit,
)

#: Comparison symbols → the operator expressed through the ``col()`` DSL.
_COMPARISONS = {
    "=": lambda left, value: left == value,
    "<>": lambda left, value: left != value,
    "<": lambda left, value: left < value,
    "<=": lambda left, value: left <= value,
    ">": lambda left, value: left > value,
    ">=": lambda left, value: left >= value,
}


def expression_to_json(expression: Expression) -> dict:
    """Serialise a fuzz-grammar expression to a plain dict."""
    if isinstance(expression, InList):
        return {
            "t": "in",
            "col": expression.operand.name,
            "values": [_plain(v) for v in sorted(expression.values)],
        }
    if isinstance(expression, Comparison):
        if not isinstance(expression.right, Literal):
            raise TypeError("fuzz grammar compares columns against literals")
        return {
            "t": "cmp",
            "col": expression.left.name,
            "sym": expression.symbol,
            "value": _plain(expression.right.value),
        }
    if isinstance(expression, BooleanOp):
        return {
            "t": "and" if expression.conjunction else "or",
            "operands": [expression_to_json(op) for op in expression.operands],
        }
    if isinstance(expression, Not):
        return {"t": "not", "operand": expression_to_json(expression.operand)}
    raise TypeError(f"cannot serialise expression {type(expression).__name__}")


def expression_from_json(data: dict) -> Expression:
    """Rebuild a fuzz-grammar expression from its dict form."""
    kind = data["t"]
    if kind == "in":
        return col(data["col"]).isin(data["values"])
    if kind == "cmp":
        return _COMPARISONS[data["sym"]](col(data["col"]), lit(data["value"]))
    if kind in ("and", "or"):
        operands = [expression_from_json(op) for op in data["operands"]]
        combined = operands[0]
        for operand in operands[1:]:
            combined = combined & operand if kind == "and" else combined | operand
        return combined
    if kind == "not":
        return ~expression_from_json(data["operand"])
    raise ValueError(f"unknown expression tag {kind!r}")


def plan_to_json(plan: logical.PlanNode) -> dict:
    """Serialise a fuzz-grammar plan tree to a plain dict."""
    if isinstance(plan, logical.Scan):
        return {"t": "scan", "table": plan.table}
    if isinstance(plan, logical.Filter):
        return {
            "t": "filter",
            "child": plan_to_json(plan.child),
            "predicate": expression_to_json(plan.predicate),
        }
    if isinstance(plan, logical.Project):
        return {
            "t": "project",
            "child": plan_to_json(plan.child),
            "columns": list(plan.columns),
        }
    if isinstance(plan, logical.Sample):
        return {
            "t": "sample",
            "child": plan_to_json(plan.child),
            "fraction": plan.fraction,
            "seed": plan.seed,
        }
    if isinstance(plan, logical.Join):
        return {
            "t": "join",
            "left": plan_to_json(plan.left),
            "right": plan_to_json(plan.right),
            "left_key": plan.left_key,
            "right_key": plan.right_key,
        }
    if isinstance(plan, logical.Aggregate):
        return {
            "t": "aggregate",
            "child": plan_to_json(plan.child),
            "group_by": plan.group_by,
            "value": plan.value,
            "function": plan.function,
        }
    if isinstance(plan, logical.Pivot):
        return {
            "t": "pivot",
            "child": plan_to_json(plan.child),
            "row_key": plan.row_key,
            "column_key": plan.column_key,
            "value": plan.value,
        }
    if isinstance(plan, logical.ApproxAggregate):
        return {
            "t": "approx",
            "child": plan_to_json(plan.child),
            "value": plan.value,
            "kind": plan.kind,
            "quantile": plan.quantile,
            "confidence": plan.confidence,
            "fraction": plan.fraction,
            "seed": plan.seed,
        }
    raise TypeError(f"cannot serialise plan node {type(plan).__name__}")


def plan_from_json(data: dict) -> logical.PlanNode:
    """Rebuild a fuzz-grammar plan tree from its dict form."""
    kind = data["t"]
    if kind == "scan":
        return logical.Scan(data["table"])
    if kind == "filter":
        return logical.Filter(
            plan_from_json(data["child"]), expression_from_json(data["predicate"])
        )
    if kind == "project":
        return logical.Project(plan_from_json(data["child"]), tuple(data["columns"]))
    if kind == "sample":
        return logical.Sample(
            plan_from_json(data["child"]), data["fraction"], data["seed"]
        )
    if kind == "join":
        return logical.Join(
            plan_from_json(data["left"]), plan_from_json(data["right"]),
            data["left_key"], data["right_key"],
        )
    if kind == "aggregate":
        return logical.Aggregate(
            plan_from_json(data["child"]), data["group_by"],
            data["value"], data["function"],
        )
    if kind == "pivot":
        return logical.Pivot(
            plan_from_json(data["child"]), data["row_key"],
            data["column_key"], data["value"],
        )
    if kind == "approx":
        return logical.ApproxAggregate(
            plan_from_json(data["child"]), data["value"], data["kind"],
            data["quantile"], data["confidence"], data["fraction"], data["seed"],
        )
    raise ValueError(f"unknown plan tag {kind!r}")


def _plain(value):
    """Coerce numpy scalars to JSON-serialisable Python numbers."""
    if hasattr(value, "item"):
        return value.item()
    return value
