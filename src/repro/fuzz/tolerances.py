"""The one tolerance table every cross-engine comparison consults.

Two consumers share this module — ``tests/test_cross_engine.py`` (the five
GenBase queries' summary fields) and the differential fuzzer (arbitrary
aggregate plans) — so a documented last-ulp divergence is pinned in exactly
one place instead of being re-derived per test file.

The policy, from the engine matrix (``docs/ENGINES.md``):

- **Structure is always exact.** Row sets, group keys, labels and pivot
  matrices must match bit for bit on every engine: they are produced by
  selection and scatter, never by float arithmetic.
- **Order-insensitive float reductions are ulp-tolerant.** ``sum`` and
  ``mean`` over float columns reassociate addition differently per engine
  (RLE run folding on the column store, combiner partials on MapReduce,
  chunk-wise loops on the array DBMS, ``np.bincount`` in the R
  environment), so they may differ from the reference in the last ulps —
  :data:`ULP`, ``rel=1e-9``.  ``count``/``min``/``max`` pick or count
  elements and stay exact.
- **Mahout's analytics kernels are ulp-tolerant on hadoop only.** The
  naive MapReduce summation in the Mahout-tier kernels diverges from the
  LAPACK/BLAS tier in :data:`MAHOUT_FLOAT_FIELDS`; every other summary
  field is exact on every engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Summary fields produced by Mahout's naive MapReduce analytics kernels —
#: the only query-summary fields allowed to differ (by ulps) from the
#: LAPACK/BLAS tier, and only on the hadoop family.
MAHOUT_FLOAT_FIELDS = frozenset({"max_covariance", "top_singular_value", "r_squared"})

#: Aggregate functions whose result is a reassociated float reduction.
_REASSOCIATING = frozenset({"sum", "mean", "avg"})


@dataclass(frozen=True)
class Tolerance:
    """How closely two engines' values must agree."""

    rel: float = 0.0
    label: str = "exact"

    def matches(self, actual: float, expected: float) -> bool:
        """True when ``actual`` agrees with ``expected`` under this tolerance."""
        if self.rel == 0.0:
            return bool(actual == expected)
        return math.isclose(actual, expected, rel_tol=self.rel, abs_tol=0.0)


#: Bit-for-bit equality — the default for everything structural.
EXACT = Tolerance()

#: Last-ulp agreement for reassociated float accumulation.
ULP = Tolerance(rel=1e-9, label="ulp")

#: Sketch estimates vs the exact reference answer, per approximate kind.
#: ``approx_distinct``: HyperLogLog at p=12 has standard error
#: 1.04/sqrt(4096) ≈ 1.63%; three sigma rounds up to 5% relative.
#: ``approx_quantile``: the t-digest's rank-error bound is deterministic,
#: so the comparison is a *bracket* — the exact quantile must lie inside
#: the returned ``[ci_low, ci_high]`` (a point interval while the digest
#: buffer is exact, i.e. for every dataset the fuzzer runs at).
SKETCH_TOLERANCES = {
    "approx_distinct": Tolerance(rel=0.05, label="hll-3sigma"),
    "approx_quantile": Tolerance(rel=0.0, label="digest-bracket"),
}


def sketch_tolerance(kind: str) -> Tolerance:
    """Tolerance for one sketch-backed approximate aggregate's estimate."""
    try:
        return SKETCH_TOLERANCES[kind]
    except KeyError:
        raise ValueError(
            f"no sketch tolerance for kind {kind!r} "
            f"(known: {sorted(SKETCH_TOLERANCES)})"
        ) from None


def aggregate_tolerance(engine: str, function: str) -> Tolerance:
    """Tolerance for one aggregate function's values on one engine.

    ``sum``/``mean`` reassociate float addition on *every* engine (each
    folds partials in its own order), so they are :data:`ULP` regardless
    of the engine; ``count``/``min``/``max`` are :data:`EXACT` everywhere.
    """
    if function in _REASSOCIATING:
        return ULP
    return EXACT


def summary_tolerance(engine: str, field: str) -> Tolerance:
    """Tolerance for one query-summary field on one engine.

    Only the Mahout kernel outputs on the hadoop family are ulp-tolerant;
    the shared plans feeding those kernels are verified exact upstream.
    """
    if engine == "hadoop" and field in MAHOUT_FLOAT_FIELDS:
        return ULP
    return EXACT


def assert_values_match(actual, expected, tolerance: Tolerance, context: str = ""):
    """Assert two scalars or arrays agree under ``tolerance``.

    Arrays must match in shape; :data:`EXACT` compares element-wise
    equality, a relative tolerance compares every element with
    ``math.isclose`` semantics (no absolute term, so zeros must be exact).
    """
    prefix = f"{context}: " if context else ""
    a = np.asarray(actual)
    b = np.asarray(expected)
    assert a.shape == b.shape, f"{prefix}shape {a.shape} vs {b.shape}"
    if tolerance.rel == 0.0:
        assert np.array_equal(a, b), (
            f"{prefix}values differ (exact): {a!r} vs {b!r}"
        )
        return
    both_zero = (a == 0) & (b == 0)
    with np.errstate(divide="ignore", invalid="ignore"):
        denominator = np.maximum(np.abs(a), np.abs(b))
        error = np.abs(a - b) / np.where(denominator == 0, 1.0, denominator)
    ok = both_zero | (error <= tolerance.rel)
    assert bool(np.all(ok)), (
        f"{prefix}values differ beyond rel={tolerance.rel}: "
        f"max rel error {float(np.max(error)):.3e}"
    )
