"""Cost-calibration records: optimizer predictions vs observed counters.

Every fuzzed plan contributes one record pairing the shared optimizer's
:func:`~repro.plan.optimizer.estimate_output_rows` prediction (and, for
plans the MapReduce bridge runs, its
:func:`~repro.mapreduce.bridge.estimate_shuffle_bytes` prediction) with
the observed cardinalities from the reference trace and the engines'
:class:`~repro.plan.observe.PlanObservation` hooks.  The annotated EXPLAIN
(:func:`repro.colstore.planner.explain_plan`, which renders ``~rows=``
per node) rides along so a miscalibrated record can be read directly.

Accuracy is measured as the **q-error** — ``max(p, o) / min(p, o)`` with
+1 smoothing so empty results stay finite — the standard cardinality-
estimation metric: symmetric, scale-free, and 1.0 at a perfect prediction.
``tools/check_cost_calibration.py`` gates the per-predicate-class median
and p90 of these q-errors.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

import numpy as np


def q_error(predicted: float, observed: float) -> float:
    """Symmetric relative error with +1 smoothing (1.0 = perfect)."""
    p = float(predicted) + 1.0
    o = float(observed) + 1.0
    return max(p, o) / min(p, o)


@dataclass
class CalibrationRecord:
    """One fuzzed plan's predictions next to its observations."""

    seed: int | None
    shape: str
    classes: list[str] = field(default_factory=list)
    predicted_rows: float | None = None
    observed_rows: int | None = None
    predicted_shuffle_bytes: float | None = None
    observed_shuffle_bytes: int | None = None
    explain: str = ""

    def rows_q_error(self) -> float | None:
        if self.predicted_rows is None or self.observed_rows is None:
            return None
        return q_error(self.predicted_rows, self.observed_rows)

    def shuffle_q_error(self) -> float | None:
        if (self.predicted_shuffle_bytes is None
                or self.observed_shuffle_bytes is None):
            return None
        return q_error(self.predicted_shuffle_bytes, self.observed_shuffle_bytes)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "shape": self.shape,
            "classes": list(self.classes),
            "predicted_rows": self.predicted_rows,
            "observed_rows": self.observed_rows,
            "predicted_shuffle_bytes": self.predicted_shuffle_bytes,
            "observed_shuffle_bytes": self.observed_shuffle_bytes,
            "explain": self.explain,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationRecord":
        return cls(
            seed=data.get("seed"),
            shape=data.get("shape", ""),
            classes=list(data.get("classes", [])),
            predicted_rows=data.get("predicted_rows"),
            observed_rows=data.get("observed_rows"),
            predicted_shuffle_bytes=data.get("predicted_shuffle_bytes"),
            observed_shuffle_bytes=data.get("observed_shuffle_bytes"),
            explain=data.get("explain", ""),
        )


def summarise(records: list[CalibrationRecord]) -> dict:
    """Per-predicate-class (and shuffle) q-error medians and p90s.

    A record contributes its rows q-error to every class its predicates
    carry (``none`` when the plan has no filters): a class-specific
    selectivity bug then surfaces in that class's bucket even when mixed
    plans dominate the run.
    """
    by_class: dict[str, list[float]] = {}
    shuffle: list[float] = []
    for record in records:
        rq = record.rows_q_error()
        if rq is not None:
            for kind in (record.classes or ["none"]):
                by_class.setdefault(kind, []).append(rq)
        sq = record.shuffle_q_error()
        if sq is not None:
            shuffle.append(sq)
    summary = {
        "rows": {
            kind: {
                "count": len(errors),
                "median_q": float(np.median(errors)),
                "p90_q": float(np.percentile(errors, 90)),
                "max_q": float(np.max(errors)),
            }
            for kind, errors in sorted(by_class.items())
        }
    }
    if shuffle:
        summary["shuffle_bytes"] = {
            "count": len(shuffle),
            "median_q": float(np.median(shuffle)),
            "p90_q": float(np.percentile(shuffle, 90)),
            "max_q": float(np.max(shuffle)),
        }
    return summary


def write_report(path: str | pathlib.Path, records: list[CalibrationRecord],
                 meta: dict | None = None) -> dict:
    """Write the calibration report JSON and return its parsed content."""
    report = {
        "meta": dict(meta or {}),
        "summary": summarise(records),
        "records": [record.as_dict() for record in records],
    }
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2) + "\n")
    return report


def load_report(path: str | pathlib.Path) -> tuple[dict, list[CalibrationRecord]]:
    """Read a report back as ``(meta, records)``."""
    data = json.loads(pathlib.Path(path).read_text())
    records = [CalibrationRecord.from_dict(entry) for entry in data.get("records", [])]
    return data.get("meta", {}), records
