"""Chunked arrays: the array DBMS's storage objects."""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.arraydb.chunk import Chunk
from repro.arraydb.schema import ArraySchema, Attribute, Dimension


class ChunkedArray:
    """A multi-dimensional array stored as a grid of chunks.

    Only chunks with at least one non-empty cell are stored, so heavily
    filtered arrays stay small (SciDB's sparse-chunk behaviour).
    """

    def __init__(self, schema: ArraySchema, chunks: Mapping[tuple[int, ...], Chunk] | None = None):
        self.schema = schema
        self._chunks: dict[tuple[int, ...], Chunk] = dict(chunks or {})

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_dense(
        cls,
        name: str,
        matrix: np.ndarray,
        dimension_names: Sequence[str],
        attribute_name: str = "value",
        chunk_sizes: Sequence[int] | None = None,
    ) -> "ChunkedArray":
        """Build a chunked array from a dense numpy array.

        Args:
            name: array name.
            matrix: dense data of any dimensionality.
            dimension_names: one name per matrix axis.
            attribute_name: the single attribute holding the cell values.
            chunk_sizes: chunk extent per axis (defaults to ~256 along each
                axis, clipped to the axis length).
        """
        matrix = np.asarray(matrix)
        if len(dimension_names) != matrix.ndim:
            raise ValueError("need one dimension name per matrix axis")
        if chunk_sizes is None:
            chunk_sizes = [min(256, max(1, length)) for length in matrix.shape]
        if len(chunk_sizes) != matrix.ndim:
            raise ValueError("need one chunk size per matrix axis")
        dimensions = [
            Dimension(dim_name, 0, max(0, length - 1), chunk)
            for dim_name, length, chunk in zip(dimension_names, matrix.shape, chunk_sizes, strict=True)
        ]
        schema = ArraySchema(name, dimensions, [Attribute(attribute_name, matrix.dtype)])
        array = cls(schema)
        for chunk_coords in array.chunk_grid():
            slices = array.chunk_slices(chunk_coords)
            block = matrix[slices]
            if block.size == 0:
                continue
            origin = tuple(s.start for s in slices)
            array._chunks[chunk_coords] = Chunk(
                coordinates=chunk_coords,
                origin=origin,
                data={attribute_name: np.ascontiguousarray(block)},
            )
        return array

    # -- chunk grid helpers ----------------------------------------------------------

    def chunk_grid(self) -> Iterator[tuple[int, ...]]:
        """Iterate all chunk-grid coordinates implied by the schema."""
        ranges = [range(d.chunk_count) for d in self.schema.dimensions]
        return itertools.product(*ranges)

    def chunk_slices(self, chunk_coords: tuple[int, ...]) -> tuple[slice, ...]:
        """Return the cell-coordinate slices covered by a chunk."""
        slices = []
        for dimension, coordinate in zip(self.schema.dimensions, chunk_coords, strict=True):
            low, high = dimension.chunk_bounds(coordinate)
            slices.append(slice(low, high + 1))
        return tuple(slices)

    def chunks(self) -> Iterator[Chunk]:
        """Iterate stored (non-empty) chunks in deterministic order."""
        for key in sorted(self._chunks):
            yield self._chunks[key]

    def chunk_at(self, chunk_coords: tuple[int, ...]) -> Chunk | None:
        return self._chunks.get(tuple(chunk_coords))

    def put_chunk(self, chunk: Chunk) -> None:
        """Insert or replace a chunk."""
        self._chunks[tuple(chunk.coordinates)] = chunk

    # -- stats -------------------------------------------------------------------------

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def cell_count(self) -> int:
        return sum(chunk.cell_count for chunk in self._chunks.values())

    @property
    def nbytes(self) -> int:
        return sum(chunk.nbytes for chunk in self._chunks.values())

    @property
    def shape(self) -> tuple[int, ...]:
        return self.schema.shape

    def __repr__(self) -> str:
        return (
            f"ChunkedArray({self.schema!r}, chunks={self.chunk_count}, "
            f"cells={self.cell_count})"
        )

    # -- conversion -----------------------------------------------------------------------

    def to_dense(self, attribute: str | None = None, fill: float = 0.0) -> np.ndarray:
        """Materialise the array (one attribute) as a dense numpy array.

        Empty cells become ``fill``.  The result is indexed by *offset from
        each dimension's start*, so it always has ``schema.shape``.
        """
        if attribute is None:
            attribute = self.schema.attribute_names[0]
        dtype = self.schema.attribute(attribute).dtype
        dense = np.full(self.schema.shape, fill, dtype=np.result_type(dtype, type(fill)))
        starts = [d.start for d in self.schema.dimensions]
        for chunk in self._chunks.values():
            slices = tuple(
                slice(origin - start, origin - start + extent)
                for origin, start, extent in zip(chunk.origin, starts, chunk.shape, strict=True)
            )
            block = chunk.masked_attribute(attribute, fill=fill)
            dense[slices] = block
        return dense

    def attribute_cells(self, attribute: str | None = None) -> tuple[tuple[np.ndarray, ...], np.ndarray]:
        """Return (coordinates per dimension, values) for all non-empty cells."""
        if attribute is None:
            attribute = self.schema.attribute_names[0]
        coordinate_lists: list[list[np.ndarray]] = [[] for _ in range(self.schema.ndim)]
        values = []
        for chunk in self.chunks():
            coords = chunk.coordinates_of_cells()
            for axis, axis_coords in enumerate(coords):
                coordinate_lists[axis].append(axis_coords)
            block = chunk.attribute(attribute)
            mask = chunk.mask if chunk.mask is not None else np.ones(block.shape, bool)
            values.append(block[mask])
        if not values:
            empty = tuple(np.empty(0, dtype=np.int64) for _ in range(self.schema.ndim))
            return empty, np.empty(0)
        coordinates = tuple(np.concatenate(axis_list) for axis_list in coordinate_lists)
        return coordinates, np.concatenate(values)
