"""Chunks: the unit of storage and execution in the array DBMS."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Chunk:
    """One rectangular chunk of an array.

    Attributes:
        coordinates: the chunk's index along each dimension (not cell
            coordinates — chunk grid coordinates).
        origin: the cell coordinate of the chunk's first cell along each
            dimension.
        data: mapping of attribute name → dense ndarray of the chunk's shape.
        mask: boolean ndarray of the chunk's shape; True marks non-empty
            cells (SciDB arrays are sparse at chunk granularity).
    """

    coordinates: tuple[int, ...]
    origin: tuple[int, ...]
    data: dict[str, np.ndarray] = field(default_factory=dict)
    mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        shapes = {array.shape for array in self.data.values()}
        if len(shapes) > 1:
            raise ValueError(f"attribute arrays have differing shapes: {shapes}")
        if self.mask is None and self.data:
            shape = next(iter(self.data.values())).shape
            self.mask = np.ones(shape, dtype=bool)

    @property
    def shape(self) -> tuple[int, ...]:
        if self.data:
            return next(iter(self.data.values())).shape
        return self.mask.shape if self.mask is not None else ()

    @property
    def cell_count(self) -> int:
        """Number of non-empty cells."""
        if self.mask is None:
            return 0
        return int(self.mask.sum())

    @property
    def nbytes(self) -> int:
        total = sum(array.nbytes for array in self.data.values())
        if self.mask is not None:
            total += self.mask.nbytes
        return total

    def attribute(self, name: str) -> np.ndarray:
        """Return one attribute's dense block."""
        try:
            return self.data[name]
        except KeyError:
            raise KeyError(
                f"chunk has no attribute {name!r}; has {sorted(self.data)}"
            ) from None

    def attribute_range(self, name: str) -> tuple[float, float] | None:
        """(min, max) of the attribute over the chunk's non-empty cells.

        This is the chunk's synopsis metadata: the expression-aware
        :func:`repro.arraydb.operators.filter_attribute` consults it to
        skip whole chunks that cannot satisfy a range/equality/membership
        predicate.  Computed on first use and cached on the chunk (the
        chunk's data is immutable in practice — operators copy-on-write).
        Returns ``None`` for a chunk with no non-empty cells or a
        non-numeric attribute.
        """
        cache = getattr(self, "_range_cache", None)
        if cache is None:
            cache = {}
            self._range_cache = cache
        if name not in cache:
            values = self.attribute(name)
            selected = values if self.mask is None else values[self.mask]
            if selected.size == 0 or not np.issubdtype(selected.dtype, np.number):
                cache[name] = None
            else:
                cache[name] = (float(selected.min()), float(selected.max()))
        return cache[name]

    def masked_attribute(self, name: str, fill: float = 0.0) -> np.ndarray:
        """Return the attribute with empty cells replaced by ``fill``."""
        values = self.attribute(name)
        if self.mask is None:
            return values
        return np.where(self.mask, values, fill)

    def coordinates_of_cells(self) -> tuple[np.ndarray, ...]:
        """Return global cell coordinates of the non-empty cells.

        Returns one array per dimension, aligned, ready for vectorised
        redimension/cross-join bookkeeping.
        """
        local = np.nonzero(self.mask if self.mask is not None else np.ones(self.shape, bool))
        return tuple(axis_index + offset for axis_index, offset in zip(local, self.origin, strict=True))

    def copy(self) -> "Chunk":
        return Chunk(
            coordinates=self.coordinates,
            origin=self.origin,
            data={name: array.copy() for name, array in self.data.items()},
            mask=None if self.mask is None else self.mask.copy(),
        )
