"""Array schemas: dimensions and attributes.

An array schema in this engine mirrors SciDB's::

    expression <value: double> [patient_id = 0:39999, 1000; gene_id = 0:29999, 1000]

i.e. a list of typed attributes (cell payload) and a list of named
dimensions, each with an inclusive coordinate range and a chunk size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Dimension:
    """One array dimension.

    Attributes:
        name: dimension name (e.g. ``patient_id``).
        start: lowest coordinate (inclusive).
        end: highest coordinate (inclusive).
        chunk_size: chunk extent along this dimension.
    """

    name: str
    start: int
    end: int
    chunk_size: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"dimension {self.name!r} has end < start")
        if self.chunk_size < 1:
            raise ValueError(f"dimension {self.name!r} needs a positive chunk size")

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    @property
    def chunk_count(self) -> int:
        return (self.length + self.chunk_size - 1) // self.chunk_size

    def chunk_of(self, coordinate: int) -> int:
        """Return the chunk index containing ``coordinate``."""
        if not self.start <= coordinate <= self.end:
            raise IndexError(
                f"coordinate {coordinate} outside dimension {self.name!r} "
                f"[{self.start}, {self.end}]"
            )
        return (coordinate - self.start) // self.chunk_size

    def chunk_bounds(self, chunk_index: int) -> tuple[int, int]:
        """Return the inclusive coordinate bounds of chunk ``chunk_index``."""
        if not 0 <= chunk_index < self.chunk_count:
            raise IndexError(f"chunk {chunk_index} outside dimension {self.name!r}")
        low = self.start + chunk_index * self.chunk_size
        high = min(low + self.chunk_size - 1, self.end)
        return low, high

    def resized(self, start: int, end: int) -> "Dimension":
        """Return a copy of this dimension with new bounds."""
        return Dimension(self.name, start, end, self.chunk_size)


@dataclass(frozen=True)
class Attribute:
    """One typed cell attribute."""

    name: str
    dtype: np.dtype = np.dtype(np.float64)

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))


class ArraySchema:
    """Dimensions + attributes for one array."""

    def __init__(self, name: str, dimensions: Sequence[Dimension],
                 attributes: Sequence[Attribute]):
        if not name:
            raise ValueError("array name must be non-empty")
        if not dimensions:
            raise ValueError("an array needs at least one dimension")
        if not attributes:
            raise ValueError("an array needs at least one attribute")
        dim_names = [d.name for d in dimensions]
        attr_names = [a.name for a in attributes]
        if len(set(dim_names)) != len(dim_names):
            raise ValueError("duplicate dimension names")
        if len(set(attr_names)) != len(attr_names):
            raise ValueError("duplicate attribute names")
        if set(dim_names) & set(attr_names):
            raise ValueError("dimension and attribute names must not overlap")
        self.name = name
        self.dimensions = tuple(dimensions)
        self.attributes = tuple(attributes)
        self._dim_index = {d.name: i for i, d in enumerate(dimensions)}
        self._attr_index = {a.name: i for i, a in enumerate(attributes)}

    # -- lookups ----------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.dimensions)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(d.length for d in self.dimensions)

    @property
    def dimension_names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def dimension(self, name: str) -> Dimension:
        try:
            return self.dimensions[self._dim_index[name]]
        except KeyError:
            raise KeyError(
                f"no dimension {name!r}; array has {list(self.dimension_names)}"
            ) from None

    def dimension_index(self, name: str) -> int:
        self.dimension(name)
        return self._dim_index[name]

    def attribute(self, name: str) -> Attribute:
        try:
            return self.attributes[self._attr_index[name]]
        except KeyError:
            raise KeyError(
                f"no attribute {name!r}; array has {list(self.attribute_names)}"
            ) from None

    def attribute_index(self, name: str) -> int:
        self.attribute(name)
        return self._attr_index[name]

    # -- derivation --------------------------------------------------------------

    def with_attributes(self, attributes: Sequence[Attribute], name: str | None = None) -> "ArraySchema":
        """Return a schema with the same dimensions but new attributes."""
        return ArraySchema(name or self.name, self.dimensions, attributes)

    def with_dimensions(self, dimensions: Sequence[Dimension], name: str | None = None) -> "ArraySchema":
        """Return a schema with the same attributes but new dimensions."""
        return ArraySchema(name or self.name, dimensions, self.attributes)

    def renamed(self, name: str) -> "ArraySchema":
        return ArraySchema(name, self.dimensions, self.attributes)

    def __repr__(self) -> str:
        attrs = ", ".join(f"{a.name}:{a.dtype}" for a in self.attributes)
        dims = "; ".join(
            f"{d.name}={d.start}:{d.end},{d.chunk_size}" for d in self.dimensions
        )
        return f"{self.name} <{attrs}> [{dims}]"
