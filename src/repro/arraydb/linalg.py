"""Chunk-wise linear algebra for the array DBMS.

SciDB runs some analytics natively over its chunks (the paper notes its
custom Wilcoxon and biclustering code) and delegates dense factorizations to
ScaLAPACK.  This module provides both paths:

* chunk-wise kernels (:func:`matvec`, :func:`gram_matrix`,
  :func:`covariance`) that never materialise the whole array on one side —
  they stream chunk blocks through numpy GEMMs and accumulate, and
* :func:`to_scalapack` / :func:`from_scalapack`, the explicit conversion
  between the DBMS's chunked layout and the dense layout the external
  solver wants (the "O(N) conversion with a fairly large constant" the
  paper's Section 6.2 discusses — the copy really happens here).
"""

from __future__ import annotations

import numpy as np

from repro.arraydb.array import ChunkedArray
from repro.linalg.lanczos import LanczosResult, lanczos_eigsh


def to_scalapack(array: ChunkedArray, attribute: str | None = None) -> np.ndarray:
    """Convert a chunked array to the dense layout an external solver expects.

    This is a real reformat: every chunk is copied into its place in a new
    dense buffer.
    """
    return array.to_dense(attribute=attribute, fill=0.0).astype(np.float64, copy=True)


def from_scalapack(name: str, matrix: np.ndarray, template: ChunkedArray) -> ChunkedArray:
    """Convert a dense result back into a chunked array shaped like ``template``."""
    chunk_sizes = [d.chunk_size for d in template.schema.dimensions][: matrix.ndim]
    if len(chunk_sizes) < matrix.ndim:
        chunk_sizes += [min(256, s) for s in matrix.shape[len(chunk_sizes):]]
    dimension_names = list(template.schema.dimension_names)[: matrix.ndim]
    while len(dimension_names) < matrix.ndim:
        dimension_names.append(f"dim_{len(dimension_names)}")
    return ChunkedArray.from_dense(
        name,
        matrix,
        dimension_names=dimension_names,
        attribute_name=template.schema.attribute_names[0],
        chunk_sizes=chunk_sizes,
    )


def matvec(array: ChunkedArray, vector: np.ndarray, attribute: str | None = None,
           transpose: bool = False) -> np.ndarray:
    """Chunk-wise matrix–vector product for a 2-D array.

    Args:
        array: a 2-D chunked array ``A``.
        vector: the vector ``x``.
        attribute: which attribute holds the matrix values.
        transpose: compute ``Aᵀ x`` instead of ``A x``.
    """
    if array.schema.ndim != 2:
        raise ValueError("matvec needs a 2-D array")
    if attribute is None:
        attribute = array.schema.attribute_names[0]
    n_rows, n_cols = array.schema.shape
    row_start = array.schema.dimensions[0].start
    col_start = array.schema.dimensions[1].start
    vector = np.asarray(vector, dtype=np.float64)
    expected = n_rows if transpose else n_cols
    if len(vector) != expected:
        raise ValueError(f"vector has length {len(vector)}, expected {expected}")
    result = np.zeros(n_cols if transpose else n_rows)
    for chunk in array.chunks():
        block = chunk.masked_attribute(attribute, fill=0.0)
        row_offset = chunk.origin[0] - row_start
        col_offset = chunk.origin[1] - col_start
        rows = slice(row_offset, row_offset + block.shape[0])
        cols = slice(col_offset, col_offset + block.shape[1])
        if transpose:
            result[cols] += block.T @ vector[rows]
        else:
            result[rows] += block @ vector[cols]
    return result


def gram_matrix(array: ChunkedArray, attribute: str | None = None,
                center: bool = False) -> np.ndarray:
    """Compute ``AᵀA`` (optionally of the column-centred array) chunk-wise.

    The accumulation loops over *row bands* of chunks so no full dense copy
    of ``A`` is ever built; each band contributes ``bandᵀ band``.
    """
    if array.schema.ndim != 2:
        raise ValueError("gram_matrix needs a 2-D array")
    if attribute is None:
        attribute = array.schema.attribute_names[0]
    n_rows, n_cols = array.schema.shape
    col_start = array.schema.dimensions[1].start

    column_means = np.zeros(n_cols)
    if center:
        counts = np.zeros(n_cols)
        for chunk in array.chunks():
            block = chunk.masked_attribute(attribute, fill=0.0)
            mask = chunk.mask if chunk.mask is not None else np.ones(block.shape, bool)
            col_offset = chunk.origin[1] - col_start
            cols = slice(col_offset, col_offset + block.shape[1])
            column_means[cols] += block.sum(axis=0)
            counts[cols] += mask.sum(axis=0)
        column_means = np.where(counts > 0, column_means / np.maximum(counts, 1), 0.0)

    gram = np.zeros((n_cols, n_cols))
    # Group chunks by their row-band so each band is assembled once.
    bands: dict[int, list] = {}
    for chunk in array.chunks():
        bands.setdefault(chunk.coordinates[0], []).append(chunk)
    for band_chunks in bands.values():
        band_rows = band_chunks[0].shape[0]
        band = np.zeros((band_rows, n_cols))
        for chunk in band_chunks:
            block = chunk.masked_attribute(attribute, fill=0.0)
            col_offset = chunk.origin[1] - col_start
            band[:, col_offset:col_offset + block.shape[1]] = block
        if center:
            band = band - column_means
        gram += band.T @ band
    return gram


def covariance(array: ChunkedArray, attribute: str | None = None, ddof: int = 1) -> np.ndarray:
    """Column covariance of a 2-D chunked array, computed without densifying it."""
    n_rows = array.schema.shape[0]
    if n_rows - ddof <= 0:
        raise ValueError("not enough rows for the requested ddof")
    centred_gram = gram_matrix(array, attribute=attribute, center=True)
    cov = centred_gram / (n_rows - ddof)
    return (cov + cov.T) / 2.0


def lanczos_svd_chunked(array: ChunkedArray, k: int = 50, attribute: str | None = None,
                        seed: int = 0) -> LanczosResult:
    """Truncated SVD of a 2-D chunked array via Lanczos on chunk-wise matvecs.

    The Lanczos recurrence only needs ``A (Aᵀ v)`` products, so the array is
    never converted to the external dense layout — this is SciDB's "native"
    analytics path.
    """
    if array.schema.ndim != 2:
        raise ValueError("lanczos_svd_chunked needs a 2-D array")
    n_rows, n_cols = array.schema.shape
    k = max(1, min(k, n_rows, n_cols))

    def operator(vector: np.ndarray) -> np.ndarray:
        return matvec(array, matvec(array, vector, attribute=attribute),
                      attribute=attribute, transpose=True)

    eigenvalues, right_vectors = lanczos_eigsh(operator, dimension=n_cols, k=k, seed=seed)
    singular_values = np.sqrt(np.clip(eigenvalues, 0.0, None))
    left_vectors = np.column_stack([
        matvec(array, right_vectors[:, i], attribute=attribute) for i in range(k)
    ])
    scale = np.where(singular_values > 0, singular_values, 1.0)
    left_vectors = left_vectors / scale
    norms = np.linalg.norm(left_vectors, axis=0)
    norms[norms == 0] = 1.0
    left_vectors = left_vectors / norms
    return LanczosResult(
        singular_values=singular_values,
        left_vectors=left_vectors,
        right_vectors=right_vectors,
        iterations=k,
    )
