"""Execute shared logical plans (:mod:`repro.plan`) on the array DBMS.

The column store runs shared plans through
:func:`repro.colstore.planner.run_plan` and the row store through
:func:`repro.relational.bridge.run_shared_plan`; this module is the array
DBMS counterpart, so the *same* plan objects — built once per GenBase
query in :mod:`repro.core.queries` — drive all three storage
architectures.

The array data model has no tables, so the executor maps the plan's
relational vocabulary onto arrays through *frames*:

* an :class:`ArrayFrame` presents a set of 1-D metadata arrays sharing
  one dimension (``patients``: disease_id / age / gender vectors over
  ``patient_id``) as a logical table whose key column is the dimension;
* a :class:`MatrixFrame` presents the 2-D expression array as the long
  fact table ``(patient_id, gene_id, expression_value)`` — its id
  columns are the array's dimensions and its value column is the cell
  attribute.

Lowering then follows the array idiom the paper describes for SciDB: a
``Filter`` over a metadata frame is a chunk-wise scan of the metadata
vectors (each classified range/equality/membership conjunct first tests
the chunk's min/max synopsis and can skip the whole chunk, see
:func:`repro.arraydb.operators.expression_skips_chunk`); a ``Join``
against the matrix frame on a dimension is a dimension join —
:func:`repro.arraydb.operators.subarray_by_index` keeps the selected
coordinates and compacts the axis; ``Aggregate`` runs chunk-wise along a
dimension and ``Pivot`` is :meth:`~repro.arraydb.array.ChunkedArray.to_dense`
(the data is already a matrix — the restructuring every relational
engine pays for simply does not exist here).

The executor *requires* the optimizer's predicate pushdown: a dimension
predicate must sit on the dimension table's side of the join before
lowering (``run_shared_plan`` optimizes by default with
:data:`ARRAY_CAPABILITIES`, which enables pushdown but disables the
build-side rule — a dimension join has no build side to choose).

>>> import numpy as np
>>> from repro.plan import Filter, Join, Pivot, Scan, col
>>> matrix = np.arange(12.0).reshape(4, 3)
>>> frames = {
...     "microarray": matrix_frame("expression", matrix,
...                                ["patient_id", "gene_id"],
...                                "expression_value", chunk_sizes=[2, 2]),
...     "patients": ArrayFrame("patient_id", {
...         "age": metadata_array("age", np.array([30.0, 50.0, 20.0, 60.0]),
...                               "patient_id", "age", chunk_size=2)}),
... }
>>> plan = Pivot(Join(Filter(Scan("patients"), col("age") < 45),
...                   Scan("microarray"), "patient_id", "patient_id"),
...              "patient_id", "gene_id", "expression_value")
>>> dense, rows, cols = run_shared_plan(plan, frames)
>>> rows.tolist(), dense.tolist()
([0, 2], [[0.0, 1.0, 2.0], [6.0, 7.0, 8.0]])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.arraydb.array import ChunkedArray
from repro.arraydb.operators import (
    FilterStats,
    aggregate,
    expression_skips_chunk,
    filter_attribute,
    subarray_by_index,
)
from repro.plan import logical
from repro.plan.expressions import Expression, split_conjuncts
from repro.plan.observe import PlanObservation
from repro.plan.optimizer import (
    ColumnStats,
    OptimizerCapabilities,
    PlanCatalog,
    optimize,
)
from repro.plan.verify import maybe_verify_rewrite

#: The optimizer profile the array executor can honour: pushdown moves the
#: dimension predicates onto the metadata frames (required by the
#: lowering), pruning and reordering apply as usual, but a dimension join
#: broadcasts along coordinates and has no build side to choose.
ARRAY_CAPABILITIES = OptimizerCapabilities(join_build_side=False)

#: Shared Aggregate function names → array-operator aggregate names.
_AGGREGATE_NAMES = {"mean": "avg"}


@dataclass(frozen=True)
class ArrayFrame:
    """A logical dimension table backed by 1-D metadata arrays.

    Attributes:
        dimension: the shared dimension name — the frame's key column.
        columns: column name → 1-D :class:`ChunkedArray` over ``dimension``
            whose single attribute carries the column's values.
    """

    dimension: str
    columns: Mapping[str, ChunkedArray]

    def column_names(self) -> list[str]:
        """The frame's columns: the dimension first, then the metadata."""
        return [self.dimension, *self.columns]


@dataclass(frozen=True)
class MatrixFrame:
    """The fact table: an n-D array whose dimensions are the id columns.

    Attributes:
        array: the chunked data array.
        value_column: logical column name of the cell attribute (the
            array's attribute name must match, so shared expressions can
            reference it).
    """

    array: ChunkedArray
    value_column: str

    def column_names(self) -> list[str]:
        """Dimension (id) columns in schema order, then the value column."""
        return [*self.array.schema.dimension_names, self.value_column]


def metadata_array(name: str, values: np.ndarray, dimension: str,
                   attribute: str, chunk_size: int = 256) -> ChunkedArray:
    """Build one 1-D metadata array for an :class:`ArrayFrame` column."""
    return ChunkedArray.from_dense(
        name, np.asarray(values), dimension_names=[dimension],
        attribute_name=attribute, chunk_sizes=[chunk_size],
    )


def matrix_frame(name: str, matrix: np.ndarray, dimension_names: Sequence[str],
                 value_column: str, chunk_sizes: Sequence[int] | None = None) -> MatrixFrame:
    """Build a :class:`MatrixFrame` from a dense matrix."""
    array = ChunkedArray.from_dense(
        name, np.asarray(matrix), dimension_names=list(dimension_names),
        attribute_name=value_column, chunk_sizes=chunk_sizes,
    )
    return MatrixFrame(array=array, value_column=value_column)


@dataclass
class ArrayQueryResult:
    """A relational-algebra subtree's result on the array executor.

    ``array`` is the (compacted) chunked subarray; ``labels`` maps each
    dimension name to the original coordinates its compacted axis
    positions correspond to — what the pivot's row/column labels would
    be, and what the adapters report as selection cardinalities.
    """

    array: ChunkedArray
    labels: dict[str, np.ndarray] = field(default_factory=dict)

    def label(self, dimension: str) -> np.ndarray:
        """Original coordinates along one dimension, sorted ascending."""
        return self.labels[dimension]


class ArrayPlanCatalog(PlanCatalog):
    """Expose the frames' schemas and chunk synopses to the shared optimizer."""

    def __init__(self, frames: Mapping[str, ArrayFrame | MatrixFrame]):
        self.frames = dict(frames)

    def columns_of(self, table: str) -> list[str] | None:
        frame = self.frames.get(table)
        return None if frame is None else frame.column_names()

    def stats_of(self, table: str, column: str) -> ColumnStats | None:
        frame = self.frames.get(table)
        if frame is None:
            return None
        if isinstance(frame, ArrayFrame):
            if column == frame.dimension:
                length = _frame_length(frame)
                start, end = _frame_bounds(frame)
                return ColumnStats(row_count=length, distinct=length,
                                   minimum=float(start), maximum=float(end))
            array = frame.columns.get(column)
            if array is None:
                return None
            bounds = _array_value_bounds(array)
            return ColumnStats(
                row_count=array.schema.dimensions[0].length,
                minimum=None if bounds is None else bounds[0],
                maximum=None if bounds is None else bounds[1],
            )
        schema = frame.array.schema
        if column == frame.value_column:
            return ColumnStats(row_count=frame.array.cell_count)
        for dimension in schema.dimensions:
            if dimension.name == column:
                return ColumnStats(
                    row_count=frame.array.cell_count,
                    distinct=dimension.length,
                    minimum=float(dimension.start),
                    maximum=float(dimension.end),
                )
        return None

    def dtype_of(self, table: str, column: str) -> np.dtype | None:
        frame = self.frames.get(table)
        if frame is None:
            return None
        if isinstance(frame, ArrayFrame):
            if column == frame.dimension:
                return np.dtype(np.int64)
            array = frame.columns.get(column)
            if array is None:
                return None
            return _attribute_dtype(array)
        if column == frame.value_column:
            return _attribute_dtype(frame.array)
        if any(d.name == column for d in frame.array.schema.dimensions):
            return np.dtype(np.int64)
        return None

    def row_count_of(self, table: str) -> int | None:
        frame = self.frames.get(table)
        if frame is None:
            return None
        if isinstance(frame, ArrayFrame):
            return _frame_length(frame)
        return frame.array.cell_count


def _attribute_dtype(array: ChunkedArray) -> np.dtype:
    """The dtype of a chunked array's single logical attribute."""
    name = array.schema.attribute_names[0]
    return np.dtype(array.schema.attribute(name).dtype)


def _frame_length(frame: ArrayFrame) -> int:
    first = next(iter(frame.columns.values()))
    return first.schema.dimensions[0].length


def _frame_bounds(frame: ArrayFrame) -> tuple[int, int]:
    first = next(iter(frame.columns.values()))
    dimension = first.schema.dimensions[0]
    return dimension.start, dimension.end


def _array_value_bounds(array: ChunkedArray) -> tuple[float, float] | None:
    """Aggregate the chunks' min/max synopses into array-level bounds."""
    attribute = array.schema.attribute_names[0]
    minimum = maximum = None
    for chunk in array.chunks():
        bounds = chunk.attribute_range(attribute)
        if bounds is None:
            continue
        minimum = bounds[0] if minimum is None else min(minimum, bounds[0])
        maximum = bounds[1] if maximum is None else max(maximum, bounds[1])
    if minimum is None:
        return None
    return minimum, maximum


# --------------------------------------------------------------------------- #
# Lowering
# --------------------------------------------------------------------------- #

# eq=False: Expression.__eq__ builds an AST node, so the generated
# field-wise __eq__ would never return a bool.  Identity semantics.
@dataclass(eq=False)
class _MetaSelection:
    """A metadata-frame subtree: the frame plus its stacked predicates."""

    name: str
    frame: ArrayFrame
    predicates: list[Expression] = field(default_factory=list)


@dataclass(eq=False)
class _MatrixSelection:
    """A fact subtree: per-dimension coordinate selections + cell filters."""

    name: str
    frame: MatrixFrame
    coordinates: dict[str, np.ndarray | None] = field(default_factory=dict)
    cell_predicates: list[Expression] = field(default_factory=list)


def optimize_shared_plan(plan: logical.PlanNode,
                         frames: Mapping[str, ArrayFrame | MatrixFrame]) -> logical.PlanNode:
    """Run the shared optimizer with the frames' schemas and synopses."""
    return optimize(plan, ArrayPlanCatalog(frames), ARRAY_CAPABILITIES)


def run_shared_plan(plan: logical.PlanNode,
                    frames: Mapping[str, ArrayFrame | MatrixFrame],
                    optimized: bool = True,
                    stats: FilterStats | None = None,
                    observation: PlanObservation | None = None):
    """Execute a shared logical plan against the array frames.

    Relational-algebra subtrees over the fact array return an
    :class:`ArrayQueryResult` (the compacted subarray plus its coordinate
    labels); a metadata-only subtree returns the selected coordinates as
    a sorted int64 array; :class:`~repro.plan.logical.Aggregate` returns
    ``(group_keys, aggregates)`` and :class:`~repro.plan.logical.Pivot`
    returns ``(matrix, row_labels, column_labels)`` — the shared executor
    contract.

    Args:
        plan: the shared logical plan tree.
        frames: scan name → :class:`ArrayFrame` / :class:`MatrixFrame`.
        optimized: run the shared optimizer first.  The array lowering
            requires dimension predicates to sit on the dimension-table
            side of joins, which is exactly what the pushdown rule
            arranges; pass False only for plans already in that shape.
        stats: optional :class:`~repro.arraydb.operators.FilterStats`
            accumulating chunk-skip counters across every filter pass.
        observation: optional :class:`~repro.plan.observe.PlanObservation`
            filled with the observed output cardinality.

    With the ``REPRO_VERIFY_PLANS`` debug flag set, the optimizer rewrite
    is checked by the static verifier (:mod:`repro.plan.verify`).
    """
    if optimized:
        written = plan
        plan = optimize_shared_plan(plan, frames)
        maybe_verify_rewrite(written, plan, ArrayPlanCatalog(frames))
    if observation is not None:
        observation.engine = "scidb"
    if isinstance(plan, logical.Aggregate):
        selection = _lower(plan.child, frames, stats)
        if not isinstance(selection, _MatrixSelection):
            raise TypeError("Aggregate expects a fact-array subtree")
        result = _materialise(selection, stats)
        if plan.value != selection.frame.value_column:
            raise KeyError(f"no value column {plan.value!r} in frame {selection.name!r}")
        function = _AGGREGATE_NAMES.get(plan.function, plan.function)
        values = aggregate(result.array, plan.value, function, along=plan.group_by)
        labels = result.label(plan.group_by)
        if observation is not None:
            observation.output_rows = int(len(labels))
        return labels, np.asarray(values, dtype=np.float64)
    if isinstance(plan, logical.Pivot):
        selection = _lower(plan.child, frames, stats)
        if not isinstance(selection, _MatrixSelection):
            raise TypeError("Pivot expects a fact-array subtree")
        result = _materialise(selection, stats)
        dims = list(result.array.schema.dimension_names)
        if dims == [plan.row_key, plan.column_key]:
            dense = result.array.to_dense(attribute=plan.value)
        elif dims == [plan.column_key, plan.row_key]:
            dense = result.array.to_dense(attribute=plan.value).T
        else:
            raise KeyError(
                f"pivot keys ({plan.row_key!r}, {plan.column_key!r}) do not "
                f"match array dimensions {dims}"
            )
        if observation is not None:
            observation.output_rows = int(dense.shape[0])
            observation.output_cells = int(dense.size)
        return dense, result.label(plan.row_key), result.label(plan.column_key)
    selection = _lower(plan, frames, stats)
    if isinstance(selection, _MetaSelection):
        coordinates = _resolve_meta(selection, stats)
        if coordinates is None:
            start, end = _frame_bounds(selection.frame)
            coordinates = np.arange(start, end + 1, dtype=np.int64)
        if observation is not None:
            observation.output_rows = int(len(coordinates))
        return coordinates
    result = _materialise(selection, stats)
    if observation is not None:
        observation.output_rows = int(result.array.cell_count)
    return result


def _lower(node: logical.PlanNode,
           frames: Mapping[str, ArrayFrame | MatrixFrame],
           stats: FilterStats | None = None):
    """Lower a relational-algebra subtree onto a selection description."""
    if isinstance(node, logical.Scan):
        frame = frames.get(node.table)
        if frame is None:
            raise KeyError(f"no frame named {node.table!r}; have {sorted(frames)}")
        if isinstance(frame, ArrayFrame):
            return _MetaSelection(node.table, frame)
        return _MatrixSelection(
            node.table, frame,
            {name: None for name in frame.array.schema.dimension_names},
        )
    if isinstance(node, logical.Project):
        selection = _lower(node.child, frames, stats)
        names = (selection.frame.column_names()
                 if isinstance(selection, (_MetaSelection, _MatrixSelection)) else [])
        missing = set(node.columns) - set(names)
        if missing:
            raise KeyError(
                f"no column {sorted(missing)[0]!r} in frame {selection.name!r}"
            )
        # Projection is structural on arrays: dimensions and the cell
        # attribute are always present, metadata attributes never survive
        # a dimension join — nothing to do.
        return selection
    if isinstance(node, logical.Filter):
        selection = _lower(node.child, frames, stats)
        if isinstance(selection, _MetaSelection):
            _validate_columns(node.predicate, selection.frame.column_names(),
                              selection.name)
            selection.predicates.append(node.predicate)
            return selection
        return _filter_matrix(selection, node.predicate)
    if isinstance(node, logical.Join):
        left = _lower(node.left, frames, stats)
        right = _lower(node.right, frames, stats)
        if isinstance(left, _MetaSelection) and isinstance(right, _MatrixSelection):
            return _dimension_join(right, left, node.right_key, node.left_key, stats)
        if isinstance(left, _MatrixSelection) and isinstance(right, _MetaSelection):
            return _dimension_join(left, right, node.left_key, node.right_key, stats)
        raise TypeError(
            "the array executor joins a metadata frame against the fact "
            "array on a shared dimension; got "
            f"{type(left).__name__} ⋈ {type(right).__name__}"
        )
    raise TypeError(
        f"cannot execute plan node {type(node).__name__} on the array DBMS"
    )


def _validate_columns(predicate: Expression, names: Sequence[str], frame: str) -> None:
    missing = predicate.columns_referenced() - set(names)
    if missing:
        raise KeyError(f"no column {sorted(missing)[0]!r} in frame {frame!r}")


def _filter_matrix(selection: _MatrixSelection, predicate: Expression) -> _MatrixSelection:
    """Apply a predicate to the fact subtree: dimension or cell filter."""
    dims = list(selection.frame.array.schema.dimension_names)
    for conjunct in split_conjuncts(predicate):
        referenced = conjunct.columns_referenced()
        if referenced <= {selection.frame.value_column}:
            selection.cell_predicates.append(conjunct)
            continue
        if len(referenced) == 1 and next(iter(referenced)) in dims:
            dimension = next(iter(referenced))
            schema_dim = selection.frame.array.schema.dimension(dimension)
            coords = np.arange(schema_dim.start, schema_dim.end + 1, dtype=np.int64)
            mask = np.asarray(conjunct.evaluate({dimension: coords}), dtype=bool)
            selected = coords[mask]
            current = selection.coordinates[dimension]
            selection.coordinates[dimension] = (
                selected if current is None else np.intersect1d(current, selected)
            )
            continue
        raise TypeError(
            f"predicate {conjunct!r} mixes dimensions and attributes; push "
            "it onto the metadata frame (run the shared optimizer first)"
        )
    return selection


def _dimension_join(matrix: _MatrixSelection, meta: _MetaSelection,
                    matrix_key: str, meta_key: str,
                    stats: FilterStats | None = None) -> _MatrixSelection:
    """Join the fact array with a filtered metadata frame on a dimension."""
    if meta_key != meta.frame.dimension:
        raise KeyError(
            f"frame {meta.name!r} joins on its dimension "
            f"{meta.frame.dimension!r}, not {meta_key!r}"
        )
    if matrix_key not in matrix.frame.array.schema.dimension_names:
        raise KeyError(
            f"no dimension {matrix_key!r} in array frame {matrix.name!r}"
        )
    coordinates = _resolve_meta(meta, stats)
    if coordinates is not None:
        current = matrix.coordinates[matrix_key]
        matrix.coordinates[matrix_key] = (
            coordinates if current is None else np.intersect1d(current, coordinates)
        )
    return matrix


def _resolve_meta(selection: _MetaSelection,
                  stats: FilterStats | None) -> np.ndarray | None:
    """Evaluate the stacked predicates chunk-wise; None means "all rows".

    Each referenced metadata column is a separate 1-D array; the arrays
    share the dimension and (in the GenBase loaders) its chunking, so the
    pass walks the chunk grid once, testing every classified
    single-column conjunct against that column chunk's min/max synopsis
    first — a chunk excluded by any conjunct is skipped whole.  The
    dimension itself is exposed to expressions as a virtual column whose
    chunk values are the coordinate range (its synopsis is exact, so
    coordinate membership predicates skip chunks too).
    """
    if not selection.predicates:
        return None
    conjuncts: list[Expression] = []
    for predicate in selection.predicates:
        conjuncts.extend(split_conjuncts(predicate))
    frame = selection.frame
    referenced: set[str] = set()
    for conjunct in conjuncts:
        referenced |= conjunct.columns_referenced()
    column_arrays = {name: frame.columns[name]
                     for name in referenced if name != frame.dimension}
    if not _aligned_chunking(column_arrays.values()):
        return _resolve_meta_dense(selection, conjuncts, column_arrays)

    reference = (next(iter(column_arrays.values()))
                 if column_arrays else None)
    kept: list[np.ndarray] = []
    grid = (reference.chunk_grid() if reference is not None
            else _coordinate_grid(frame))
    for chunk_coords in grid:
        chunks = {name: array.chunk_at(chunk_coords)
                  for name, array in column_arrays.items()}
        if reference is not None and any(c is None for c in chunks.values()):
            continue  # an all-empty metadata chunk has no matching rows
        origin, extent = _chunk_span(frame, reference, chunk_coords, chunks)
        coords = np.arange(origin, origin + extent, dtype=np.int64)
        skipped = False
        for conjunct in conjuncts:
            names = conjunct.columns_referenced()
            if len(names) != 1:
                continue
            name = next(iter(names))
            if name == frame.dimension:
                bounds = (float(coords[0]), float(coords[-1]))
            else:
                bounds = chunks[name].attribute_range(name)
            if bounds is not None and expression_skips_chunk(conjunct, *bounds):
                skipped = True
                break
        if skipped:
            if stats is not None:
                stats.chunks_skipped += 1
            continue
        if stats is not None:
            stats.chunks_scanned += 1
        batch = {frame.dimension: coords}
        mask = np.ones(len(coords), dtype=bool)
        for name, chunk in chunks.items():
            batch[name] = chunk.attribute(name)
            if chunk.mask is not None:
                mask &= chunk.mask
        for conjunct in conjuncts:
            mask &= np.asarray(conjunct.evaluate(batch), dtype=bool)
            if not mask.any():
                break
        if mask.any():
            if stats is not None:
                stats.cells_kept += int(mask.sum())
            kept.append(coords[mask])
    if not kept:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(kept)


def _aligned_chunking(arrays) -> bool:
    """True when every 1-D metadata array shares one chunk layout."""
    layout = None
    for array in arrays:
        dimension = array.schema.dimensions[0]
        key = (dimension.start, dimension.end, dimension.chunk_size)
        if layout is None:
            layout = key
        elif key != layout:
            return False
    return True


def _coordinate_grid(frame: ArrayFrame):
    """Chunk grid for a dimension-only predicate (no metadata columns)."""
    first = next(iter(frame.columns.values()))
    return first.chunk_grid()


def _chunk_span(frame: ArrayFrame, reference: ChunkedArray | None,
                chunk_coords, chunks) -> tuple[int, int]:
    """(origin, extent) of one chunk-grid cell along the dimension."""
    if reference is not None:
        chunk = next(iter(chunks.values()))
        return chunk.origin[0], chunk.shape[0]
    first = next(iter(frame.columns.values()))
    low, high = first.schema.dimensions[0].chunk_bounds(chunk_coords[0])
    return low, high - low + 1


def _resolve_meta_dense(selection: _MetaSelection, conjuncts: list[Expression],
                        column_arrays: Mapping[str, ChunkedArray]) -> np.ndarray:
    """Fallback for mis-aligned chunking: evaluate over dense vectors."""
    start, end = _frame_bounds(selection.frame)
    coords = np.arange(start, end + 1, dtype=np.int64)
    batch = {selection.frame.dimension: coords}
    for name, array in column_arrays.items():
        batch[name] = array.to_dense(attribute=name)
    mask = np.ones(len(coords), dtype=bool)
    for conjunct in conjuncts:
        mask &= np.asarray(conjunct.evaluate(batch), dtype=bool)
    return coords[mask]


def _materialise(selection: _MatrixSelection,
                 stats: FilterStats | None) -> ArrayQueryResult:
    """Apply the accumulated selections: subarray per dimension + cell filters."""
    array = selection.frame.array
    labels: dict[str, np.ndarray] = {}
    for dimension in selection.frame.array.schema.dimensions:
        coords = selection.coordinates.get(dimension.name)
        if coords is None:
            labels[dimension.name] = np.arange(
                dimension.start, dimension.end + 1, dtype=np.int64
            )
        else:
            coords = np.unique(np.asarray(coords, dtype=np.int64))
            labels[dimension.name] = coords
            array = subarray_by_index(array, dimension.name, coords)
    for predicate in selection.cell_predicates:
        array = filter_attribute(array, None, predicate, stats=stats)
    return ArrayQueryResult(array=array, labels=labels)
