"""AFL-style operators over chunked arrays.

Each operator consumes and produces :class:`~repro.arraydb.array.ChunkedArray`
objects and processes data one chunk at a time — the execution model that
lets the array DBMS skip the table↔matrix restructuring every relational
engine pays for in the GenBase queries.

Implemented operators (names follow SciDB's AFL where one exists):

* :func:`filter_attribute` — keep cells satisfying a predicate on the
  attributes; the predicate is an :class:`~repro.plan.expressions.Expression`
  from the shared AST (range/equality/membership conjuncts skip whole
  chunks via the chunks' min/max synopses), or — deprecated — a raw
  vectorised callable over one attribute,
* :func:`between` — subarray by dimension coordinate ranges,
* :func:`subarray_by_index` — keep a given list of coordinates along one
  dimension and compact them (what a dimension-join against a filtered
  metadata array produces),
* :func:`apply` — add a computed attribute,
* :func:`project` — keep a subset of attributes,
* :func:`aggregate` — whole-array or per-dimension aggregates computed
  chunk-wise,
* :func:`cross_join` — join two arrays on a shared dimension,
* :func:`redimension` — build a 2-D array from coordinate/value cell lists,
* :func:`regrid` — downsample by an integer factor per dimension.

Shared logical plans (Scan → Filter → Join → Aggregate/Pivot) are lowered
onto these operators by :mod:`repro.arraydb.bridge`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.arraydb.array import ChunkedArray
from repro.arraydb.chunk import Chunk
from repro.arraydb.schema import Attribute, Dimension
from repro.plan.expressions import (
    ColumnRef,
    Comparison,
    BooleanOp,
    Expression,
    InList,
    Literal,
    split_conjuncts,
)


@dataclass
class FilterStats:
    """Chunk-level accounting for one expression-driven filter pass.

    ``chunks_skipped`` counts chunks eliminated purely from their min/max
    synopsis — no cell of those chunks was ever touched.  Callers (tests,
    EXPLAIN-style diagnostics) pass an instance into
    :func:`filter_attribute` or the :mod:`repro.arraydb.bridge` executor.
    """

    chunks_scanned: int = 0
    chunks_skipped: int = 0
    cells_kept: int = 0


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


def _comparison_bound(expression: Comparison) -> tuple[str, float] | None:
    """Extract ``(symbol, constant)`` from a column-vs-literal comparison."""
    left, right = expression.left, expression.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        symbol, value = expression.symbol, right.value
    elif isinstance(left, Literal) and isinstance(right, ColumnRef):
        symbol, value = _FLIP.get(expression.symbol), left.value
    else:
        return None
    if symbol is None:
        return None
    if not isinstance(value, (int, float, np.integer, np.floating, bool, np.bool_)):
        return None
    return symbol, float(value)


def expression_skips_chunk(expression: Expression, minimum: float, maximum: float) -> bool:
    """True when no value in ``[minimum, maximum]`` can satisfy the predicate.

    This is the chunk-skip test: the interval is a chunk's min/max synopsis
    for the one attribute the predicate reads, and a ``True`` answer lets
    the executor drop the whole chunk without touching its cells.  The test
    is *exact* about comparison strictness (``<`` vs ``<=``) and answers
    ``False`` — never skip — for any shape it cannot reason about
    (arithmetic, opaque callables, negation).

    >>> from repro.plan import col
    >>> expression_skips_chunk(col("v") < 10, minimum=10.0, maximum=20.0)
    True
    >>> expression_skips_chunk(col("v") <= 10, minimum=10.0, maximum=20.0)
    False
    >>> expression_skips_chunk(col("v").isin([3, 7]), minimum=8.0, maximum=9.0)
    True
    """
    if isinstance(expression, Comparison) and type(expression) is Comparison:
        bound = _comparison_bound(expression)
        if bound is None:
            return False
        symbol, constant = bound
        if symbol == "<":
            return minimum >= constant
        if symbol == "<=":
            return minimum > constant
        if symbol == ">":
            return maximum <= constant
        if symbol == ">=":
            return maximum < constant
        if symbol == "=":
            return constant < minimum or constant > maximum
        if symbol == "<>":
            return minimum == maximum == constant
        return False
    if isinstance(expression, InList) and isinstance(expression.operand, ColumnRef):
        try:
            keys = expression.key_array()
            if not np.issubdtype(keys.dtype, np.number):
                return False
            # key_array() is sorted: the smallest key >= minimum either
            # falls inside [minimum, maximum] or no key does — O(log k)
            # instead of scanning every key per chunk.
            position = int(np.searchsorted(keys, minimum, side="left"))
            return position == len(keys) or float(keys[position]) > maximum
        except (TypeError, ValueError):
            return False
    if isinstance(expression, BooleanOp):
        if expression.conjunction:
            return any(expression_skips_chunk(op, minimum, maximum)
                       for op in expression.operands)
        return all(expression_skips_chunk(op, minimum, maximum)
                   for op in expression.operands)
    return False


def _chunk_keep_mask(chunk: Chunk, conjuncts: Sequence[Expression],
                     batch_columns: Sequence[str]) -> np.ndarray | None:
    """Evaluate conjuncts over one chunk; None means the chunk is skipped.

    Single-attribute conjuncts are first tested against the chunk's min/max
    synopsis (:func:`expression_skips_chunk`); any conjunct that excludes
    the whole chunk short-circuits the evaluation of the rest.
    """
    for conjunct in conjuncts:
        referenced = conjunct.columns_referenced()
        if len(referenced) == 1:
            name = next(iter(referenced))
            if name in chunk.data:
                bounds = chunk.attribute_range(name)
                if bounds is not None and expression_skips_chunk(conjunct, *bounds):
                    return None
    batch = {name: chunk.attribute(name) for name in batch_columns}
    keep = chunk.mask.copy() if chunk.mask is not None else None
    for conjunct in conjuncts:
        verdict = np.asarray(conjunct.evaluate(batch), dtype=bool)
        keep = verdict if keep is None else keep & verdict
        if not keep.any():
            return keep
    return keep


def filter_attribute(
    array: ChunkedArray,
    attribute: str | None,
    predicate: Expression | Callable[[np.ndarray], np.ndarray],
    result_name: str | None = None,
    stats: FilterStats | None = None,
) -> ChunkedArray:
    """Keep only cells whose attributes satisfy ``predicate``.

    The array's shape is unchanged; failing cells become empty
    (mask=False), exactly like SciDB's ``filter``.

    ``predicate`` is an :class:`~repro.plan.expressions.Expression` over
    the array's attribute names — the shared AST every engine consumes.
    It is evaluated chunk-wise, and each conjunct that is a classified
    range/equality/membership predicate on one attribute is first tested
    against the chunk's min/max synopsis
    (:meth:`~repro.arraydb.chunk.Chunk.attribute_range`): a chunk whose
    value interval cannot intersect the predicate is dropped without
    touching any cell.  ``stats`` (a :class:`FilterStats`) records how
    many chunks were skipped vs scanned.

    When predicate is an expression, ``attribute`` is only validated (it
    may be None); the expression names the attributes it reads.

    A raw vectorised callable over the single named ``attribute`` is still
    accepted but **deprecated** (it blocks chunk skipping and every
    optimizer rewrite); it emits a :class:`DeprecationWarning`.
    """
    schema = array.schema.renamed(result_name or f"filter({array.schema.name})")
    result = ChunkedArray(schema)
    if isinstance(predicate, Expression):
        names = set(array.schema.attribute_names)
        referenced = predicate.columns_referenced()
        missing = referenced - names
        if missing:
            raise KeyError(
                f"expression references {sorted(missing)} but array "
                f"{array.schema.name!r} has attributes {sorted(names)}"
            )
        if attribute is not None and attribute not in names:
            raise KeyError(f"array {array.schema.name!r} has no attribute {attribute!r}")
        conjuncts = split_conjuncts(predicate)
        batch_columns = sorted(referenced)
        for chunk in array.chunks():
            keep = _chunk_keep_mask(chunk, conjuncts, batch_columns)
            if keep is None:
                if stats is not None:
                    stats.chunks_skipped += 1
                continue
            if stats is not None:
                stats.chunks_scanned += 1
            if not keep.any():
                continue
            if stats is not None:
                stats.cells_kept += int(keep.sum())
            new_chunk = chunk.copy()
            new_chunk.mask = keep
            result.put_chunk(new_chunk)
        return result

    warnings.warn(
        "filter_attribute(..., predicate=<callable>) is deprecated; pass an "
        "expression built with repro.plan.col instead (callables block chunk "
        "skipping and every shared-optimizer rewrite)",
        DeprecationWarning,
        stacklevel=2,
    )
    if attribute is None:
        raise TypeError("the deprecated callable form requires an attribute name")
    for chunk in array.chunks():
        values = chunk.attribute(attribute)
        keep = np.asarray(predicate(values), dtype=bool)
        if chunk.mask is not None:
            keep &= chunk.mask
        if stats is not None:
            stats.chunks_scanned += 1
        if not keep.any():
            continue
        if stats is not None:
            stats.cells_kept += int(keep.sum())
        new_chunk = chunk.copy()
        new_chunk.mask = keep
        result.put_chunk(new_chunk)
    return result


def between(
    array: ChunkedArray,
    bounds: dict[str, tuple[int, int]],
    result_name: str | None = None,
) -> ChunkedArray:
    """Subarray: keep cells inside inclusive coordinate ``bounds`` per dimension.

    Dimensions not named in ``bounds`` are kept whole.  Unlike
    :func:`subarray_by_index` the coordinate system is preserved (this is
    SciDB's ``between``, not ``subarray``).
    """
    for name in bounds:
        array.schema.dimension(name)  # validate
    schema = array.schema.renamed(result_name or f"between({array.schema.name})")
    result = ChunkedArray(schema)
    for chunk in array.chunks():
        keep = np.ones(chunk.shape, dtype=bool)
        for axis, dimension in enumerate(array.schema.dimensions):
            if dimension.name not in bounds:
                continue
            low, high = bounds[dimension.name]
            coords = chunk.origin[axis] + np.arange(chunk.shape[axis])
            axis_keep = (coords >= low) & (coords <= high)
            shape = [1] * len(chunk.shape)
            shape[axis] = len(coords)
            keep &= axis_keep.reshape(shape)
        if chunk.mask is not None:
            keep &= chunk.mask
        if not keep.any():
            continue
        new_chunk = chunk.copy()
        new_chunk.mask = keep
        result.put_chunk(new_chunk)
    return result


def subarray_by_index(
    array: ChunkedArray,
    dimension_name: str,
    coordinates: Sequence[int],
    result_name: str | None = None,
) -> ChunkedArray:
    """Keep selected coordinates along one dimension and compact the axis.

    This is what "join the filtered metadata array with the expression
    array" produces in SciDB: the surviving patient (or gene) coordinates
    are renumbered densely from 0 and the other dimensions are untouched.
    """
    axis = array.schema.dimension_index(dimension_name)
    coordinates = np.asarray(sorted(set(int(c) for c in coordinates)), dtype=np.int64)
    dense = array.to_dense()
    dimension = array.schema.dimension(dimension_name)
    offsets = coordinates - dimension.start
    valid = (offsets >= 0) & (offsets < dimension.length)
    offsets = offsets[valid]
    taken = np.take(dense, offsets, axis=axis)

    new_dimensions = []
    for index, old in enumerate(array.schema.dimensions):
        if index == axis:
            new_dimensions.append(
                Dimension(old.name, 0, max(0, taken.shape[index] - 1), old.chunk_size)
            )
        else:
            new_dimensions.append(old.resized(0, max(0, taken.shape[index] - 1)))
    name = result_name or f"subarray({array.schema.name})"
    attribute = array.schema.attribute_names[0]
    return ChunkedArray.from_dense(
        name,
        taken,
        dimension_names=[d.name for d in new_dimensions],
        attribute_name=attribute,
        chunk_sizes=[d.chunk_size for d in new_dimensions],
    )


def apply(
    array: ChunkedArray,
    new_attribute: str,
    function: Callable[[dict[str, np.ndarray]], np.ndarray],
    result_name: str | None = None,
) -> ChunkedArray:
    """Add a computed attribute evaluated chunk-wise from existing attributes."""
    attributes = list(array.schema.attributes) + [Attribute(new_attribute)]
    schema = array.schema.with_attributes(
        attributes, name=result_name or f"apply({array.schema.name})"
    )
    result = ChunkedArray(schema)
    for chunk in array.chunks():
        new_chunk = chunk.copy()
        new_chunk.data[new_attribute] = np.asarray(
            function({name: chunk.attribute(name) for name in array.schema.attribute_names}),
            dtype=np.float64,
        )
        result.put_chunk(new_chunk)
    return result


def project(array: ChunkedArray, attributes: Sequence[str],
            result_name: str | None = None) -> ChunkedArray:
    """Keep only the named attributes."""
    kept = [array.schema.attribute(name) for name in attributes]
    schema = array.schema.with_attributes(kept, name=result_name or f"project({array.schema.name})")
    result = ChunkedArray(schema)
    for chunk in array.chunks():
        result.put_chunk(
            Chunk(
                coordinates=chunk.coordinates,
                origin=chunk.origin,
                data={name: chunk.attribute(name).copy() for name in attributes},
                mask=None if chunk.mask is None else chunk.mask.copy(),
            )
        )
    return result


def aggregate(
    array: ChunkedArray,
    attribute: str,
    function: str = "sum",
    along: str | None = None,
) -> np.ndarray | float:
    """Aggregate an attribute, either globally or per-coordinate of one dimension.

    Args:
        array: input array.
        attribute: attribute to aggregate.
        function: one of sum / count / min / max / avg.
        along: if given, aggregate *per coordinate* of this dimension
            (collapsing all the others); otherwise aggregate everything to a
            scalar.

    Returns:
        A scalar (``along is None``) or a 1-D array indexed by the offset of
        the coordinate from the dimension's start.
    """
    if function not in ("sum", "count", "min", "max", "avg"):
        raise ValueError(f"unsupported aggregate {function!r}")

    if along is None:
        total = 0.0
        count = 0
        minimum = np.inf
        maximum = -np.inf
        for chunk in array.chunks():
            values = chunk.attribute(attribute)
            mask = chunk.mask if chunk.mask is not None else np.ones(values.shape, bool)
            selected = values[mask]
            if selected.size == 0:
                continue
            total += float(selected.sum())
            count += int(selected.size)
            minimum = min(minimum, float(selected.min()))
            maximum = max(maximum, float(selected.max()))
        if function == "sum":
            return total
        if function == "count":
            return float(count)
        if function == "avg":
            return total / count if count else float("nan")
        if function == "min":
            return minimum if count else float("nan")
        return maximum if count else float("nan")

    axis = array.schema.dimension_index(along)
    dimension = array.schema.dimension(along)
    length = dimension.length
    sums = np.zeros(length)
    counts = np.zeros(length)
    minimums = np.full(length, np.inf)
    maximums = np.full(length, -np.inf)
    for chunk in array.chunks():
        values = chunk.attribute(attribute)
        mask = chunk.mask if chunk.mask is not None else np.ones(values.shape, bool)
        coords = chunk.coordinates_of_cells()[axis] - dimension.start
        selected = values[mask]
        np.add.at(sums, coords, selected)
        np.add.at(counts, coords, 1.0)
        np.minimum.at(minimums, coords, selected)
        np.maximum.at(maximums, coords, selected)
    if function == "sum":
        return sums
    if function == "count":
        return counts
    if function == "avg":
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(counts > 0, sums / counts, np.nan)
    if function == "min":
        return np.where(counts > 0, minimums, np.nan)
    return np.where(counts > 0, maximums, np.nan)


def cross_join(
    left: ChunkedArray,
    right: ChunkedArray,
    dimension_name: str,
    result_name: str | None = None,
) -> ChunkedArray:
    """Join two arrays on a shared dimension.

    The right array must be 1-D over ``dimension_name`` (a metadata vector,
    e.g. ``(function)[gene_id]``); its attributes are broadcast onto the
    left array's cells with matching coordinates, and left cells whose
    coordinate has no (non-empty) right cell become empty.  This covers how
    the GenBase queries use SciDB's ``cross_join``.
    """
    if right.schema.ndim != 1 or right.schema.dimensions[0].name != dimension_name:
        raise ValueError("cross_join expects the right array to be 1-D over the join dimension")
    axis = left.schema.dimension_index(dimension_name)
    right_dimension = right.schema.dimensions[0]

    # Materialise the right side as (coordinate -> attribute values, present?).
    right_dense = {
        name: right.to_dense(attribute=name, fill=np.nan)
        for name in right.schema.attribute_names
    }
    present = np.zeros(right_dimension.length, dtype=bool)
    coords, _ = right.attribute_cells(right.schema.attribute_names[0])
    present[coords[0] - right_dimension.start] = True

    attributes = list(left.schema.attributes) + [
        Attribute(name) for name in right.schema.attribute_names
    ]
    schema = left.schema.with_attributes(
        attributes, name=result_name or f"cross_join({left.schema.name},{right.schema.name})"
    )
    result = ChunkedArray(schema)
    for chunk in left.chunks():
        coords_along_axis = chunk.origin[axis] + np.arange(chunk.shape[axis])
        offsets = coords_along_axis - right_dimension.start
        in_range = (offsets >= 0) & (offsets < right_dimension.length)
        row_present = np.zeros(len(offsets), dtype=bool)
        row_present[in_range] = present[offsets[in_range]]
        shape = [1] * len(chunk.shape)
        shape[axis] = len(offsets)
        keep = row_present.reshape(shape) & (
            chunk.mask if chunk.mask is not None else np.ones(chunk.shape, bool)
        )
        if not keep.any():
            continue
        new_chunk = chunk.copy()
        new_chunk.mask = keep
        for name, dense in right_dense.items():
            broadcast_values = np.zeros(len(offsets))
            broadcast_values[in_range] = np.nan_to_num(dense[offsets[in_range]])
            new_chunk.data[name] = np.broadcast_to(
                broadcast_values.reshape(shape), chunk.shape
            ).copy()
        result.put_chunk(new_chunk)
    return result


def redimension(
    name: str,
    row_coordinates: np.ndarray,
    column_coordinates: np.ndarray,
    values: np.ndarray,
    dimension_names: tuple[str, str] = ("row", "column"),
    attribute_name: str = "value",
    chunk_sizes: tuple[int, int] | None = None,
) -> ChunkedArray:
    """Build a dense 2-D array from (row, column, value) cell triples.

    Coordinates are compacted (renumbered densely in sorted order), which is
    what SciDB's ``redimension`` does when loading a relational "long"
    table into an array.
    """
    row_coordinates = np.asarray(row_coordinates, dtype=np.int64)
    column_coordinates = np.asarray(column_coordinates, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if not (len(row_coordinates) == len(column_coordinates) == len(values)):
        raise ValueError("coordinate and value arrays must be the same length")
    row_labels, row_positions = np.unique(row_coordinates, return_inverse=True)
    column_labels, column_positions = np.unique(column_coordinates, return_inverse=True)
    dense = np.zeros((len(row_labels), len(column_labels)), dtype=np.float64)
    dense[row_positions, column_positions] = values
    chunk_sizes = chunk_sizes or (
        min(256, max(1, dense.shape[0])),
        min(256, max(1, dense.shape[1])),
    )
    return ChunkedArray.from_dense(
        name,
        dense,
        dimension_names=list(dimension_names),
        attribute_name=attribute_name,
        chunk_sizes=list(chunk_sizes),
    )


def regrid(
    array: ChunkedArray,
    factors: dict[str, int],
    attribute: str | None = None,
    function: str = "avg",
    result_name: str | None = None,
) -> ChunkedArray:
    """Downsample an array by integer factors per dimension.

    Cells are grouped into ``factor``-sized blocks along each named
    dimension and aggregated (avg/sum/min/max).  Partial blocks at the array
    edge are aggregated over the cells that exist.
    """
    if function not in ("avg", "sum", "min", "max"):
        raise ValueError(f"unsupported regrid aggregate {function!r}")
    if attribute is None:
        attribute = array.schema.attribute_names[0]
    dense = array.to_dense(attribute=attribute, fill=np.nan)
    reducers = {"avg": np.nanmean, "sum": np.nansum, "min": np.nanmin, "max": np.nanmax}
    reducer = reducers[function]

    result = dense
    for axis, dimension in enumerate(array.schema.dimensions):
        factor = factors.get(dimension.name, 1)
        if factor <= 1:
            continue
        length = result.shape[axis]
        n_blocks = (length + factor - 1) // factor
        blocks = []
        for block_index in range(n_blocks):
            selector = [slice(None)] * result.ndim
            selector[axis] = slice(block_index * factor, min((block_index + 1) * factor, length))
            with np.errstate(invalid="ignore"):
                blocks.append(reducer(result[tuple(selector)], axis=axis, keepdims=True))
        result = np.concatenate(blocks, axis=axis)

    result = np.nan_to_num(result, nan=0.0)
    name = result_name or f"regrid({array.schema.name})"
    return ChunkedArray.from_dense(
        name,
        result,
        dimension_names=list(array.schema.dimension_names),
        attribute_name=attribute,
        chunk_sizes=[d.chunk_size for d in array.schema.dimensions],
    )
