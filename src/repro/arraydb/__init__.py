"""A chunked array DBMS (the benchmark's SciDB analog).

SciDB stores data as multi-dimensional arrays split into rectangular chunks
and executes queries chunk-by-chunk; analytics either run natively over the
chunks or hand off to ScaLAPACK.  This package reproduces that architecture:

* :mod:`repro.arraydb.schema` — array schemas: named *dimensions* (with
  chunk sizes) plus typed *attributes*,
* :mod:`repro.arraydb.chunk` / :mod:`repro.arraydb.array` — chunked storage
  with per-chunk empty-cell bitmaps,
* :mod:`repro.arraydb.operators` — the AFL-style operators the GenBase
  queries need: ``filter``, ``between`` (subarray), ``apply``, ``project``,
  ``aggregate``, ``cross_join``, ``redimension`` and ``regrid``,
* :mod:`repro.arraydb.linalg` — chunk-wise linear algebra (GEMM, Gram
  matrices, matrix-vector products) used by the native analytics, plus the
  bridge that hands whole arrays to the ScaLAPACK tier,
* :mod:`repro.arraydb.bridge` — the shared-plan executor: lowers the
  engine-agnostic logical plans of :mod:`repro.plan` onto these operators
  (metadata filters run chunk-wise with min/max chunk skipping; joins
  against the fact array become dimension subarrays).

Because data is already an array, the GenBase queries need no
table-to-matrix restructuring here — the property that makes SciDB
competitive in the paper's results.
"""

from repro.arraydb.schema import ArraySchema, Attribute, Dimension
from repro.arraydb.chunk import Chunk
from repro.arraydb.array import ChunkedArray
from repro.arraydb import operators
from repro.arraydb import linalg
from repro.arraydb import bridge

__all__ = [
    "ArraySchema",
    "Attribute",
    "Dimension",
    "Chunk",
    "ChunkedArray",
    "operators",
    "linalg",
    "bridge",
]
