"""The GenBase benchmark core.

This package is the paper's primary contribution: the benchmark itself.

* :mod:`repro.core.spec` — query parameters and the query registry.
* :mod:`repro.core.queries` — engine-independent reference implementations
  of the five queries (used to validate every engine's answers).
* :mod:`repro.core.timing` — the data-management / analytics phase timer.
* :mod:`repro.core.engines` — one adapter per evaluated configuration:
  vanilla R, Postgres+Madlib, Postgres+R, column store+R, column store+UDFs,
  SciDB, Hadoop, the multi-node variants and SciDB+coprocessor.
* :mod:`repro.core.runner` — the benchmark runner (timeouts, memory-failure
  handling, result records).
* :mod:`repro.core.results` — result tables and figure/table regeneration
  helpers used by the ``benchmarks/`` harness.
"""

from repro.core.spec import QUERY_NAMES, QueryParameters, default_parameters
from repro.core.timing import PhaseTimer
from repro.core.queries import ReferenceImplementation, QueryOutput
from repro.core.engines import list_engines, make_engine, EngineCapabilities
from repro.core.runner import BenchmarkRunner, QueryResult, RunStatus
from repro.core.results import ResultTable, speedup_table

__all__ = [
    "QUERY_NAMES",
    "QueryParameters",
    "default_parameters",
    "PhaseTimer",
    "ReferenceImplementation",
    "QueryOutput",
    "list_engines",
    "make_engine",
    "EngineCapabilities",
    "BenchmarkRunner",
    "QueryResult",
    "RunStatus",
    "ResultTable",
    "speedup_table",
]
