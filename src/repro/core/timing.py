"""Phase timing: splitting a query run into data management and analytics.

Figures 2 and 4 of the paper break each query's elapsed time into its data
management and analytics portions.  Engine adapters wrap their work in
``timer.data_management()`` / ``timer.analytics()`` blocks; the timer
accumulates measured wall-clock per phase and also accepts *modelled*
seconds (from the cluster's network model or the coprocessor model) so
simulated components land in the right bucket.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class PhaseTimer:
    """Accumulates per-phase seconds for one query run."""

    data_management_seconds: float = 0.0
    analytics_seconds: float = 0.0
    #: Free-form notes engines can attach (bytes copied, jobs run, ...).
    notes: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def data_management(self):
        """Time a data-management block."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.data_management_seconds += time.perf_counter() - started

    @contextmanager
    def analytics(self):
        """Time an analytics block."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.analytics_seconds += time.perf_counter() - started

    def add_data_management(self, seconds: float) -> None:
        """Add modelled (not measured) data-management seconds."""
        if seconds < 0:
            raise ValueError("cannot add negative seconds")
        self.data_management_seconds += seconds

    def add_analytics(self, seconds: float) -> None:
        """Add modelled (not measured) analytics seconds."""
        if seconds < 0:
            raise ValueError("cannot add negative seconds")
        self.analytics_seconds += seconds

    def note(self, key: str, value: float) -> None:
        """Attach (or accumulate into) a named note."""
        self.notes[key] = self.notes.get(key, 0.0) + value

    @property
    def total_seconds(self) -> float:
        return self.data_management_seconds + self.analytics_seconds

    def analytics_fraction(self) -> float:
        """Fraction of the total spent in analytics (0 when nothing ran)."""
        total = self.total_seconds
        return self.analytics_seconds / total if total > 0 else 0.0
