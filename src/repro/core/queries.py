"""Engine-independent reference implementations of the five GenBase queries.

Every engine adapter must produce answers equivalent to these.  The
reference implementation works directly on the generated dataset's arrays
with the shared kernels — no storage engine, no timing — and is used by the
test suite to check engine correctness and by the runner's optional
``verify`` mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.spec import QueryParameters, default_parameters, validate_query_name
from repro.datagen.dataset import GenBaseDataset
from repro.linalg.biclustering import cheng_church
from repro.linalg.covariance import covariance_matrix, top_covariant_pairs
from repro.linalg.lanczos import lanczos_svd
from repro.linalg.qr import linear_regression
from repro.linalg.wilcoxon import enrichment_analysis
from repro.plan import Aggregate, Expression, Filter, Join, Pivot, PlanNode, Project, Scan, col


@dataclass
class QueryOutput:
    """The engine-independent summary of one query's answer.

    Engines fill the fields relevant to their query; the ``summary`` dict
    carries a few scalar facts used for cross-engine comparison and the
    ``payload`` keeps the full result object for callers that want it.
    """

    query: str
    summary: dict = field(default_factory=dict)
    payload: object | None = None

    def scalar(self, key: str) -> float:
        """Fetch one summary value (raises ``KeyError`` if absent)."""
        return self.summary[key]


# --------------------------------------------------------------------------- #
# Shared selection helpers (used by the reference and by several engines)
# --------------------------------------------------------------------------- #

def selected_gene_ids(dataset: GenBaseDataset, parameters: QueryParameters) -> np.ndarray:
    """Gene ids passing the Q1/Q4 function filter, sorted ascending."""
    threshold = parameters.function_threshold(dataset.spec)
    return np.flatnonzero(dataset.genes.function < threshold)


def covariance_patient_ids(dataset: GenBaseDataset, parameters: QueryParameters) -> np.ndarray:
    """Patient ids passing the Q2 disease filter, sorted ascending."""
    diseases = np.asarray(sorted(parameters.covariance_diseases))
    return np.flatnonzero(np.isin(dataset.patients.disease_id, diseases))


def bicluster_patient_ids(dataset: GenBaseDataset, parameters: QueryParameters) -> np.ndarray:
    """Patient ids passing the Q3 age/gender filter, sorted ascending."""
    patients = dataset.patients
    mask = (patients.gender == parameters.bicluster_gender) & (
        patients.age < parameters.bicluster_max_age
    )
    return np.flatnonzero(mask)


def statistics_patient_ids(dataset: GenBaseDataset, parameters: QueryParameters) -> np.ndarray:
    """Patient ids in the Q5 sample, sorted ascending (deterministic)."""
    fraction = parameters.sample_fraction(dataset.spec)
    rng = np.random.default_rng(parameters.seed)
    n_keep = max(1, int(round(fraction * dataset.n_patients)))
    return np.sort(rng.choice(dataset.n_patients, size=n_keep, replace=False))


# --------------------------------------------------------------------------- #
# Shared patient predicates (one expression, every engine and every node)
# --------------------------------------------------------------------------- #
#
# The Q2/Q3/Q5 patient filters as shared AST expressions.  Single-node
# engines wrap them in :func:`patient_expression_plan`; the multi-node
# engines lower ``Filter(Scan("patients"), predicate)`` through
# :mod:`repro.cluster.bridge`, where the same conjuncts drive partition
# pruning.  One predicate object therefore runs identically on node 1 of a
# cluster and on the single-node column store.

def covariance_patient_predicate(parameters: QueryParameters) -> Expression:
    """Q2 patient filter: disease membership."""
    return col("disease_id").isin(np.asarray(sorted(parameters.covariance_diseases)))


def bicluster_patient_predicate(parameters: QueryParameters) -> Expression:
    """Q3 patient filter: gender equality and strict age upper bound."""
    return (col("gender") == parameters.bicluster_gender) & (
        col("age") < parameters.bicluster_max_age
    )


def statistics_patient_predicate(sampled_patient_ids: np.ndarray) -> Expression:
    """Q5 patient filter: membership in the (already sorted) sample.

    Build this once per query, not per node — ``isin`` caches its sorted,
    deduplicated key array, so every node probes the same keys.
    """
    return col("patient_id").isin(np.asarray(sampled_patient_ids))


# --------------------------------------------------------------------------- #
# Shared data-management plans (one plan object, every engine)
# --------------------------------------------------------------------------- #
#
# The five queries' data-management stages are whole logical plans built from
# the shared AST; the column store runs them through
# ``repro.colstore.planner.run_plan`` (compressed, vectorised) and the row
# store through ``repro.relational.bridge.run_shared_plan`` (Volcano
# operators).  Each engine therefore optimizes the *same* Scan → Filter →
# Join → terminal tree — predicate pushdown, through-join projection pruning
# and build-side selection all happen at the shared plan layer.

#: The long-format output every GenBase pivot consumes.
EXPRESSION_TRIPLE = ("patient_id", "gene_id", "expression_value")


def dataset_tables(dataset: GenBaseDataset) -> dict[str, dict[str, np.ndarray]]:
    """Name → column → array view of the dataset's relational tables.

    The engine-neutral loading form shared by the cross-engine tests and
    the differential fuzzer's harness: each engine converts these columns
    into its native container (compressed column tables, row-store pages,
    Hive rows, R vectors) without re-deriving the GenBase schemas.  Key
    and metadata columns are ``int64``; ``drug_response`` and
    ``expression_value`` stay ``float64``.
    """
    micro = dataset.microarray_relational()
    patients = dataset.patients
    genes = dataset.genes
    return {
        "microarray": {
            "gene_id": micro[:, 0].astype(np.int64),
            "patient_id": micro[:, 1].astype(np.int64),
            "expression_value": micro[:, 2].astype(np.float64),
        },
        "patients": {
            "patient_id": patients.patient_id.astype(np.int64),
            "age": patients.age.astype(np.int64),
            "gender": patients.gender.astype(np.int64),
            "zipcode": patients.zipcode.astype(np.int64),
            "disease_id": patients.disease_id.astype(np.int64),
            "drug_response": patients.drug_response.astype(np.float64),
        },
        "genes": {
            "gene_id": genes.gene_id.astype(np.int64),
            "target": genes.target.astype(np.int64),
            "position": genes.position.astype(np.int64),
            "length": genes.length.astype(np.int64),
            "function": genes.function.astype(np.int64),
        },
    }


def gene_expression_plan(threshold: int) -> PlanNode:
    """Q1/Q4 data management: ``genes(function < t) ⋈ microarray``.

    Projected to the long-format expression triple; top it with
    :func:`expression_pivot_plan` for the dense matrix.
    """
    return Project(
        Filter(
            Join(Scan("genes"), Scan("microarray"), "gene_id", "gene_id"),
            col("function") < threshold,
        ),
        EXPRESSION_TRIPLE,
    )


def patient_expression_plan(predicate: Expression) -> PlanNode:
    """Q2/Q3/Q5 data management: ``patients(predicate) ⋈ microarray``."""
    return Project(
        Filter(
            Join(Scan("patients"), Scan("microarray"), "patient_id", "patient_id"),
            predicate,
        ),
        EXPRESSION_TRIPLE,
    )


def expression_pivot_plan(child: PlanNode) -> Pivot:
    """Pivot a long-format expression subtree into the dense patient × gene matrix."""
    return Pivot(child, "patient_id", "gene_id", "expression_value")


def sampled_expression_filter_plan(sampled_patient_ids: np.ndarray) -> PlanNode:
    """Q5 row selection: microarray rows of the sampled patients."""
    return Filter(Scan("microarray"), col("patient_id").isin(sampled_patient_ids))


def sampled_expression_mean_plan(sampled_patient_ids: np.ndarray) -> Aggregate:
    """Q5 per-gene score: mean expression over the sampled patients' rows."""
    return Aggregate(
        sampled_expression_filter_plan(sampled_patient_ids),
        "gene_id", "expression_value", "mean",
    )


# --------------------------------------------------------------------------- #
# Reference implementation
# --------------------------------------------------------------------------- #

class ReferenceImplementation:
    """Direct (numpy + shared kernels) implementation of the five queries."""

    def __init__(self, dataset: GenBaseDataset, parameters: QueryParameters | None = None):
        self.dataset = dataset
        self.parameters = parameters or default_parameters(dataset.spec)

    # -- dispatch -------------------------------------------------------------------

    def run(self, query: str) -> QueryOutput:
        """Run one query by name."""
        query = validate_query_name(query)
        method = getattr(self, query)
        return method()

    # -- Q1: predictive modelling -----------------------------------------------------

    def regression(self) -> QueryOutput:
        genes = selected_gene_ids(self.dataset, self.parameters)
        features = self.dataset.expression_matrix[:, genes]
        target = self.dataset.patients.drug_response
        result = linear_regression(features, target, method="lapack")
        return QueryOutput(
            query="regression",
            summary={
                "n_selected_genes": int(len(genes)),
                "n_patients": int(features.shape[0]),
                "r_squared": float(result.r_squared),
            },
            payload=result,
        )

    # -- Q2: covariance -----------------------------------------------------------------

    def covariance(self) -> QueryOutput:
        patients = covariance_patient_ids(self.dataset, self.parameters)
        matrix = self.dataset.expression_matrix[patients, :]
        cov = covariance_matrix(matrix)
        gene_a, gene_b, values = top_covariant_pairs(
            cov, fraction=self.parameters.covariance_top_fraction
        )
        # Join the surviving pairs back to the gene metadata (function codes).
        functions = self.dataset.genes.function
        pair_functions = np.column_stack([functions[gene_a], functions[gene_b]]) if len(gene_a) else np.empty((0, 2))
        return QueryOutput(
            query="covariance",
            summary={
                "n_selected_patients": int(len(patients)),
                "n_pairs_kept": int(len(gene_a)),
                "max_covariance": float(values[0]) if len(values) else 0.0,
            },
            payload={
                "covariance": cov,
                "pairs": (gene_a, gene_b, values),
                "pair_functions": pair_functions,
            },
        )

    # -- Q3: biclustering ------------------------------------------------------------------

    def biclustering(self) -> QueryOutput:
        patients = bicluster_patient_ids(self.dataset, self.parameters)
        matrix = self.dataset.expression_matrix[patients, :]
        result = cheng_church(
            matrix,
            n_biclusters=self.parameters.n_biclusters,
            seed=self.parameters.seed,
        )
        shapes = [bicluster.shape for bicluster in result]
        return QueryOutput(
            query="biclustering",
            summary={
                "n_selected_patients": int(len(patients)),
                "n_biclusters": int(len(result)),
                "largest_bicluster_cells": int(max((r * c for r, c in shapes), default=0)),
            },
            payload=result,
        )

    # -- Q4: SVD --------------------------------------------------------------------------------

    def svd(self) -> QueryOutput:
        genes = selected_gene_ids(self.dataset, self.parameters)
        matrix = self.dataset.expression_matrix[:, genes]
        k = min(self.parameters.svd_k(self.dataset.spec), len(genes)) if len(genes) else 1
        result = lanczos_svd(matrix, k=max(1, k), seed=self.parameters.seed)
        return QueryOutput(
            query="svd",
            summary={
                "n_selected_genes": int(len(genes)),
                "k": int(len(result.singular_values)),
                "top_singular_value": float(result.singular_values[0]) if len(result.singular_values) else 0.0,
            },
            payload=result,
        )

    # -- Q5: statistics (enrichment) ---------------------------------------------------------------

    def statistics(self) -> QueryOutput:
        patients = statistics_patient_ids(self.dataset, self.parameters)
        sample = self.dataset.expression_matrix[patients, :]
        gene_scores = sample.mean(axis=0)
        result = enrichment_analysis(
            gene_scores,
            self.dataset.ontology.membership,
            alpha=self.parameters.statistics_alpha,
        )
        return QueryOutput(
            query="statistics",
            summary={
                "n_sampled_patients": int(len(patients)),
                "n_terms": int(len(result.go_ids)),
                "n_significant": int(result.significant.sum()),
            },
            payload=result,
        )
