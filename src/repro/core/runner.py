"""The benchmark runner.

Runs (query, engine, dataset) combinations and records per-phase times plus
a completion status.  Two of the paper's conventions are implemented here:

* **timeouts** — "we cut off all computation after two hours"; the runner
  enforces a configurable wall-clock budget (via ``SIGALRM`` on platforms
  that support it) and records the run as ``TIMEOUT``;
* **memory failures** — "temporary space allocation failed on the large
  data sizes"; ``MemoryError`` (including the R environment's cell-limit
  error) is caught and recorded as ``MEMORY_ERROR``.

Both are "infinite results" for plotting purposes; :meth:`QueryResult.plot_value`
maps them onto a ceiling value the way the paper draws horizontal lines
across the top of its charts.
"""

from __future__ import annotations

import signal
import time
from dataclasses import dataclass, field
from enum import Enum

from repro.core.engines import make_engine
from repro.core.engines.base import Engine, UnsupportedQueryError
from repro.core.queries import QueryOutput
from repro.core.spec import QueryParameters, default_parameters, validate_query_name
from repro.core.timing import PhaseTimer
from repro.datagen.dataset import GenBaseDataset


class RunStatus(Enum):
    """Outcome of one benchmark run."""

    OK = "ok"
    TIMEOUT = "timeout"
    MEMORY_ERROR = "memory_error"
    UNSUPPORTED = "unsupported"
    ERROR = "error"

    @property
    def is_infinite(self) -> bool:
        """Whether the paper would plot this run as an 'infinite' result."""
        return self in (RunStatus.TIMEOUT, RunStatus.MEMORY_ERROR)


@dataclass
class QueryResult:
    """One (engine, query, dataset) measurement."""

    engine: str
    query: str
    dataset_size: str
    status: RunStatus
    data_management_seconds: float = 0.0
    analytics_seconds: float = 0.0
    n_nodes: int = 1
    output: QueryOutput | None = None
    error: str = ""
    notes: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.data_management_seconds + self.analytics_seconds

    def plot_value(self, ceiling: float) -> float:
        """Value to plot: the elapsed time, or the chart ceiling for infinite runs."""
        if self.status.is_infinite:
            return ceiling
        return self.total_seconds

    def as_dict(self) -> dict:
        return {
            "engine": self.engine,
            "query": self.query,
            "dataset_size": self.dataset_size,
            "n_nodes": self.n_nodes,
            "status": self.status.value,
            "data_management_seconds": round(self.data_management_seconds, 6),
            "analytics_seconds": round(self.analytics_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "error": self.error,
        }


class _Timeout(Exception):
    """Internal signal-based timeout marker."""


class _alarm_timeout:
    """Context manager arming a SIGALRM-based wall-clock budget (best effort)."""

    def __init__(self, seconds: float | None):
        self.seconds = seconds
        self._previous = None
        self._armed = False

    def __enter__(self):
        if self.seconds is None or self.seconds <= 0:
            return self
        if not hasattr(signal, "SIGALRM"):
            return self
        try:
            self._previous = signal.signal(signal.SIGALRM, self._raise_timeout)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
            self._armed = True
        except ValueError:
            # Not in the main thread: fall back to no enforcement.
            self._armed = False
        return self

    @staticmethod
    def _raise_timeout(_signum, _frame):
        raise _Timeout()

    def __exit__(self, exc_type, exc, tb):
        if self._armed:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, self._previous)
        return False


@dataclass
class BenchmarkRunner:
    """Runs benchmark queries against engines with the paper's failure semantics.

    Attributes:
        timeout_seconds: per-run wall-clock budget (None disables; the paper
            used two hours, the scaled default here is 120 seconds).
        load_timeout_seconds: budget for the (untimed) data-load step.
        verify: when True, cross-check each engine answer against the
            reference implementation and record mismatches as errors.
    """

    timeout_seconds: float | None = 120.0
    load_timeout_seconds: float | None = 300.0
    verify: bool = False

    def run(
        self,
        query: str,
        engine: str | Engine,
        dataset: GenBaseDataset,
        parameters: QueryParameters | None = None,
        n_nodes: int = 1,
        **engine_options,
    ) -> QueryResult:
        """Run one query on one engine configuration.

        Args:
            query: query name (Q1–Q5 aliases accepted).
            engine: engine registry name, or an already constructed (and
                possibly already loaded) :class:`Engine` instance.
            dataset: the GenBase dataset to run against.
            parameters: query parameters; defaults derived from the dataset.
            n_nodes: forwarded to multi-node engine constructors and recorded
                in the result.
            engine_options: extra constructor arguments for the engine.
        """
        query = validate_query_name(query)
        parameters = parameters or default_parameters(dataset.spec)

        if isinstance(engine, Engine):
            engine_instance = engine
            engine_name = engine.name
        else:
            engine_name = engine
            if n_nodes != 1:
                engine_options.setdefault("n_nodes", n_nodes)
            engine_instance = make_engine(engine_name, **engine_options)

        result = QueryResult(
            engine=engine_name,
            query=query,
            dataset_size=dataset.spec.name,
            status=RunStatus.OK,
            n_nodes=engine_options.get("n_nodes", n_nodes),
        )

        # Load (not timed, but still subject to memory failures / budget).
        if engine_instance.dataset is not dataset:
            try:
                with _alarm_timeout(self.load_timeout_seconds):
                    engine_instance.load(dataset)
            except MemoryError as exc:
                result.status = RunStatus.MEMORY_ERROR
                result.error = f"load: {exc}"
                return result
            except _Timeout:
                result.status = RunStatus.TIMEOUT
                result.error = "load exceeded the time budget"
                return result

        timer = PhaseTimer()
        started = time.perf_counter()
        try:
            with _alarm_timeout(self.timeout_seconds):
                output = engine_instance.run(query, parameters, timer)
            result.output = output
        except UnsupportedQueryError as exc:
            result.status = RunStatus.UNSUPPORTED
            result.error = str(exc)
        except NotImplementedError as exc:
            result.status = RunStatus.UNSUPPORTED
            result.error = str(exc)
        except MemoryError as exc:
            result.status = RunStatus.MEMORY_ERROR
            result.error = str(exc)
        except _Timeout:
            result.status = RunStatus.TIMEOUT
            result.error = (
                f"exceeded the {self.timeout_seconds:.0f}s budget "
                f"(paper convention: report as infinite)"
            )
            # Attribute the whole budget to the phases measured so far plus
            # the remainder to whichever phase was running.
            elapsed = time.perf_counter() - started
            measured = timer.total_seconds
            timer.add_analytics(max(0.0, elapsed - measured))

        result.data_management_seconds = timer.data_management_seconds
        result.analytics_seconds = timer.analytics_seconds
        result.notes = dict(timer.notes)

        if self.verify and result.status is RunStatus.OK:
            mismatch = self._verify(result, dataset, parameters)
            if mismatch:
                result.status = RunStatus.ERROR
                result.error = mismatch
        return result

    def run_many(
        self,
        queries,
        engines,
        dataset: GenBaseDataset,
        parameters: QueryParameters | None = None,
        **engine_options,
    ) -> list[QueryResult]:
        """Run a cross product of queries × engines on one dataset."""
        results = []
        for engine_name in engines:
            for query in queries:
                results.append(
                    self.run(query, engine_name, dataset, parameters=parameters, **engine_options)
                )
        return results

    # -- verification --------------------------------------------------------------------

    @staticmethod
    def _verify(result: QueryResult, dataset: GenBaseDataset,
                parameters: QueryParameters) -> str:
        """Cross-check a successful run against the reference implementation."""
        from repro.core.queries import ReferenceImplementation

        reference = ReferenceImplementation(dataset, parameters).run(result.query)
        engine_summary = result.output.summary if result.output else {}
        checks = {
            "regression": [("n_selected_genes", 0), ("n_patients", 0), ("r_squared", 0.05)],
            "covariance": [("n_selected_patients", 0), ("n_pairs_kept", 0)],
            "biclustering": [("n_selected_patients", 0)],
            "svd": [("n_selected_genes", 0), ("k", 0), ("top_singular_value", 1e-3)],
            "statistics": [("n_sampled_patients", 0), ("n_terms", 0)],
        }
        for key, tolerance in checks.get(result.query, []):
            expected = reference.summary.get(key)
            actual = engine_summary.get(key)
            if expected is None or actual is None:
                return f"missing summary field {key!r}"
            if abs(float(expected) - float(actual)) > tolerance + 1e-9:
                return (
                    f"summary field {key!r} mismatch: engine={actual!r} "
                    f"reference={expected!r}"
                )
        return ""
