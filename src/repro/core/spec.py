"""Query names and parameters for the GenBase benchmark.

The five queries (paper Section 3.2) and their tunable parameters.  The
paper fixes example values ("function < 250", "top 10%", "male patients
less than 40 years old", "0.25% of patients", "50 largest eigenvalues");
:func:`default_parameters` derives equivalent values from a dataset's size
spec so the same *selectivities* hold at reproduction scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.sizes import SizeSpec

#: Canonical query names, in the order the paper presents them.
QUERY_NAMES: tuple[str, ...] = (
    "regression",     # Q1: predictive modelling (drug response ~ expression)
    "covariance",     # Q2: gene-gene covariance + threshold + metadata join
    "biclustering",   # Q3: bicluster the filtered expression matrix
    "svd",            # Q4: Lanczos truncated SVD
    "statistics",     # Q5: GO-term enrichment via Wilcoxon rank-sum
)


@dataclass(frozen=True)
class QueryParameters:
    """All tunable knobs of the five queries.

    Attributes:
        gene_function_fraction: Q1/Q4 select genes with
            ``function < gene_function_fraction * n_functions``.
        covariance_diseases: Q2 selects patients whose ``disease_id`` is in
            this set (the paper's "patients with some disease, e.g. cancer").
        covariance_top_fraction: Q2 keeps this fraction of gene pairs.
        bicluster_max_age: Q3 selects patients younger than this.
        bicluster_gender: Q3 selects patients with this gender code (1=male).
        n_biclusters: Q3 number of biclusters to extract.
        svd_rank: Q4 number of singular values/vectors (the paper uses 50).
        statistics_sample_fraction: Q5 fraction of patients sampled
            (the paper uses 0.25% at full scale).
        statistics_alpha: Q5 significance level for the enrichment report.
        seed: seed for any data-dependent sampling inside a query.
    """

    gene_function_fraction: float = 0.25
    covariance_diseases: frozenset[int] = frozenset({1, 2, 3, 4, 5, 6, 7})
    covariance_top_fraction: float = 0.10
    bicluster_max_age: int = 40
    bicluster_gender: int = 1
    n_biclusters: int = 3
    svd_rank: int = 50
    statistics_sample_fraction: float = 0.0025
    statistics_alpha: float = 0.05
    seed: int = 0

    def function_threshold(self, spec: SizeSpec) -> int:
        """The absolute gene-function threshold for Q1/Q4 on this dataset."""
        return max(1, int(round(self.gene_function_fraction * spec.n_functions)))

    def svd_k(self, spec: SizeSpec) -> int:
        """The SVD rank, clipped to what the dataset can support."""
        return max(1, min(self.svd_rank, spec.n_genes, spec.n_patients))

    def sample_fraction(self, spec: SizeSpec) -> float:
        """The Q5 patient sample fraction, floored so at least 3 patients survive."""
        minimum = min(1.0, 3.0 / max(spec.n_patients, 1))
        return max(self.statistics_sample_fraction, minimum)


def default_parameters(spec: SizeSpec, seed: int = 0) -> QueryParameters:
    """Build parameters matching the paper's selectivities for ``spec``.

    At the paper's scale 0.25% of 40,000 patients is 100 samples; at
    reproduction scale the same fraction would leave almost nothing, so the
    sample fraction is raised to keep ≳20 patients while never exceeding
    20% of the dataset.
    """
    sample_fraction = min(0.2, max(0.0025, 20.0 / max(spec.n_patients, 1)))
    svd_rank = max(5, min(50, spec.n_genes // 4, spec.n_patients // 4))
    n_covariance_diseases = max(1, spec.n_diseases // 3)
    return QueryParameters(
        gene_function_fraction=0.25,
        covariance_diseases=frozenset(range(1, n_covariance_diseases + 1)),
        covariance_top_fraction=0.10,
        bicluster_max_age=40,
        bicluster_gender=1,
        n_biclusters=min(3, max(1, spec.n_biclusters)),
        svd_rank=svd_rank,
        statistics_sample_fraction=sample_fraction,
        statistics_alpha=0.05,
        seed=seed,
    )


def validate_query_name(name: str) -> str:
    """Normalise and validate a query name.

    Accepts the canonical names plus the aliases used in the paper's figure
    captions ("linear regression", "statistics test", "wilcoxon").
    """
    aliases = {
        "linear regression": "regression",
        "linear_regression": "regression",
        "q1": "regression",
        "q2": "covariance",
        "q3": "biclustering",
        "q4": "svd",
        "q5": "statistics",
        "wilcoxon": "statistics",
        "enrichment": "statistics",
        "stats": "statistics",
    }
    normalised = aliases.get(name.strip().lower(), name.strip().lower())
    if normalised not in QUERY_NAMES:
        raise ValueError(
            f"unknown query {name!r}; expected one of {list(QUERY_NAMES)}"
        )
    return normalised
