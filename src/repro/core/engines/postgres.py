"""The Postgres-based configurations (paper configurations 2 and 3).

Both engines here use the row store in :mod:`repro.relational` for data
management.  They differ in where the analytics run:

* :class:`PostgresMadlibEngine` — analytics stay *inside* the database as
  Madlib-style UDFs.  Regression and covariance use the compiled tier (fast,
  like Madlib's C++ functions); SVD runs on the interpreted tier (power
  iteration written against list-of-lists arithmetic, like Madlib functions
  that simulate matrix computations in SQL/plpython); biclustering does not
  exist and the query is unsupported.
* :class:`PostgresREngine` — the database only does data management.  Query
  results are exported as CSV text, re-parsed by the R environment, pivoted
  there, and analysed with R's BLAS-backed functions.  The export/parse copy
  is real work and is charged to the data-management phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engines.base import Engine, EngineCapabilities, UnsupportedQueryError
from repro.core.queries import (
    QueryOutput,
    gene_expression_plan,
    patient_expression_plan,
    statistics_patient_ids,
)
from repro.core.spec import QueryParameters
from repro.core.timing import PhaseTimer
from repro.datagen.dataset import GenBaseDataset
from repro.linalg.covariance import top_covariant_pairs
from repro.plan import col, lit
from repro.relational import ColumnType, Database
from repro.relational.bridge import run_shared_plan
from repro.relational.query import QueryResultSet
from repro.relational.udf import UdfRegistry, default_madlib_registry
from repro.rlang import stats as r
from repro.rlang.dataframe import DataFrame
from repro.rlang.io import dataframe_from_csv_string, dataframe_to_csv_string


class _RowStoreDataManagement(Engine):
    """Shared row-store loading and data-management plans."""

    def _load(self, dataset: GenBaseDataset) -> None:
        self.db = Database("genbase")
        self.db.create_table(
            "microarray",
            [("gene_id", ColumnType.INT), ("patient_id", ColumnType.INT),
             ("expression_value", ColumnType.FLOAT)],
        )
        self.db.load_array("microarray", dataset.microarray_relational())
        self.db.create_table(
            "genes",
            [("gene_id", ColumnType.INT), ("target", ColumnType.INT),
             ("position", ColumnType.INT), ("length", ColumnType.INT),
             ("function", ColumnType.INT)],
        )
        self.db.load_array("genes", dataset.genes_relational())
        self.db.create_table(
            "patients",
            [("patient_id", ColumnType.INT), ("age", ColumnType.INT),
             ("gender", ColumnType.INT), ("zipcode", ColumnType.INT),
             ("disease_id", ColumnType.INT), ("drug_response", ColumnType.FLOAT)],
        )
        self.db.load_array("patients", dataset.patients_relational())
        self.db.create_table(
            "ontology",
            [("gene_id", ColumnType.INT), ("go_id", ColumnType.INT),
             ("belongs", ColumnType.INT)],
        )
        self.db.load_array("ontology", dataset.ontology_relational(include_zeros=False))
        self.n_go_terms = dataset.ontology.n_go_terms

    # -- reusable query plans ----------------------------------------------------------
    #
    # The data-management stages execute the same shared logical plans the
    # column store runs (repro.core.queries builders): the shared optimizer
    # pushes the dimension-side predicate below the join, prunes columns
    # through it and annotates the build side from table cardinalities, and
    # repro.relational.bridge lowers the optimized plan onto the Volcano
    # operators.

    def _genes_by_function(self, threshold: int) -> QueryResultSet:
        """SELECT gene_id, patient_id, value FROM genes ⋈ microarray WHERE function < t."""
        return run_shared_plan(gene_expression_plan(threshold), self.db)

    def _patients_by_predicate(self, predicate) -> QueryResultSet:
        """SELECT patient_id, gene_id, value for patients matching a predicate."""
        return run_shared_plan(patient_expression_plan(predicate), self.db)

    def _patients_by_ids(self, patient_ids: np.ndarray) -> QueryResultSet:
        """SELECT patient_id, gene_id, value for an explicit patient-id list."""
        return self._patients_by_predicate(
            col("patient_id").isin([int(p) for p in patient_ids])
        )

    def _drug_response_for(self, patient_labels: np.ndarray) -> np.ndarray:
        """Project the drug-response column for the given patient ids, in order."""
        rows = (
            self.db.query("patients")
            .select("patient_id", "drug_response")
            .run()
        )
        response = {int(patient): value for patient, value in rows}
        return np.asarray([response[int(label)] for label in patient_labels])

    def _membership_matrix(self, gene_labels: np.ndarray) -> np.ndarray:
        """Build the gene × GO-term membership matrix for the given genes."""
        membership = np.zeros((len(gene_labels), self.n_go_terms), dtype=np.int8)
        positions = {int(label): position for position, label in enumerate(gene_labels)}
        for gene_id, go_id, _belongs in self.db.query("ontology").rows():
            position = positions.get(int(gene_id))
            if position is not None:
                membership[position, int(go_id)] = 1
        return membership


@dataclass
class PostgresMadlibEngine(_RowStoreDataManagement):
    """Row store with in-database (Madlib-style) analytics UDFs."""

    name: str = "postgres-madlib"
    capabilities: EngineCapabilities = field(
        default_factory=lambda: EngineCapabilities(
            supported_queries=frozenset({"regression", "covariance", "svd", "statistics"}),
        )
    )
    registry: UdfRegistry = field(default_factory=default_madlib_registry)

    # -- queries ------------------------------------------------------------------------

    def _run_regression(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            result_set = self._genes_by_function(threshold)
            matrix, patient_labels, gene_labels = result_set.pivot(
                "patient_id", "gene_id", "expression_value"
            )
            response = self._drug_response_for(np.asarray(patient_labels))
        with timer.analytics():
            fit = self.registry.call("linear_regression", matrix, response)
        return QueryOutput(
            query="regression",
            summary={
                "n_selected_genes": int(len(gene_labels)),
                "n_patients": int(matrix.shape[0]),
                "r_squared": float(fit.r_squared),
            },
            payload=fit,
        )

    def _run_covariance(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        diseases = [int(d) for d in sorted(parameters.covariance_diseases)]
        with timer.data_management():
            result_set = self._patients_by_predicate(col("disease_id").isin(diseases))
            matrix, patient_labels, gene_labels = result_set.pivot(
                "patient_id", "gene_id", "expression_value"
            )
        with timer.analytics():
            cov = self.registry.call("covariance", matrix)
            gene_a, gene_b, values = top_covariant_pairs(
                cov, fraction=parameters.covariance_top_fraction
            )
        with timer.data_management():
            gene_labels = np.asarray(gene_labels)
            function_lookup = dict(
                self.db.query("genes").select("gene_id", "function").rows()
            )
            joined_rows = sum(
                1 for a in gene_labels[gene_a] if int(a) in function_lookup
            ) if len(gene_a) else 0
        return QueryOutput(
            query="covariance",
            summary={
                "n_selected_patients": int(matrix.shape[0]),
                "n_pairs_kept": int(len(gene_a)),
                "max_covariance": float(values[0]) if len(values) else 0.0,
            },
            payload={"covariance": cov, "joined_rows": joined_rows},
        )

    def _run_biclustering(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        raise UnsupportedQueryError("Madlib provides no biclustering function")

    def _run_svd(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            result_set = self._genes_by_function(threshold)
            matrix, _patients, gene_labels = result_set.pivot(
                "patient_id", "gene_id", "expression_value"
            )
        k = max(1, min(parameters.svd_k(self.dataset.spec), matrix.shape[1]))
        with timer.analytics():
            singular_values = self.registry.call("svd", matrix, k)
        return QueryOutput(
            query="svd",
            summary={
                "n_selected_genes": int(len(gene_labels)),
                "k": int(len(singular_values)),
                "top_singular_value": float(singular_values[0]) if len(singular_values) else 0.0,
            },
            payload=singular_values,
        )

    def _run_statistics(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        sampled = statistics_patient_ids(self.dataset, parameters)
        with timer.data_management():
            result_set = self._patients_by_ids(sampled)
            matrix, _patients, gene_labels = result_set.pivot(
                "patient_id", "gene_id", "expression_value"
            )
            gene_scores = self._gene_scores(matrix)
            membership = self._membership_matrix(np.asarray(gene_labels))
        with timer.analytics():
            p_values = self.registry.call("enrichment", gene_scores, membership)
        significant = np.asarray(p_values) < parameters.statistics_alpha
        return QueryOutput(
            query="statistics",
            summary={
                "n_sampled_patients": int(matrix.shape[0]),
                "n_terms": int(len(p_values)),
                "n_significant": int(significant.sum()),
            },
            payload=p_values,
        )


@dataclass
class PostgresREngine(_RowStoreDataManagement):
    """Row store for data management, external R for analytics (CSV hand-off)."""

    name: str = "postgres-r"
    capabilities: EngineCapabilities = field(
        default_factory=lambda: EngineCapabilities(uses_external_analytics=True)
    )

    # -- the DBMS → R hand-off -----------------------------------------------------------

    def _export_to_r(self, result_set: QueryResultSet, timer: PhaseTimer) -> DataFrame:
        """Serialise a query result to CSV and re-parse it in the R environment.

        Both halves of the copy are charged to data management, along with a
        note of the number of bytes that crossed the boundary.
        """
        columns = list(result_set.schema.names)
        frame = DataFrame(
            {name: np.asarray(result_set.column(name)) for name in columns}
        )
        payload = dataframe_to_csv_string(frame)
        timer.note("export_bytes", float(len(payload)))
        return dataframe_from_csv_string(payload)

    # -- queries -----------------------------------------------------------------------------

    def _run_regression(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            result_set = self._genes_by_function(threshold)
            r_frame = self._export_to_r(result_set, timer)
            matrix, patient_labels, gene_labels = r_frame.pivot_matrix(
                "patient_id", "gene_id", "expression_value"
            )
            response = self._drug_response_for(np.asarray(patient_labels))
        with timer.analytics():
            fit = r.lm(matrix, response)
        return QueryOutput(
            query="regression",
            summary={
                "n_selected_genes": int(len(gene_labels)),
                "n_patients": int(matrix.shape[0]),
                "r_squared": float(fit.r_squared),
            },
            payload=fit,
        )

    def _run_covariance(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        diseases = [int(d) for d in sorted(parameters.covariance_diseases)]
        with timer.data_management():
            result_set = self._patients_by_predicate(col("disease_id").isin(diseases))
            r_frame = self._export_to_r(result_set, timer)
            matrix, _patients, gene_labels = r_frame.pivot_matrix(
                "patient_id", "gene_id", "expression_value"
            )
        with timer.analytics():
            cov = r.cov(matrix)
            gene_a, gene_b, values = top_covariant_pairs(
                cov, fraction=parameters.covariance_top_fraction
            )
        return QueryOutput(
            query="covariance",
            summary={
                "n_selected_patients": int(matrix.shape[0]),
                "n_pairs_kept": int(len(gene_a)),
                "max_covariance": float(values[0]) if len(values) else 0.0,
            },
            payload={"covariance": cov},
        )

    def _run_biclustering(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        with timer.data_management():
            result_set = self._patients_by_predicate(
                (col("gender") == lit(parameters.bicluster_gender))
                & (col("age") < lit(parameters.bicluster_max_age))
            )
            r_frame = self._export_to_r(result_set, timer)
            matrix, _patients, _genes = r_frame.pivot_matrix(
                "patient_id", "gene_id", "expression_value"
            )
        with timer.analytics():
            result = r.biclust(matrix, n_biclusters=parameters.n_biclusters, seed=parameters.seed)
        shapes = [bicluster.shape for bicluster in result]
        return QueryOutput(
            query="biclustering",
            summary={
                "n_selected_patients": int(matrix.shape[0]),
                "n_biclusters": int(len(result)),
                "largest_bicluster_cells": int(max((rows * cols for rows, cols in shapes), default=0)),
            },
            payload=result,
        )

    def _run_svd(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            result_set = self._genes_by_function(threshold)
            r_frame = self._export_to_r(result_set, timer)
            matrix, _patients, gene_labels = r_frame.pivot_matrix(
                "patient_id", "gene_id", "expression_value"
            )
        k = max(1, min(parameters.svd_k(self.dataset.spec), matrix.shape[1]))
        with timer.analytics():
            result = r.svd(matrix, k=k, seed=parameters.seed)
        return QueryOutput(
            query="svd",
            summary={
                "n_selected_genes": int(len(gene_labels)),
                "k": int(len(result.singular_values)),
                "top_singular_value": float(result.singular_values[0]) if len(result.singular_values) else 0.0,
            },
            payload=result,
        )

    def _run_statistics(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        sampled = statistics_patient_ids(self.dataset, parameters)
        with timer.data_management():
            result_set = self._patients_by_ids(sampled)
            r_frame = self._export_to_r(result_set, timer)
            matrix, _patients, gene_labels = r_frame.pivot_matrix(
                "patient_id", "gene_id", "expression_value"
            )
            gene_scores = self._gene_scores(matrix)
            membership = self._membership_matrix(np.asarray(gene_labels))
        with timer.analytics():
            result = r.enrichment(gene_scores, membership, alpha=parameters.statistics_alpha)
        return QueryOutput(
            query="statistics",
            summary={
                "n_sampled_patients": int(matrix.shape[0]),
                "n_terms": int(len(result.go_ids)),
                "n_significant": int(result.significant.sum()),
            },
            payload=result,
        )
