"""The array DBMS configuration (paper configuration 6).

Data is stored natively as chunked arrays, so the GenBase queries need no
table→matrix restructuring: the data-management phase is metadata filtering
plus ``subarray`` extraction, and the analytics run either natively over the
chunks (covariance, Lanczos SVD, Wilcoxon) or via the explicit chunked→dense
conversion to the "ScaLAPACK" tier (regression, biclustering) — the two
paths Section 6.2 of the paper discusses.

Data management executes the *shared* logical plans of
:mod:`repro.core.queries` — the same ``Scan → Filter → Join →
Aggregate/Pivot`` trees the column store, row store, MapReduce and R
engines run — through the array executor
:func:`repro.arraydb.bridge.run_shared_plan`.  Filters are shared-AST
expressions evaluated chunk-wise over the metadata arrays; classified
range/equality/membership conjuncts consult each chunk's min/max synopsis
and skip whole chunks (``self.filter_stats`` accumulates the skip
counters), and the join against the expression array is a dimension
subarray.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arraydb import ChunkedArray, linalg as array_linalg
from repro.arraydb.bridge import ArrayFrame, MatrixFrame, run_shared_plan
from repro.arraydb.operators import FilterStats
from repro.core.engines.base import Engine, EngineCapabilities
from repro.core.queries import (
    QueryOutput,
    gene_expression_plan,
    patient_expression_plan,
    sampled_expression_mean_plan,
    statistics_patient_ids,
)
from repro.core.spec import QueryParameters
from repro.core.timing import PhaseTimer
from repro.datagen.dataset import GenBaseDataset
from repro.linalg.biclustering import cheng_church
from repro.linalg.covariance import top_covariant_pairs
from repro.linalg.qr import linear_regression
from repro.linalg.wilcoxon import enrichment_analysis
from repro.plan import col


@dataclass
class SciDBEngine(Engine):
    """Native array DBMS: chunked storage + chunk-wise analytics."""

    name: str = "scidb"
    chunk_size: int = 128
    capabilities: EngineCapabilities = field(default_factory=EngineCapabilities)

    def _load(self, dataset: GenBaseDataset) -> None:
        chunk = self.chunk_size
        self.expression = ChunkedArray.from_dense(
            "expression",
            dataset.expression_matrix,
            dimension_names=["patient_id", "gene_id"],
            attribute_name="expression_value",
            chunk_sizes=[chunk, chunk],
        )
        self.gene_function = ChunkedArray.from_dense(
            "gene_function",
            dataset.genes.function.astype(np.float64),
            dimension_names=["gene_id"],
            attribute_name="function",
            chunk_sizes=[chunk],
        )
        self.patient_disease = ChunkedArray.from_dense(
            "patient_disease",
            dataset.patients.disease_id.astype(np.float64),
            dimension_names=["patient_id"],
            attribute_name="disease_id",
            chunk_sizes=[chunk],
        )
        self.patient_age = ChunkedArray.from_dense(
            "patient_age",
            dataset.patients.age.astype(np.float64),
            dimension_names=["patient_id"],
            attribute_name="age",
            chunk_sizes=[chunk],
        )
        self.patient_gender = ChunkedArray.from_dense(
            "patient_gender",
            dataset.patients.gender.astype(np.float64),
            dimension_names=["patient_id"],
            attribute_name="gender",
            chunk_sizes=[chunk],
        )
        self.drug_response = ChunkedArray.from_dense(
            "drug_response",
            dataset.patients.drug_response,
            dimension_names=["patient_id"],
            attribute_name="drug_response",
            chunk_sizes=[chunk],
        )
        self.go_membership = ChunkedArray.from_dense(
            "go_membership",
            dataset.ontology.membership.astype(np.float64),
            dimension_names=["gene_id", "go_id"],
            attribute_name="belongs",
            chunk_sizes=[chunk, chunk],
        )
        self.gene_functions_dense = dataset.genes.function
        #: The logical tables the shared plans scan, mapped onto the arrays.
        self.frames = {
            "microarray": MatrixFrame(self.expression, "expression_value"),
            "genes": ArrayFrame("gene_id", {"function": self.gene_function}),
            "patients": ArrayFrame(
                "patient_id",
                {
                    "disease_id": self.patient_disease,
                    "age": self.patient_age,
                    "gender": self.patient_gender,
                    "drug_response": self.drug_response,
                },
            ),
        }
        #: Cumulative chunk-skip accounting across every shared-plan filter.
        self.filter_stats = FilterStats()

    # -- shared-plan execution ------------------------------------------------------------

    def _run_expression_plan(self, plan):
        """Execute one shared logical plan on the array frames.

        Chunk-skip counters accumulate into ``self.filter_stats`` so tests
        and diagnostics can observe how many metadata chunks the min/max
        synopses eliminated.
        """
        return run_shared_plan(plan, self.frames, stats=self.filter_stats)

    # -- Q1 ---------------------------------------------------------------------------------

    def _run_regression(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            result = self._run_expression_plan(gene_expression_plan(threshold))
            genes = result.label("gene_id")
            response = self.drug_response.to_dense()
        with timer.analytics():
            # Regression goes through the ScaLAPACK tier: explicit conversion
            # from chunked to dense layout, then the LAPACK QR solver.
            dense = array_linalg.to_scalapack(result.array)
            fit = linear_regression(dense, response, method="lapack")
        return QueryOutput(
            query="regression",
            summary={
                "n_selected_genes": int(len(genes)),
                "n_patients": int(dense.shape[0]),
                "r_squared": float(fit.r_squared),
            },
            payload=fit,
        )

    # -- Q2 ---------------------------------------------------------------------------------

    def _run_covariance(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        diseases = np.asarray(sorted(parameters.covariance_diseases), dtype=np.float64)
        with timer.data_management():
            result = self._run_expression_plan(
                patient_expression_plan(col("disease_id").isin(diseases))
            )
            patients = result.label("patient_id")
        with timer.analytics():
            cov = array_linalg.covariance(result.array)
            gene_a, gene_b, values = top_covariant_pairs(
                cov, fraction=parameters.covariance_top_fraction
            )
        with timer.data_management():
            _pair_functions = (
                self.gene_functions_dense[gene_a] if len(gene_a) else np.empty(0)
            )
        return QueryOutput(
            query="covariance",
            summary={
                "n_selected_patients": int(len(patients)),
                "n_pairs_kept": int(len(gene_a)),
                "max_covariance": float(values[0]) if len(values) else 0.0,
            },
            payload={"covariance": cov},
        )

    # -- Q3 ---------------------------------------------------------------------------------

    def _run_biclustering(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        with timer.data_management():
            # One conjunction in one shared plan; the optimizer splits it
            # and the chunk-wise pass evaluates both halves per chunk,
            # skipping chunks either synopsis excludes.
            result = self._run_expression_plan(
                patient_expression_plan(
                    (col("gender") == parameters.bicluster_gender)
                    & (col("age") < parameters.bicluster_max_age)
                )
            )
            patients = result.label("patient_id")
        with timer.analytics():
            dense = array_linalg.to_scalapack(result.array)
            result_biclusters = cheng_church(
                dense, n_biclusters=parameters.n_biclusters, seed=parameters.seed
            )
        shapes = [bicluster.shape for bicluster in result_biclusters]
        return QueryOutput(
            query="biclustering",
            summary={
                "n_selected_patients": int(len(patients)),
                "n_biclusters": int(len(result_biclusters)),
                "largest_bicluster_cells": int(max((rows * cols for rows, cols in shapes), default=0)),
            },
            payload=result_biclusters,
        )

    # -- Q4 ---------------------------------------------------------------------------------

    def _run_svd(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            result = self._run_expression_plan(gene_expression_plan(threshold))
            genes = result.label("gene_id")
        k = max(1, min(parameters.svd_k(self.dataset.spec), len(genes))) if len(genes) else 1
        with timer.analytics():
            svd_result = array_linalg.lanczos_svd_chunked(result.array, k=k, seed=parameters.seed)
        return QueryOutput(
            query="svd",
            summary={
                "n_selected_genes": int(len(genes)),
                "k": int(len(svd_result.singular_values)),
                "top_singular_value": float(svd_result.singular_values[0]) if len(svd_result.singular_values) else 0.0,
            },
            payload=svd_result,
        )

    # -- Q5 ---------------------------------------------------------------------------------

    def _run_statistics(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        sampled = statistics_patient_ids(self.dataset, parameters)
        with timer.data_management():
            # The per-gene score is the shared Aggregate plan: the patient
            # membership predicate narrows the expression array to the
            # sampled rows (a dimension subarray) and the mean runs
            # chunk-wise along gene_id.
            _gene_labels, gene_scores = self._run_expression_plan(
                sampled_expression_mean_plan(sampled)
            )
            membership = self.go_membership.to_dense()
        with timer.analytics():
            result = enrichment_analysis(
                np.nan_to_num(gene_scores), membership, alpha=parameters.statistics_alpha
            )
        return QueryOutput(
            query="statistics",
            summary={
                "n_sampled_patients": int(len(sampled)),
                "n_terms": int(len(result.go_ids)),
                "n_significant": int(result.significant.sum()),
            },
            payload=result,
        )
