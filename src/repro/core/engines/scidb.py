"""The array DBMS configuration (paper configuration 6).

Data is stored natively as chunked arrays, so the GenBase queries need no
table→matrix restructuring: the data-management phase is metadata filtering
plus ``subarray`` extraction, and the analytics run either natively over the
chunks (covariance, Lanczos SVD, Wilcoxon) or via the explicit chunked→dense
conversion to the "ScaLAPACK" tier (regression, biclustering) — the two
paths Section 6.2 of the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arraydb import ChunkedArray, linalg as array_linalg, operators as ops
from repro.core.engines.base import Engine, EngineCapabilities
from repro.core.queries import QueryOutput, statistics_patient_ids
from repro.core.spec import QueryParameters
from repro.core.timing import PhaseTimer
from repro.datagen.dataset import GenBaseDataset
from repro.linalg.biclustering import cheng_church
from repro.linalg.covariance import top_covariant_pairs
from repro.linalg.qr import linear_regression
from repro.linalg.wilcoxon import enrichment_analysis


@dataclass
class SciDBEngine(Engine):
    """Native array DBMS: chunked storage + chunk-wise analytics."""

    name: str = "scidb"
    chunk_size: int = 128
    capabilities: EngineCapabilities = field(default_factory=EngineCapabilities)

    def _load(self, dataset: GenBaseDataset) -> None:
        chunk = self.chunk_size
        self.expression = ChunkedArray.from_dense(
            "expression",
            dataset.expression_matrix,
            dimension_names=["patient_id", "gene_id"],
            attribute_name="value",
            chunk_sizes=[chunk, chunk],
        )
        self.gene_function = ChunkedArray.from_dense(
            "gene_function",
            dataset.genes.function.astype(np.float64),
            dimension_names=["gene_id"],
            attribute_name="function",
            chunk_sizes=[chunk],
        )
        self.patient_disease = ChunkedArray.from_dense(
            "patient_disease",
            dataset.patients.disease_id.astype(np.float64),
            dimension_names=["patient_id"],
            attribute_name="disease_id",
            chunk_sizes=[chunk],
        )
        self.patient_age = ChunkedArray.from_dense(
            "patient_age",
            dataset.patients.age.astype(np.float64),
            dimension_names=["patient_id"],
            attribute_name="age",
            chunk_sizes=[chunk],
        )
        self.patient_gender = ChunkedArray.from_dense(
            "patient_gender",
            dataset.patients.gender.astype(np.float64),
            dimension_names=["patient_id"],
            attribute_name="gender",
            chunk_sizes=[chunk],
        )
        self.drug_response = ChunkedArray.from_dense(
            "drug_response",
            dataset.patients.drug_response,
            dimension_names=["patient_id"],
            attribute_name="drug_response",
            chunk_sizes=[chunk],
        )
        self.go_membership = ChunkedArray.from_dense(
            "go_membership",
            dataset.ontology.membership.astype(np.float64),
            dimension_names=["gene_id", "go_id"],
            attribute_name="belongs",
            chunk_sizes=[chunk, chunk],
        )
        self.gene_functions_dense = dataset.genes.function

    # -- metadata-filter helpers (all chunk-wise) ----------------------------------------

    @staticmethod
    def _selected_coordinates(metadata: ChunkedArray, attribute: str, predicate) -> np.ndarray:
        """Coordinates along a 1-D metadata array whose attribute satisfies a predicate."""
        filtered = ops.filter_attribute(metadata, attribute, predicate)
        coordinates, _values = filtered.attribute_cells(attribute)
        return coordinates[0]

    def _subarray_for_patients(self, patient_ids: np.ndarray) -> ChunkedArray:
        return ops.subarray_by_index(self.expression, "patient_id", patient_ids)

    def _subarray_for_genes(self, gene_ids: np.ndarray) -> ChunkedArray:
        return ops.subarray_by_index(self.expression, "gene_id", gene_ids)

    # -- Q1 ---------------------------------------------------------------------------------

    def _run_regression(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            genes = self._selected_coordinates(
                self.gene_function, "function", lambda v: v < threshold
            )
            sub = self._subarray_for_genes(genes)
            response = self.drug_response.to_dense()
        with timer.analytics():
            # Regression goes through the ScaLAPACK tier: explicit conversion
            # from chunked to dense layout, then the LAPACK QR solver.
            dense = array_linalg.to_scalapack(sub)
            fit = linear_regression(dense, response, method="lapack")
        return QueryOutput(
            query="regression",
            summary={
                "n_selected_genes": int(len(genes)),
                "n_patients": int(dense.shape[0]),
                "r_squared": float(fit.r_squared),
            },
            payload=fit,
        )

    # -- Q2 ---------------------------------------------------------------------------------

    def _run_covariance(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        diseases = np.asarray(sorted(parameters.covariance_diseases), dtype=np.float64)
        with timer.data_management():
            patients = self._selected_coordinates(
                self.patient_disease, "disease_id", lambda v: np.isin(v, diseases)
            )
            sub = self._subarray_for_patients(patients)
        with timer.analytics():
            cov = array_linalg.covariance(sub)
            gene_a, gene_b, values = top_covariant_pairs(
                cov, fraction=parameters.covariance_top_fraction
            )
        with timer.data_management():
            _pair_functions = (
                self.gene_functions_dense[gene_a] if len(gene_a) else np.empty(0)
            )
        return QueryOutput(
            query="covariance",
            summary={
                "n_selected_patients": int(len(patients)),
                "n_pairs_kept": int(len(gene_a)),
                "max_covariance": float(values[0]) if len(values) else 0.0,
            },
            payload={"covariance": cov},
        )

    # -- Q3 ---------------------------------------------------------------------------------

    def _run_biclustering(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        with timer.data_management():
            male = self._selected_coordinates(
                self.patient_gender, "gender", lambda v: v == parameters.bicluster_gender
            )
            young = self._selected_coordinates(
                self.patient_age, "age", lambda v: v < parameters.bicluster_max_age
            )
            patients = np.intersect1d(male, young)
            sub = self._subarray_for_patients(patients)
        with timer.analytics():
            dense = array_linalg.to_scalapack(sub)
            result = cheng_church(
                dense, n_biclusters=parameters.n_biclusters, seed=parameters.seed
            )
        shapes = [bicluster.shape for bicluster in result]
        return QueryOutput(
            query="biclustering",
            summary={
                "n_selected_patients": int(len(patients)),
                "n_biclusters": int(len(result)),
                "largest_bicluster_cells": int(max((rows * cols for rows, cols in shapes), default=0)),
            },
            payload=result,
        )

    # -- Q4 ---------------------------------------------------------------------------------

    def _run_svd(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            genes = self._selected_coordinates(
                self.gene_function, "function", lambda v: v < threshold
            )
            sub = self._subarray_for_genes(genes)
        k = max(1, min(parameters.svd_k(self.dataset.spec), len(genes))) if len(genes) else 1
        with timer.analytics():
            result = array_linalg.lanczos_svd_chunked(sub, k=k, seed=parameters.seed)
        return QueryOutput(
            query="svd",
            summary={
                "n_selected_genes": int(len(genes)),
                "k": int(len(result.singular_values)),
                "top_singular_value": float(result.singular_values[0]) if len(result.singular_values) else 0.0,
            },
            payload=result,
        )

    # -- Q5 ---------------------------------------------------------------------------------

    def _run_statistics(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        sampled = statistics_patient_ids(self.dataset, parameters)
        with timer.data_management():
            sub = self._subarray_for_patients(sampled)
            gene_scores = ops.aggregate(sub, "value", "avg", along="gene_id")
            membership = self.go_membership.to_dense()
        with timer.analytics():
            result = enrichment_analysis(
                np.nan_to_num(gene_scores), membership, alpha=parameters.statistics_alpha
            )
        return QueryOutput(
            query="statistics",
            summary={
                "n_sampled_patients": int(len(sampled)),
                "n_terms": int(len(result.go_ids)),
                "n_significant": int(result.significant.sum()),
            },
            payload=result,
        )
