"""Multi-node engine configurations (paper Figures 3 and 4).

Five configurations run multi-node in the paper: SciDB, Hadoop, the column
store with pbdR, the column store with UDFs, and pbdR on its own.  All of
them are built here on the :mod:`repro.cluster` substrate:

* the expression matrix and patient metadata are row-partitioned across the
  simulated nodes at load time (gene metadata and GO data are replicated,
  as every real system does for small dimension tables);
* the data-management phase is a shared logical plan
  (``Filter(Scan("patients"), predicate)`` with predicates built by
  :mod:`repro.core.queries`) lowered through :mod:`repro.cluster.bridge`:
  partitions whose min/max + distinct-set synopses exclude the predicate
  are pruned on the driver before dispatch (``partition_stats`` counts
  them), and the surviving fragments run concurrently on the cluster's
  threaded executor; simulated elapsed time remains the slowest node plus
  any network traffic;
* the analytics phase differs by configuration:

  - **pbdR** and **column store + pbdR** use the ScaLAPACK layer
    (distributed covariance / normal equations / Lanczos with all-reduces),
  - **SciDB** uses the same distributed kernels but pays an extra
    re-chunking redistribution after its filters (the data movement the
    paper suggests explains its 1→2 node regression),
  - **column store + UDFs** gathers the filtered partitions to one node and
    runs the single-node UDF analytics there (UDFs do not parallelise),
  - **Hadoop** runs per-node Hive jobs for data management, gathers the
    joined output, and runs the driver-side Mahout analytics without
    parallelism credit (a conservative simplification recorded in
    DESIGN.md; the paper's qualitative finding — Hadoop is slowest and
    scales poorly — is insensitive to it).

Phase times recorded by these engines are *simulated parallel* times:
measured per-node compute combined with modelled network seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster import (
    Cluster,
    DistributedMatrix,
    PartitionedTable,
    PartitionStats,
    ScaLAPACK,
    merge_gathered,
    reduce_partial_sums,
)
from repro.cluster.bridge import run_shared_plan as run_cluster_plan
from repro.core.engines.base import Engine, EngineCapabilities
from repro.core.queries import (
    QueryOutput,
    bicluster_patient_predicate,
    covariance_patient_predicate,
    gene_expression_plan,
    patient_expression_plan,
    statistics_patient_ids,
    statistics_patient_predicate,
)
from repro.core.spec import QueryParameters
from repro.core.timing import PhaseTimer
from repro.datagen.dataset import GenBaseDataset
from repro.linalg.biclustering import cheng_church
from repro.linalg.covariance import top_covariant_pairs
from repro.linalg.wilcoxon import enrichment_analysis
from repro.mapreduce import HiveSession, HiveTable, Mahout, MapReduceEngine
from repro.mapreduce.bridge import driver_pivot, run_shared_plan
from repro.plan import Filter, Scan


@dataclass
class NodePartition:
    """One node's slice of the GenBase data (patients are the partition key)."""

    patient_ids: np.ndarray
    expression: np.ndarray
    age: np.ndarray
    gender: np.ndarray
    disease_id: np.ndarray
    drug_response: np.ndarray


@dataclass
class _MultiNodeEngine(Engine):
    """Shared loading, partitioning and phase-accounting machinery."""

    name: str = "multi-node"
    n_nodes: int = 2
    capabilities: EngineCapabilities = field(
        default_factory=lambda: EngineCapabilities(multi_node=True)
    )
    #: Whether the filtered matrix is redistributed (re-chunked) after the
    #: data-management filters — SciDB pays this, the pbdR variants do not.
    redistribute_after_filter: bool = False

    def _load(self, dataset: GenBaseDataset) -> None:
        self.cluster = Cluster(self.n_nodes)
        boundaries = np.array_split(np.arange(dataset.n_patients), self.n_nodes)
        matrix = dataset.expression_matrix
        patients = dataset.patients
        self.partitions = [
            NodePartition(
                patient_ids=ids,
                expression=matrix[ids],
                age=patients.age[ids],
                gender=patients.gender[ids],
                disease_id=patients.disease_id[ids],
                drug_response=patients.drug_response[ids],
            )
            for ids in boundaries
        ]
        # Driver-resident metadata for the shared-plan bridge: per-partition
        # synopses over the patient columns drive partition pruning, and
        # partition_stats mirrors the array engine's filter_stats.
        self.partition_stats = PartitionStats()
        self._patients_table = PartitionedTable.from_partitions(
            "patients",
            [
                {
                    "patient_id": partition.patient_ids,
                    "age": partition.age,
                    "gender": partition.gender,
                    "disease_id": partition.disease_id,
                }
                for partition in self.partitions
            ],
        )
        self.gene_function = dataset.genes.function
        self.go_membership = dataset.ontology.membership
        self.n_go_terms = dataset.ontology.n_go_terms

    # -- phase accounting helpers -----------------------------------------------------------

    def _timed_cluster_phase(self, timer_add, work) -> list:
        """Run ``work`` (which uses the cluster) and charge its simulated time."""
        before = self.cluster.simulated_elapsed_seconds
        outputs = work()
        timer_add(self.cluster.simulated_elapsed_seconds - before)
        return outputs

    # -- per-node data-management primitives ---------------------------------------------------

    def _patient_filter_plan(self, predicate) -> Filter:
        """The shared logical plan for a patient filter on this cluster."""
        return Filter(Scan("patients"), predicate)

    def _filter_patients_plan(self, predicate) -> list[NodePartition]:
        """Lower a shared patient predicate through the cluster bridge.

        Partitions whose synopsis excludes the predicate are pruned on the
        driver (counted in ``partition_stats``); surviving fragments
        evaluate the expression and subset their partition on the node.
        """
        def subset(node_id: int, local_rows: np.ndarray) -> NodePartition:
            partition = self.partitions[node_id]
            return NodePartition(
                patient_ids=partition.patient_ids[local_rows],
                expression=partition.expression[local_rows],
                age=partition.age[local_rows],
                gender=partition.gender[local_rows],
                disease_id=partition.disease_id[local_rows],
                drug_response=partition.drug_response[local_rows],
            )

        return run_cluster_plan(
            self._patient_filter_plan(predicate), self._patients_table, self.cluster,
            stats=self.partition_stats, on_fragment=subset,
        )

    def _project_genes_local(self, partitions: list[NodePartition], gene_ids: np.ndarray) -> list[np.ndarray]:
        """Project each node's expression block onto the selected gene columns."""
        def local(partition: NodePartition, _node: int) -> np.ndarray:
            return partition.expression[:, gene_ids]

        result = self.cluster.map_partitions(partitions, local)
        return [np.asarray(block) for block in result.outputs]

    def _maybe_redistribute(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Charge a re-chunking shuffle of the filtered blocks (SciDB only)."""
        if not self.redistribute_after_filter or self.n_nodes == 1:
            return blocks
        gathered = self.cluster.gather(blocks, destination=0, label="rechunk-gather")
        scattered = self.cluster.scatter(list(gathered.outputs), source=0, label="rechunk-scatter")
        return [np.asarray(block) for block in scattered.outputs]

    def _distributed(self, blocks: list[np.ndarray], n_columns: int) -> DistributedMatrix:
        return DistributedMatrix(cluster=self.cluster, partitions=blocks, n_columns=n_columns)

    def _gather_dense(self, blocks: list[np.ndarray], timer_add) -> np.ndarray:
        """Gather per-node blocks to the driver, charging the network."""
        def work():
            gathered = self.cluster.gather(blocks, destination=0, label="gather-analytics")
            return gathered.outputs

        outputs = self._timed_cluster_phase(timer_add, work)
        n_columns = blocks[0].shape[1] if blocks and blocks[0].ndim == 2 else 0
        return merge_gathered(outputs, n_columns)

    # -- selections (replicated metadata, evaluated on the driver) ------------------------------

    def _selected_gene_ids(self, parameters: QueryParameters) -> np.ndarray:
        threshold = parameters.function_threshold(self.dataset.spec)
        return np.flatnonzero(self.gene_function < threshold)


class _DistributedAnalyticsMixin(_MultiNodeEngine):
    """Analytics via the ScaLAPACK layer (pbdR, column store + pbdR, SciDB)."""

    def _run_regression(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        genes = self._selected_gene_ids(parameters)

        def dm():
            blocks = self._project_genes_local(self.partitions, genes)
            return self._maybe_redistribute(blocks)

        blocks = self._timed_cluster_phase(timer.add_data_management, dm)
        responses = [partition.drug_response.reshape(-1, 1) for partition in self.partitions]

        def analytics():
            scalapack = ScaLAPACK(self.cluster)
            features = self._distributed(blocks, len(genes))
            target = self._distributed(responses, 1)
            return [scalapack.linear_regression(features, target)]

        fit = self._timed_cluster_phase(timer.add_analytics, analytics)[0]
        return QueryOutput(
            query="regression",
            summary={
                "n_selected_genes": int(len(genes)),
                "n_patients": int(sum(len(p.patient_ids) for p in self.partitions)),
                "r_squared": float(fit.r_squared),
            },
            payload=fit,
        )

    def _run_covariance(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        predicate = covariance_patient_predicate(parameters)

        def dm():
            filtered = self._filter_patients_plan(predicate)
            blocks = [partition.expression for partition in filtered]
            return filtered, self._maybe_redistribute(blocks)

        filtered, blocks = self._timed_cluster_phase(timer.add_data_management, dm)

        def analytics():
            scalapack = ScaLAPACK(self.cluster)
            matrix = self._distributed(blocks, self.dataset.n_genes)
            cov = scalapack.covariance(matrix)
            return [top_covariant_pairs(cov, fraction=parameters.covariance_top_fraction) + (cov,)]

        gene_a, gene_b, values, cov = self._timed_cluster_phase(timer.add_analytics, analytics)[0]
        n_selected = int(sum(len(p.patient_ids) for p in filtered))
        return QueryOutput(
            query="covariance",
            summary={
                "n_selected_patients": n_selected,
                "n_pairs_kept": int(len(gene_a)),
                "max_covariance": float(values[0]) if len(values) else 0.0,
            },
            payload={"covariance": cov},
        )

    def _run_biclustering(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        predicate = bicluster_patient_predicate(parameters)

        def dm():
            return self._filter_patients_plan(predicate)

        filtered = self._timed_cluster_phase(timer.add_data_management, dm)
        blocks = [partition.expression for partition in filtered]
        dense = self._gather_dense(blocks, timer.add_analytics)
        with timer.analytics():
            result = cheng_church(
                dense, n_biclusters=parameters.n_biclusters, seed=parameters.seed
            )
        shapes = [bicluster.shape for bicluster in result]
        return QueryOutput(
            query="biclustering",
            summary={
                "n_selected_patients": int(dense.shape[0]),
                "n_biclusters": int(len(result)),
                "largest_bicluster_cells": int(max((rows * cols for rows, cols in shapes), default=0)),
            },
            payload=result,
        )

    def _run_svd(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        genes = self._selected_gene_ids(parameters)

        def dm():
            blocks = self._project_genes_local(self.partitions, genes)
            return self._maybe_redistribute(blocks)

        blocks = self._timed_cluster_phase(timer.add_data_management, dm)
        k = max(1, min(parameters.svd_k(self.dataset.spec), len(genes))) if len(genes) else 1

        def analytics():
            scalapack = ScaLAPACK(self.cluster)
            matrix = self._distributed(blocks, len(genes))
            return [scalapack.lanczos_svd(matrix, k=k, seed=parameters.seed)]

        result = self._timed_cluster_phase(timer.add_analytics, analytics)[0]
        return QueryOutput(
            query="svd",
            summary={
                "n_selected_genes": int(len(genes)),
                "k": int(len(result.singular_values)),
                "top_singular_value": float(result.singular_values[0]) if len(result.singular_values) else 0.0,
            },
            payload=result,
        )

    def _run_statistics(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        # Built once on the driver: the isin predicate caches its sorted key
        # array, so no node re-sorts the sample.
        predicate = statistics_patient_predicate(
            statistics_patient_ids(self.dataset, parameters)
        )

        def dm():
            # Per-node partial sums of the sampled rows (the distributed
            # "rank genes by expression" step), fused into the filter
            # fragment so each surviving node is dispatched once.
            def partial(node_id: int, local_rows: np.ndarray):
                rows = self.partitions[node_id].expression[local_rows]
                if rows.size == 0:
                    return (np.zeros(self.dataset.n_genes), 0)
                return (rows.sum(axis=0), rows.shape[0])

            return run_cluster_plan(
                self._patient_filter_plan(predicate), self._patients_table,
                self.cluster, stats=self.partition_stats, on_fragment=partial,
            )

        partials = self._timed_cluster_phase(timer.add_data_management, dm)
        totals, count = reduce_partial_sums(partials)
        gene_scores = totals / max(count, 1)
        with timer.analytics():
            result = enrichment_analysis(
                gene_scores, self.go_membership, alpha=parameters.statistics_alpha
            )
        return QueryOutput(
            query="statistics",
            summary={
                "n_sampled_patients": int(count),
                "n_terms": int(len(result.go_ids)),
                "n_significant": int(result.significant.sum()),
            },
            payload=result,
        )


@dataclass
class PbdREngine(_DistributedAnalyticsMixin):
    """pbdR: R partitioned across nodes with ScaLAPACK analytics."""

    name: str = "pbdr"
    redistribute_after_filter: bool = False


@dataclass
class ColumnStorePbdREngine(_DistributedAnalyticsMixin):
    """Column store for local data management, pbdR/ScaLAPACK for analytics."""

    name: str = "columnstore-pbdr"
    redistribute_after_filter: bool = False


@dataclass
class SciDBClusterEngine(_DistributedAnalyticsMixin):
    """SciDB multi-node: same distributed kernels, plus re-chunking shuffles."""

    name: str = "scidb-cluster"
    redistribute_after_filter: bool = True


@dataclass
class ColumnStoreUdfClusterEngine(_MultiNodeEngine):
    """Column store + UDFs multi-node: analytics gathered to a single node."""

    name: str = "columnstore-udf-cluster"

    def __post_init__(self) -> None:
        super().__post_init__()
        from repro.core.engines.colstore_engine import ColumnStoreUdfEngine

        self._single_node = ColumnStoreUdfEngine()

    def _load(self, dataset: GenBaseDataset) -> None:
        super()._load(dataset)
        self._single_node.load(dataset)

    def _run_gathered(self, query: str, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        """Charge a gather of the (filtered) working set, then run single node."""
        blocks = [partition.expression for partition in self.partitions]
        if self.n_nodes > 1:
            def work():
                self.cluster.gather(blocks, destination=0, label="gather-for-udf")
                return []

            self._timed_cluster_phase(timer.add_data_management, work)
        return self._single_node.run(query, parameters, timer)

    def _run_regression(self, parameters, timer):
        return self._run_gathered("regression", parameters, timer)

    def _run_covariance(self, parameters, timer):
        return self._run_gathered("covariance", parameters, timer)

    def _run_biclustering(self, parameters, timer):
        return self._run_gathered("biclustering", parameters, timer)

    def _run_svd(self, parameters, timer):
        return self._run_gathered("svd", parameters, timer)

    def _run_statistics(self, parameters, timer):
        return self._run_gathered("statistics", parameters, timer)


@dataclass
class HadoopClusterEngine(_MultiNodeEngine):
    """Hadoop multi-node: per-node Hive jobs, driver-side Mahout analytics."""

    name: str = "hadoop-cluster"
    capabilities: EngineCapabilities = field(
        default_factory=lambda: EngineCapabilities(
            supported_queries=frozenset({"regression", "covariance", "svd", "statistics"}),
            multi_node=True,
        )
    )

    def _load(self, dataset: GenBaseDataset) -> None:
        super()._load(dataset)
        # Each node gets its own Hive session over its patients' microarray rows.
        micro = dataset.microarray_relational()
        patient_of_row = micro[:, 1].astype(np.int64)
        self.node_hive: list[tuple[HiveSession, HiveTable, HiveTable]] = []
        genes_rel = dataset.genes_relational()
        patients_rel = dataset.patients_relational()
        for partition in self.partitions:
            mask = np.isin(patient_of_row, partition.patient_ids)
            session = HiveSession(MapReduceEngine(n_splits=2))
            micro_table = HiveTable.from_array(
                "microarray", ["gene_id", "patient_id", "expression_value"], micro[mask]
            )
            patients_table = HiveTable.from_array(
                "patients",
                ["patient_id", "age", "gender", "zipcode", "disease_id", "drug_response"],
                patients_rel[np.isin(patients_rel[:, 0].astype(np.int64), partition.patient_ids)],
            )
            self.node_hive.append((session, micro_table, patients_table))
        self.genes_table = HiveTable.from_array(
            "genes", ["gene_id", "target", "position", "length", "function"], genes_rel
        )
        self.mahout = Mahout(MapReduceEngine(n_splits=self.n_nodes))

    # -- per-node Hive data management ------------------------------------------------------------

    def _hive_join_per_node(self, patient_predicate=None, gene_threshold=None) -> list[HiveTable]:
        """Run the shared filter ⋈ microarray plan on every node's Hive session.

        The same plan builders every single-node engine consumes
        (:mod:`repro.core.queries`) are lowered per node by the MapReduce
        bridge; the pushed-down predicate runs in the join job's map phase
        against that node's partition, and the output is the shared
        ``(patient_id, gene_id, expression_value)`` triple.
        """
        def local(node_data, _node: int) -> HiveTable:
            session, micro_table, patients_table = node_data
            tables = {
                "microarray": micro_table,
                "genes": self.genes_table,
                "patients": patients_table,
            }
            if gene_threshold is not None:
                plan = gene_expression_plan(gene_threshold)
            else:
                plan = patient_expression_plan(patient_predicate)
            return run_shared_plan(plan, tables, session)

        result = self.cluster.map_partitions(self.node_hive, local)
        return list(result.outputs)

    def _gather_joined(self, tables: list[HiveTable], timer: PhaseTimer,
                       row_key: str, column_key: str) -> np.ndarray:
        """Ship every node's join output to the driver and pivot it there."""
        def work():
            gathered = self.cluster.gather(
                [table.rows for table in tables], destination=0, label="hive-gather"
            )
            return gathered.outputs

        outputs = self._timed_cluster_phase(timer.add_data_management, work)
        all_rows = [row for rows in outputs for row in rows]
        if not all_rows:
            return np.empty((0, 0)), np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        table = HiveTable("gathered", tables[0].columns, all_rows)
        return driver_pivot(table, row_key, column_key, "expression_value")

    # -- queries --------------------------------------------------------------------------------------

    def _run_regression(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        tables = self._timed_cluster_phase(
            timer.add_data_management,
            lambda: self._hive_join_per_node(gene_threshold=threshold),
        )
        matrix, patient_labels, gene_labels = self._gather_joined(
            tables, timer, "patient_id", "gene_id"
        )
        response_lookup = {
            int(pid): float(dr)
            for partition in self.partitions
            for pid, dr in zip(partition.patient_ids, partition.drug_response, strict=True)
        }
        response = np.asarray([response_lookup[int(p)] for p in patient_labels])
        with timer.analytics():
            beta = self.mahout.linear_regression(matrix, response)
            predictions = matrix @ beta[1:] + beta[0]
            total_ss = float(np.sum((response - response.mean()) ** 2))
            r_squared = 1.0 - float(np.sum((response - predictions) ** 2)) / total_ss if total_ss else 1.0
        return QueryOutput(
            query="regression",
            summary={
                "n_selected_genes": int(len(gene_labels)),
                "n_patients": int(matrix.shape[0]),
                "r_squared": float(r_squared),
            },
            payload=beta,
        )

    def _run_covariance(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        tables = self._timed_cluster_phase(
            timer.add_data_management,
            lambda: self._hive_join_per_node(
                patient_predicate=covariance_patient_predicate(parameters)
            ),
        )
        matrix, _patients, _genes = self._gather_joined(
            tables, timer, "patient_id", "gene_id"
        )
        with timer.analytics():
            cov = self.mahout.covariance(matrix)
            gene_a, _gene_b, values = top_covariant_pairs(
                cov, fraction=parameters.covariance_top_fraction
            )
        return QueryOutput(
            query="covariance",
            summary={
                "n_selected_patients": int(matrix.shape[0]),
                "n_pairs_kept": int(len(gene_a)),
                "max_covariance": float(values[0]) if len(values) else 0.0,
            },
            payload={"covariance": cov},
        )

    def _run_svd(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        tables = self._timed_cluster_phase(
            timer.add_data_management,
            lambda: self._hive_join_per_node(gene_threshold=threshold),
        )
        matrix, _patients, gene_labels = self._gather_joined(
            tables, timer, "patient_id", "gene_id"
        )
        k = max(1, min(parameters.svd_k(self.dataset.spec), matrix.shape[1])) if matrix.size else 1
        with timer.analytics():
            singular_values = self.mahout.truncated_svd(matrix, k=k, seed=parameters.seed)
        return QueryOutput(
            query="svd",
            summary={
                "n_selected_genes": int(len(gene_labels)),
                "k": int(len(singular_values)),
                "top_singular_value": float(singular_values[0]) if len(singular_values) else 0.0,
            },
            payload=singular_values,
        )

    def _run_statistics(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        tables = self._timed_cluster_phase(
            timer.add_data_management,
            lambda: self._hive_join_per_node(
                patient_predicate=statistics_patient_predicate(
                    statistics_patient_ids(self.dataset, parameters)
                )
            ),
        )
        matrix, _patients, gene_labels = self._gather_joined(
            tables, timer, "patient_id", "gene_id"
        )
        with timer.data_management():
            gene_scores = self._gene_scores(matrix) if matrix.size else np.zeros(0)
            membership = np.zeros((len(gene_labels), self.n_go_terms), dtype=np.int8)
            for position, gene_id in enumerate(gene_labels):
                membership[position] = self.go_membership[int(gene_id)]
        with timer.analytics():
            p_values = self.mahout.wilcoxon_enrichment(gene_scores, membership)
        significant = p_values < parameters.statistics_alpha
        return QueryOutput(
            query="statistics",
            summary={
                "n_sampled_patients": int(matrix.shape[0]),
                "n_terms": int(len(p_values)),
                "n_significant": int(significant.sum()),
            },
            payload=p_values,
        )
