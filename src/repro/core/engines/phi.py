"""SciDB + coprocessor configurations (paper Section 5, Figure 5, Table 1).

Two engines:

* :class:`SciDBPhiEngine` — single node.  Data management is identical to
  :class:`~repro.core.engines.scidb.SciDBEngine`; the analytics kernels of
  the covariance, SVD, statistics and biclustering queries are routed
  through the :class:`~repro.accelerator.OffloadRuntime`, which executes
  them on the host and reports a *modelled* device time (transfer +
  Amdahl-scaled compute).  Linear regression is not offloaded, matching the
  paper's note that the MKL automatic offload of that operation was not yet
  supported.
* :class:`SciDBPhiClusterEngine` — the multi-node variant used by Table 1.
  It reuses the multi-node SciDB engine and transforms the analytics phase
  of each query with the same offload model, using the per-node partition
  size for the transfer term.

Because the device time is modelled rather than measured, runs of these
engines label their analytics seconds as modelled in the runner output; the
substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accelerator import Coprocessor, OffloadRuntime
from repro.accelerator.offload import DEFAULT_OFFLOAD_FRACTIONS
from repro.core.engines.multinode import SciDBClusterEngine
from repro.core.engines.scidb import SciDBEngine
from repro.core.queries import (
    QueryOutput,
    gene_expression_plan,
    patient_expression_plan,
    sampled_expression_mean_plan,
    statistics_patient_ids,
)
from repro.core.spec import QueryParameters
from repro.core.timing import PhaseTimer
from repro.arraydb import linalg as array_linalg
from repro.linalg.biclustering import cheng_church
from repro.linalg.covariance import covariance_matrix, top_covariant_pairs
from repro.linalg.lanczos import lanczos_svd
from repro.linalg.wilcoxon import enrichment_analysis
from repro.plan import col


@dataclass
class SciDBPhiEngine(SciDBEngine):
    """Single-node SciDB with analytics offloaded to the modelled coprocessor."""

    name: str = "scidb-phi"
    runtime: OffloadRuntime = field(default_factory=OffloadRuntime)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.capabilities = type(self.capabilities)(
            supported_queries=self.capabilities.supported_queries,
            multi_node=False,
            uses_external_analytics=False,
            uses_coprocessor=True,
        )

    # -- Q2: covariance -----------------------------------------------------------------

    def _run_covariance(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        diseases = np.asarray(sorted(parameters.covariance_diseases), dtype=np.float64)
        with timer.data_management():
            result = self._run_expression_plan(
                patient_expression_plan(col("disease_id").isin(diseases))
            )
            patients = result.label("patient_id")
            dense = array_linalg.to_scalapack(result.array)
        offloaded = self.runtime.run("covariance", covariance_matrix, dense)
        timer.add_analytics(offloaded.device_total_seconds)
        cov = offloaded.value
        gene_a, gene_b, values = top_covariant_pairs(
            cov, fraction=parameters.covariance_top_fraction
        )
        return QueryOutput(
            query="covariance",
            summary={
                "n_selected_patients": int(len(patients)),
                "n_pairs_kept": int(len(gene_a)),
                "max_covariance": float(values[0]) if len(values) else 0.0,
            },
            payload={"covariance": cov, "offload": offloaded},
        )

    # -- Q3: biclustering ------------------------------------------------------------------

    def _run_biclustering(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        with timer.data_management():
            result = self._run_expression_plan(
                patient_expression_plan(
                    (col("gender") == parameters.bicluster_gender)
                    & (col("age") < parameters.bicluster_max_age)
                )
            )
            patients = result.label("patient_id")
            dense = array_linalg.to_scalapack(result.array)
        offloaded = self.runtime.run(
            "biclustering", cheng_church, dense,
            n_biclusters=parameters.n_biclusters, seed=parameters.seed,
        )
        timer.add_analytics(offloaded.device_total_seconds)
        result = offloaded.value
        shapes = [bicluster.shape for bicluster in result]
        return QueryOutput(
            query="biclustering",
            summary={
                "n_selected_patients": int(len(patients)),
                "n_biclusters": int(len(result)),
                "largest_bicluster_cells": int(max((rows * cols for rows, cols in shapes), default=0)),
            },
            payload={"result": result, "offload": offloaded},
        )

    # -- Q4: SVD ---------------------------------------------------------------------------

    def _run_svd(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            result = self._run_expression_plan(gene_expression_plan(threshold))
            genes = result.label("gene_id")
            dense = array_linalg.to_scalapack(result.array)
        k = max(1, min(parameters.svd_k(self.dataset.spec), len(genes))) if len(genes) else 1
        offloaded = self.runtime.run("svd", lanczos_svd, dense, k=k, seed=parameters.seed)
        timer.add_analytics(offloaded.device_total_seconds)
        result = offloaded.value
        return QueryOutput(
            query="svd",
            summary={
                "n_selected_genes": int(len(genes)),
                "k": int(len(result.singular_values)),
                "top_singular_value": float(result.singular_values[0]) if len(result.singular_values) else 0.0,
            },
            payload={"result": result, "offload": offloaded},
        )

    # -- Q5: statistics -----------------------------------------------------------------------

    def _run_statistics(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        sampled = statistics_patient_ids(self.dataset, parameters)
        with timer.data_management():
            _gene_labels, scores = self._run_expression_plan(
                sampled_expression_mean_plan(sampled)
            )
            gene_scores = np.nan_to_num(scores)
            membership = self.go_membership.to_dense()
        offloaded = self.runtime.run(
            "statistics", enrichment_analysis, gene_scores, membership,
            alpha=parameters.statistics_alpha,
        )
        timer.add_analytics(offloaded.device_total_seconds)
        result = offloaded.value
        return QueryOutput(
            query="statistics",
            summary={
                "n_sampled_patients": int(len(sampled)),
                "n_terms": int(len(result.go_ids)),
                "n_significant": int(result.significant.sum()),
            },
            payload={"result": result, "offload": offloaded},
        )


@dataclass
class SciDBPhiClusterEngine(SciDBClusterEngine):
    """Multi-node SciDB with per-node analytics transformed by the offload model.

    The analytics time of the underlying multi-node SciDB run is split into
    its per-node compute and network components; the compute component is
    scaled by the Amdahl model of the coprocessor (per-query offloadable
    fraction) and a per-node transfer term is added for shipping that node's
    partition of the working set over the device bus.
    """

    name: str = "scidb-phi-cluster"
    device: Coprocessor = field(default_factory=Coprocessor)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.capabilities = type(self.capabilities)(
            supported_queries=self.capabilities.supported_queries,
            multi_node=True,
            uses_external_analytics=False,
            uses_coprocessor=True,
        )

    _QUERY_KERNELS = {
        "covariance": "covariance",
        "svd": "svd",
        "statistics": "statistics",
        "biclustering": "biclustering",
        "regression": "regression",  # host-only (no offload)
    }

    def run(self, query: str, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        inner = PhaseTimer()
        output = super().run(query, parameters, inner)
        timer.add_data_management(inner.data_management_seconds)
        for key, value in inner.notes.items():
            timer.note(key, value)

        kernel = self._QUERY_KERNELS.get(query, "covariance")
        if kernel == "regression":
            # The regression offload is unsupported; host time is unchanged.
            timer.add_analytics(inner.analytics_seconds)
            return output

        fraction = DEFAULT_OFFLOAD_FRACTIONS.get(kernel, 0.9)
        spec = self.device.spec
        # Per-node working set: the filtered expression block this node holds.
        per_node_bytes = (
            self.dataset.spec.microarray_bytes / max(self.n_nodes, 1)
        )
        transfer = spec.transfer_latency_seconds + per_node_bytes / spec.transfer_bandwidth_bytes_per_second
        compute = inner.analytics_seconds
        device_compute = compute * (1 - fraction) + compute * fraction / spec.compute_speedup
        if per_node_bytes > spec.memory_bytes:
            device_compute *= spec.oversubscription_penalty
        timer.add_analytics(transfer + device_compute)
        timer.note("host_analytics_seconds", compute)
        return output
