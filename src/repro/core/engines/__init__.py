"""Engine adapter registry.

Maps the configuration names used throughout the benchmark (and in the
paper's figure legends) to the engine classes that implement them.

Single-node configurations (Figures 1 and 2):

======================  =====================================================
name                    paper legend
======================  =====================================================
``vanilla-r``           Vanilla R
``postgres-madlib``     Postgres + Madlib
``postgres-r``          Postgres + R
``columnstore-r``       Column store + R
``columnstore-udf``     Column store + UDFs
``scidb``               SciDB
``hadoop``              Hadoop
======================  =====================================================

Multi-node configurations (Figures 3 and 4) take an ``n_nodes`` argument:
``scidb-cluster``, ``hadoop-cluster``, ``columnstore-udf-cluster``,
``columnstore-pbdr``, ``pbdr``.

Coprocessor configurations (Figure 5 and Table 1): ``scidb-phi`` and
``scidb-phi-cluster``.
"""

from __future__ import annotations

from repro.core.engines.base import Engine, EngineCapabilities, UnsupportedQueryError
from repro.core.engines.rlang_engine import VanillaREngine
from repro.core.engines.postgres import PostgresMadlibEngine, PostgresREngine
from repro.core.engines.colstore_engine import ColumnStoreREngine, ColumnStoreUdfEngine
from repro.core.engines.scidb import SciDBEngine
from repro.core.engines.hadoop import HadoopEngine
from repro.core.engines.multinode import (
    ColumnStorePbdREngine,
    ColumnStoreUdfClusterEngine,
    HadoopClusterEngine,
    PbdREngine,
    SciDBClusterEngine,
)
from repro.core.engines.phi import SciDBPhiClusterEngine, SciDBPhiEngine

#: Registry of engine factories.  Multi-node engines accept ``n_nodes``.
ENGINE_FACTORIES = {
    "vanilla-r": VanillaREngine,
    "postgres-madlib": PostgresMadlibEngine,
    "postgres-r": PostgresREngine,
    "columnstore-r": ColumnStoreREngine,
    "columnstore-udf": ColumnStoreUdfEngine,
    "scidb": SciDBEngine,
    "hadoop": HadoopEngine,
    "scidb-cluster": SciDBClusterEngine,
    "hadoop-cluster": HadoopClusterEngine,
    "columnstore-udf-cluster": ColumnStoreUdfClusterEngine,
    "columnstore-pbdr": ColumnStorePbdREngine,
    "pbdr": PbdREngine,
    "scidb-phi": SciDBPhiEngine,
    "scidb-phi-cluster": SciDBPhiClusterEngine,
}

#: The seven single-node configurations of Figure 1, in legend order.
SINGLE_NODE_ENGINES = (
    "columnstore-r",
    "columnstore-udf",
    "hadoop",
    "postgres-madlib",
    "postgres-r",
    "scidb",
    "vanilla-r",
)

#: The five multi-node configurations of Figure 3, in legend order.
MULTI_NODE_ENGINES = (
    "columnstore-pbdr",
    "columnstore-udf-cluster",
    "hadoop-cluster",
    "pbdr",
    "scidb-cluster",
)


def list_engines(multi_node: bool | None = None) -> list[str]:
    """List registered engine names.

    Args:
        multi_node: None for all engines, True for only multi-node ones,
            False for only single-node ones.
    """
    if multi_node is None:
        return sorted(ENGINE_FACTORIES)
    if multi_node:
        return [name for name in sorted(ENGINE_FACTORIES)
                if ENGINE_FACTORIES[name]().capabilities.multi_node]
    return [name for name in sorted(ENGINE_FACTORIES)
            if not ENGINE_FACTORIES[name]().capabilities.multi_node]


def make_engine(name: str, **options) -> Engine:
    """Instantiate an engine by registry name.

    Args:
        name: one of the names in :data:`ENGINE_FACTORIES`.
        options: forwarded to the engine constructor (e.g. ``n_nodes=4`` for
            multi-node engines, ``max_cells=...`` for vanilla R).

    Raises:
        KeyError: for unknown engine names.
    """
    try:
        factory = ENGINE_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(ENGINE_FACTORIES))
        raise KeyError(f"unknown engine {name!r}; known engines: {known}") from None
    return factory(**options)


__all__ = [
    "Engine",
    "EngineCapabilities",
    "UnsupportedQueryError",
    "ENGINE_FACTORIES",
    "SINGLE_NODE_ENGINES",
    "MULTI_NODE_ENGINES",
    "list_engines",
    "make_engine",
    "VanillaREngine",
    "PostgresMadlibEngine",
    "PostgresREngine",
    "ColumnStoreREngine",
    "ColumnStoreUdfEngine",
    "SciDBEngine",
    "HadoopEngine",
    "SciDBClusterEngine",
    "HadoopClusterEngine",
    "ColumnStoreUdfClusterEngine",
    "ColumnStorePbdREngine",
    "PbdREngine",
    "SciDBPhiEngine",
    "SciDBPhiClusterEngine",
]
