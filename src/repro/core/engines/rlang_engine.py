"""The vanilla R configuration (paper configuration 1).

Everything happens inside the R-like environment: the four tables are data
frames in memory, data management is ``subset`` + ``merge`` (hash join) +
long-to-wide pivots, and the analytics call the BLAS-backed stats functions.
The configuration's two structural weaknesses are reproduced:

* the cell limit / memory ceiling of the environment (``max_cells``) makes
  large datasets fail to pivot, and
* there is no parallelism of any kind.

The data-management stages are the *shared* logical plans of
:mod:`repro.core.queries`, lowered onto the R verbs by
:func:`repro.rlang.bridge.run_shared_plan`: filters evaluate the shared
expression AST vectorised over the data-frame columns (one numpy mask per
conjunct — the idiomatic R ``subset``), the join is ``merge``, and the
pivot is the limit-checked ``pivot_matrix`` reshape, so the memory
ceiling bites exactly where it always did.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engines.base import Engine, EngineCapabilities
from repro.core.queries import (
    QueryOutput,
    expression_pivot_plan,
    gene_expression_plan,
    patient_expression_plan,
    statistics_patient_ids,
)
from repro.core.spec import QueryParameters
from repro.core.timing import PhaseTimer
from repro.datagen.dataset import GenBaseDataset
from repro.linalg.covariance import top_covariant_pairs
from repro.plan import col
from repro.rlang.bridge import run_shared_plan
from repro.rlang.dataframe import DataFrame, REnvironment
from repro.rlang import stats as r


@dataclass
class VanillaREngine(Engine):
    """Plain R: in-memory data frames + BLAS-backed statistics."""

    name: str = "vanilla-r"
    max_cells: int = 2**31 - 1
    max_total_bytes: int | None = None
    capabilities: EngineCapabilities = field(
        default_factory=lambda: EngineCapabilities(uses_external_analytics=False)
    )

    def _load(self, dataset: GenBaseDataset) -> None:
        self.environment = REnvironment(
            max_cells=self.max_cells, max_total_bytes=self.max_total_bytes
        )
        micro = dataset.microarray_relational()
        self.micro_df = DataFrame(
            {
                "gene_id": micro[:, 0].astype(np.int64),
                "patient_id": micro[:, 1].astype(np.int64),
                "expression_value": micro[:, 2],
            },
            environment=self.environment,
        )
        self.genes_df = DataFrame(
            {
                "gene_id": dataset.genes.gene_id,
                "target": dataset.genes.target,
                "position": dataset.genes.position,
                "length": dataset.genes.length,
                "function": dataset.genes.function,
            },
            environment=self.environment,
        )
        self.patients_df = DataFrame(
            {
                "patient_id": dataset.patients.patient_id,
                "age": dataset.patients.age,
                "gender": dataset.patients.gender,
                "zipcode": dataset.patients.zipcode,
                "disease_id": dataset.patients.disease_id,
                "drug_response": dataset.patients.drug_response,
            },
            environment=self.environment,
        )
        go = dataset.ontology_relational(include_zeros=False)
        self.go_df = DataFrame(
            {
                "gene_id": go[:, 0].astype(np.int64),
                "go_id": go[:, 1].astype(np.int64),
            },
            environment=self.environment,
        )
        self.n_go_terms = dataset.ontology.n_go_terms
        #: The logical tables the shared plans scan.
        self.frames = {
            "microarray": self.micro_df,
            "genes": self.genes_df,
            "patients": self.patients_df,
        }

    # -- shared data-management plans ------------------------------------------------

    def _expression_pivot(self, child_plan):
        """Run one shared ``… → Join → Pivot`` plan on the R frames.

        The optimizer pushes the predicate below the merge (subset before
        merge) and prunes the joined columns; every intermediate frame and
        the pivot allocation are checked against the environment limits.
        """
        return run_shared_plan(expression_pivot_plan(child_plan), self.frames)

    # -- Q1 -----------------------------------------------------------------------------

    def _run_regression(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            matrix, patient_labels, gene_labels = self._expression_pivot(
                gene_expression_plan(threshold)
            )
            response = self.patients_df["drug_response"][patient_labels.astype(np.int64)]
        with timer.analytics():
            fit = r.lm(matrix, response)
        return QueryOutput(
            query="regression",
            summary={
                "n_selected_genes": int(len(gene_labels)),
                "n_patients": int(matrix.shape[0]),
                "r_squared": float(fit.r_squared),
            },
            payload=fit,
        )

    # -- Q2 -----------------------------------------------------------------------------

    def _run_covariance(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        diseases = np.asarray(sorted(parameters.covariance_diseases))
        with timer.data_management():
            matrix, patient_labels, gene_labels = self._expression_pivot(
                patient_expression_plan(col("disease_id").isin(diseases))
            )
        with timer.analytics():
            cov = r.cov(matrix)
            gene_a, gene_b, values = top_covariant_pairs(
                cov, fraction=parameters.covariance_top_fraction
            )
        with timer.data_management():
            gene_ids_a = gene_labels[gene_a].astype(np.int64) if len(gene_a) else np.empty(0, np.int64)
            gene_ids_b = gene_labels[gene_b].astype(np.int64) if len(gene_b) else np.empty(0, np.int64)
            pair_df = DataFrame(
                {"gene_id": gene_ids_a, "partner": gene_ids_b, "covariance": values},
                environment=self.environment,
            )
            enriched_pairs = pair_df.merge(self.genes_df.select(["gene_id", "function"]), by="gene_id")
        return QueryOutput(
            query="covariance",
            summary={
                "n_selected_patients": int(matrix.shape[0]),
                "n_pairs_kept": int(len(gene_a)),
                "max_covariance": float(values[0]) if len(values) else 0.0,
            },
            payload={"covariance": cov, "pairs": (gene_ids_a, gene_ids_b, values),
                     "joined_rows": len(enriched_pairs)},
        )

    # -- Q3 -----------------------------------------------------------------------------

    def _run_biclustering(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        with timer.data_management():
            matrix, patient_labels, _gene_labels = self._expression_pivot(
                patient_expression_plan(
                    (col("gender") == parameters.bicluster_gender)
                    & (col("age") < parameters.bicluster_max_age)
                )
            )
        with timer.analytics():
            result = r.biclust(matrix, n_biclusters=parameters.n_biclusters, seed=parameters.seed)
        shapes = [bicluster.shape for bicluster in result]
        return QueryOutput(
            query="biclustering",
            summary={
                "n_selected_patients": int(matrix.shape[0]),
                "n_biclusters": int(len(result)),
                "largest_bicluster_cells": int(max((rows * cols for rows, cols in shapes), default=0)),
            },
            payload=result,
        )

    # -- Q4 -----------------------------------------------------------------------------

    def _run_svd(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            matrix, _patient_labels, gene_labels = self._expression_pivot(
                gene_expression_plan(threshold)
            )
        k = min(parameters.svd_k(self.dataset.spec), matrix.shape[1]) if matrix.shape[1] else 1
        with timer.analytics():
            result = r.svd(matrix, k=max(1, k), seed=parameters.seed)
        return QueryOutput(
            query="svd",
            summary={
                "n_selected_genes": int(len(gene_labels)),
                "k": int(len(result.singular_values)),
                "top_singular_value": float(result.singular_values[0]) if len(result.singular_values) else 0.0,
            },
            payload=result,
        )

    # -- Q5 -----------------------------------------------------------------------------

    def _run_statistics(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        sampled = statistics_patient_ids(self.dataset, parameters)
        with timer.data_management():
            matrix, _patients, gene_labels = self._expression_pivot(
                patient_expression_plan(col("patient_id").isin(sampled))
            )
            gene_scores = self._gene_scores(matrix)
            # Join the scored genes with the GO table and build the per-term
            # membership matrix (the "separate the genes based on whether
            # they belong to the GO term" step).
            membership = np.zeros((len(gene_labels), self.n_go_terms), dtype=np.int8)
            go_gene = self.go_df["gene_id"]
            go_term = self.go_df["go_id"]
            label_positions = {int(label): position for position, label in enumerate(gene_labels)}
            for gene_id, go_id in zip(go_gene.tolist(), go_term.tolist(), strict=True):
                position = label_positions.get(int(gene_id))
                if position is not None:
                    membership[position, int(go_id)] = 1
        with timer.analytics():
            result = r.enrichment(gene_scores, membership, alpha=parameters.statistics_alpha)
        return QueryOutput(
            query="statistics",
            summary={
                "n_sampled_patients": int(matrix.shape[0]),
                "n_terms": int(len(result.go_ids)),
                "n_significant": int(result.significant.sum()),
            },
            payload=result,
        )
