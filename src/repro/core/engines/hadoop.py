"""The Hadoop configuration (paper configuration 7): Hive + Mahout.

Data management compiles to MapReduce jobs through the Hive layer (so even a
filter pays a full map/shuffle/reduce round trip) and the analytics run in
the Mahout layer, whose kernels are MapReduce-structured and never touch a
tuned linear algebra library.  Biclustering is not available, as in Mahout.

This is the configuration the paper finds "good at neither data management
nor analytics"; the same gap appears here for the same structural reasons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engines.base import Engine, EngineCapabilities
from repro.core.queries import QueryOutput, statistics_patient_ids
from repro.core.spec import QueryParameters
from repro.core.timing import PhaseTimer
from repro.datagen.dataset import GenBaseDataset
from repro.linalg.covariance import top_covariant_pairs
from repro.mapreduce import HiveSession, HiveTable, Mahout, MapReduceEngine


@dataclass
class HadoopEngine(Engine):
    """Hive for data management, Mahout for analytics."""

    name: str = "hadoop"
    n_splits: int = 4
    capabilities: EngineCapabilities = field(
        default_factory=lambda: EngineCapabilities(
            supported_queries=frozenset({"regression", "covariance", "svd", "statistics"}),
        )
    )

    def _load(self, dataset: GenBaseDataset) -> None:
        self.mr_engine = MapReduceEngine(n_splits=self.n_splits)
        self.hive = HiveSession(self.mr_engine)
        self.mahout = Mahout(self.mr_engine)
        self.microarray = HiveTable.from_array(
            "microarray",
            ["gene_id", "patient_id", "expression_value"],
            dataset.microarray_relational(),
        )
        self.genes = HiveTable.from_array(
            "genes",
            ["gene_id", "target", "position", "length", "function"],
            dataset.genes_relational(),
        )
        self.patients = HiveTable.from_array(
            "patients",
            ["patient_id", "age", "gender", "zipcode", "disease_id", "drug_response"],
            dataset.patients_relational(),
        )
        go = dataset.ontology_relational(include_zeros=False)
        self.ontology = HiveTable.from_array("ontology", ["gene_id", "go_id", "belongs"], go)
        self.n_go_terms = dataset.ontology.n_go_terms

    # -- shared data-management plans -----------------------------------------------------

    @staticmethod
    def _pivot(table: HiveTable, row_key: str, column_key: str, value: str):
        """Driver-side pivot of a (long) Hive result into a dense matrix."""
        rows = np.asarray(table.column_values(row_key), dtype=np.int64)
        cols = np.asarray(table.column_values(column_key), dtype=np.int64)
        values = np.asarray(table.column_values(value), dtype=np.float64)
        row_labels, row_positions = np.unique(rows, return_inverse=True)
        column_labels, column_positions = np.unique(cols, return_inverse=True)
        matrix = np.zeros((len(row_labels), len(column_labels)))
        matrix[row_positions, column_positions] = values
        return matrix, row_labels, column_labels

    def _join_genes_by_function(self, threshold: int) -> HiveTable:
        selected = self.hive.select(self.genes, lambda row: row["function"] < threshold)
        projected = self.hive.project(selected, ["gene_id"])
        return self.hive.join(projected, self.microarray, "gene_id", "gene_id")

    def _join_patients(self, predicate) -> HiveTable:
        selected = self.hive.select(self.patients, predicate)
        projected = self.hive.project(selected, ["patient_id"])
        return self.hive.join(projected, self.microarray, "patient_id", "patient_id")

    def _drug_response_for(self, patient_labels: np.ndarray) -> np.ndarray:
        table = self.hive.project(self.patients, ["patient_id", "drug_response"])
        lookup = {int(p): v for p, v in table.rows}
        return np.asarray([lookup[int(label)] for label in patient_labels])

    def _membership_matrix(self, gene_labels: np.ndarray) -> np.ndarray:
        membership = np.zeros((len(gene_labels), self.n_go_terms), dtype=np.int8)
        positions = {int(label): i for i, label in enumerate(gene_labels)}
        for gene_id, go_id, _belongs in self.ontology.rows:
            position = positions.get(int(gene_id))
            if position is not None:
                membership[position, int(go_id)] = 1
        return membership

    # -- Q1 ------------------------------------------------------------------------------------

    def _run_regression(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            joined = self._join_genes_by_function(threshold)
            matrix, patient_labels, gene_labels = self._pivot(
                joined, "patient_id", "gene_id_right", "expression_value"
            )
            response = self._drug_response_for(patient_labels)
        with timer.analytics():
            beta = self.mahout.linear_regression(matrix, response)
            predictions = matrix @ beta[1:] + beta[0]
            residual_ss = float(np.sum((response - predictions) ** 2))
            total_ss = float(np.sum((response - response.mean()) ** 2))
            r_squared = 1.0 - residual_ss / total_ss if total_ss > 0 else 1.0
        return QueryOutput(
            query="regression",
            summary={
                "n_selected_genes": int(len(gene_labels)),
                "n_patients": int(matrix.shape[0]),
                "r_squared": float(r_squared),
            },
            payload=beta,
        )

    # -- Q2 ------------------------------------------------------------------------------------

    def _run_covariance(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        diseases = set(int(d) for d in parameters.covariance_diseases)
        with timer.data_management():
            joined = self._join_patients(lambda row: int(row["disease_id"]) in diseases)
            matrix, patient_labels, gene_labels = self._pivot(
                joined, "patient_id_right", "gene_id", "expression_value"
            )
        with timer.analytics():
            cov = self.mahout.covariance(matrix)
            gene_a, gene_b, values = top_covariant_pairs(
                cov, fraction=parameters.covariance_top_fraction
            )
        with timer.data_management():
            pairs_table = HiveTable(
                "pairs",
                ("gene_id", "covariance"),
                [(int(gene_labels[a]), float(v)) for a, v in zip(gene_a, values)],
            )
            joined_meta = self.hive.join(pairs_table, self.genes, "gene_id", "gene_id") if len(pairs_table) else pairs_table
        return QueryOutput(
            query="covariance",
            summary={
                "n_selected_patients": int(matrix.shape[0]),
                "n_pairs_kept": int(len(gene_a)),
                "max_covariance": float(values[0]) if len(values) else 0.0,
            },
            payload={"covariance": cov, "joined_rows": len(joined_meta)},
        )

    # -- Q3 (unsupported) -------------------------------------------------------------------------

    # Mahout has no biclustering; the capability set above excludes the query
    # and the base class raises UnsupportedQueryError before dispatch.

    # -- Q4 ------------------------------------------------------------------------------------

    def _run_svd(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            joined = self._join_genes_by_function(threshold)
            matrix, _patients, gene_labels = self._pivot(
                joined, "patient_id", "gene_id_right", "expression_value"
            )
        k = max(1, min(parameters.svd_k(self.dataset.spec), matrix.shape[1]))
        with timer.analytics():
            singular_values = self.mahout.truncated_svd(matrix, k=k, seed=parameters.seed)
        return QueryOutput(
            query="svd",
            summary={
                "n_selected_genes": int(len(gene_labels)),
                "k": int(len(singular_values)),
                "top_singular_value": float(singular_values[0]) if len(singular_values) else 0.0,
            },
            payload=singular_values,
        )

    # -- Q5 ------------------------------------------------------------------------------------

    def _run_statistics(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        sampled = set(int(p) for p in statistics_patient_ids(self.dataset, parameters))
        with timer.data_management():
            joined = self._join_patients(lambda row: int(row["patient_id"]) in sampled)
            matrix, _patients, gene_labels = self._pivot(
                joined, "patient_id_right", "gene_id", "expression_value"
            )
            gene_scores = self._gene_scores(matrix)
            membership = self._membership_matrix(gene_labels)
        with timer.analytics():
            p_values = self.mahout.wilcoxon_enrichment(gene_scores, membership)
        significant = p_values < parameters.statistics_alpha
        return QueryOutput(
            query="statistics",
            summary={
                "n_sampled_patients": int(matrix.shape[0]),
                "n_terms": int(len(p_values)),
                "n_significant": int(significant.sum()),
            },
            payload=p_values,
        )
