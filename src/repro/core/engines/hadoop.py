"""The Hadoop configuration (paper configuration 7): Hive + Mahout.

Data management compiles to MapReduce jobs through the Hive layer and the
analytics run in the Mahout layer, whose kernels are MapReduce-structured
and never touch a tuned linear algebra library.  Biclustering is not
available, as in Mahout.

The data-management stages are the *shared* logical plans of
:mod:`repro.core.queries`, lowered onto MapReduce jobs by
:func:`repro.mapreduce.bridge.run_shared_plan`: the declarative filter is
fused into the map phase of the join job (filter-before-shuffle), so one
job replaces the legacy select → project → join chain and dropped rows
never cross the serialisation boundary.  Even so, every surviving byte
still pays the map/spill/shuffle/reduce round trip — this remains the
configuration the paper finds "good at neither data management nor
analytics", for the same structural reasons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engines.base import Engine, EngineCapabilities
from repro.core.queries import (
    QueryOutput,
    expression_pivot_plan,
    gene_expression_plan,
    patient_expression_plan,
    statistics_patient_ids,
)
from repro.core.spec import QueryParameters
from repro.core.timing import PhaseTimer
from repro.datagen.dataset import GenBaseDataset
from repro.linalg.covariance import top_covariant_pairs
from repro.mapreduce import HiveSession, HiveTable, Mahout, MapReduceEngine
from repro.mapreduce.bridge import run_shared_plan
from repro.plan import col


@dataclass
class HadoopEngine(Engine):
    """Hive for data management, Mahout for analytics."""

    name: str = "hadoop"
    n_splits: int = 4
    capabilities: EngineCapabilities = field(
        default_factory=lambda: EngineCapabilities(
            supported_queries=frozenset({"regression", "covariance", "svd", "statistics"}),
        )
    )

    def _load(self, dataset: GenBaseDataset) -> None:
        self.mr_engine = MapReduceEngine(n_splits=self.n_splits)
        self.hive = HiveSession(self.mr_engine)
        self.mahout = Mahout(self.mr_engine)
        self.microarray = HiveTable.from_array(
            "microarray",
            ["gene_id", "patient_id", "expression_value"],
            dataset.microarray_relational(),
        )
        self.genes = HiveTable.from_array(
            "genes",
            ["gene_id", "target", "position", "length", "function"],
            dataset.genes_relational(),
        )
        self.patients = HiveTable.from_array(
            "patients",
            ["patient_id", "age", "gender", "zipcode", "disease_id", "drug_response"],
            dataset.patients_relational(),
        )
        go = dataset.ontology_relational(include_zeros=False)
        self.ontology = HiveTable.from_array("ontology", ["gene_id", "go_id", "belongs"], go)
        self.n_go_terms = dataset.ontology.n_go_terms
        #: The logical tables the shared plans scan.
        self.tables = {
            "microarray": self.microarray,
            "genes": self.genes,
            "patients": self.patients,
            "ontology": self.ontology,
        }

    # -- shared data-management plans -----------------------------------------------------

    def _expression_pivot(self, child_plan):
        """Run one shared ``… → Join → Pivot`` plan as MapReduce jobs.

        The optimizer pushes the dimension-side predicate below the join
        and prunes the columns; the bridge fuses both into the join job's
        map phase, then pivots the long output driver-side.
        """
        return run_shared_plan(
            expression_pivot_plan(child_plan), self.tables, self.hive
        )

    def _drug_response_for(self, patient_labels: np.ndarray) -> np.ndarray:
        table = self.hive.project(self.patients, ["patient_id", "drug_response"])
        lookup = {int(p): v for p, v in table.rows}
        return np.asarray([lookup[int(label)] for label in patient_labels])

    def _membership_matrix(self, gene_labels: np.ndarray) -> np.ndarray:
        membership = np.zeros((len(gene_labels), self.n_go_terms), dtype=np.int8)
        positions = {int(label): i for i, label in enumerate(gene_labels)}
        for gene_id, go_id, _belongs in self.ontology.rows:
            position = positions.get(int(gene_id))
            if position is not None:
                membership[position, int(go_id)] = 1
        return membership

    # -- Q1 ------------------------------------------------------------------------------------

    def _run_regression(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            matrix, patient_labels, gene_labels = self._expression_pivot(
                gene_expression_plan(threshold)
            )
            response = self._drug_response_for(patient_labels)
        with timer.analytics():
            beta = self.mahout.linear_regression(matrix, response)
            predictions = matrix @ beta[1:] + beta[0]
            residual_ss = float(np.sum((response - predictions) ** 2))
            total_ss = float(np.sum((response - response.mean()) ** 2))
            r_squared = 1.0 - residual_ss / total_ss if total_ss > 0 else 1.0
        return QueryOutput(
            query="regression",
            summary={
                "n_selected_genes": int(len(gene_labels)),
                "n_patients": int(matrix.shape[0]),
                "r_squared": float(r_squared),
            },
            payload=beta,
        )

    # -- Q2 ------------------------------------------------------------------------------------

    def _run_covariance(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        diseases = [int(d) for d in sorted(parameters.covariance_diseases)]
        with timer.data_management():
            matrix, _patients, gene_labels = self._expression_pivot(
                patient_expression_plan(col("disease_id").isin(diseases))
            )
        with timer.analytics():
            cov = self.mahout.covariance(matrix)
            gene_a, gene_b, values = top_covariant_pairs(
                cov, fraction=parameters.covariance_top_fraction
            )
        with timer.data_management():
            pairs_table = HiveTable(
                "pairs",
                ("gene_id", "covariance"),
                [(int(gene_labels[a]), float(v)) for a, v in zip(gene_a, values, strict=True)],
            )
            joined_meta = self.hive.join(pairs_table, self.genes, "gene_id", "gene_id") if len(pairs_table) else pairs_table
        return QueryOutput(
            query="covariance",
            summary={
                "n_selected_patients": int(matrix.shape[0]),
                "n_pairs_kept": int(len(gene_a)),
                "max_covariance": float(values[0]) if len(values) else 0.0,
            },
            payload={"covariance": cov, "joined_rows": len(joined_meta)},
        )

    # -- Q3 (unsupported) -------------------------------------------------------------------------

    # Mahout has no biclustering; the capability set above excludes the query
    # and the base class raises UnsupportedQueryError before dispatch.

    # -- Q4 ------------------------------------------------------------------------------------

    def _run_svd(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            matrix, _patients, gene_labels = self._expression_pivot(
                gene_expression_plan(threshold)
            )
        k = max(1, min(parameters.svd_k(self.dataset.spec), matrix.shape[1]))
        with timer.analytics():
            singular_values = self.mahout.truncated_svd(matrix, k=k, seed=parameters.seed)
        return QueryOutput(
            query="svd",
            summary={
                "n_selected_genes": int(len(gene_labels)),
                "k": int(len(singular_values)),
                "top_singular_value": float(singular_values[0]) if len(singular_values) else 0.0,
            },
            payload=singular_values,
        )

    # -- Q5 ------------------------------------------------------------------------------------

    def _run_statistics(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        sampled = [int(p) for p in statistics_patient_ids(self.dataset, parameters)]
        with timer.data_management():
            matrix, _patients, gene_labels = self._expression_pivot(
                patient_expression_plan(col("patient_id").isin(sampled))
            )
            gene_scores = self._gene_scores(matrix)
            membership = self._membership_matrix(gene_labels)
        with timer.analytics():
            p_values = self.mahout.wilcoxon_enrichment(gene_scores, membership)
        significant = p_values < parameters.statistics_alpha
        return QueryOutput(
            query="statistics",
            summary={
                "n_sampled_patients": int(matrix.shape[0]),
                "n_terms": int(len(p_values)),
                "n_significant": int(significant.sum()),
            },
            payload=p_values,
        )
