"""The column-store configurations (paper configurations 4 and 5).

Both engines run data management in the compressed, vectorised column store;
they differ in where the analytics run:

* :class:`ColumnStoreREngine` — exports the query result as CSV to the
  external R environment (copy/reformat cost charged to data management),
  then runs R's BLAS-backed analytics; this is the paper's
  "column store + R".
* :class:`ColumnStoreUdfEngine` — runs the same R functions *inside* the
  database through the UDF host, paying per-call marshalling instead of a
  CSV round trip; this is the paper's "column store + UDFs".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.colstore import ColumnStore
from repro.colstore.planner import run_plan
from repro.colstore.udf import UdfHost
from repro.core.engines.base import Engine, EngineCapabilities
from repro.core.queries import (
    QueryOutput,
    bicluster_patient_predicate,
    covariance_patient_predicate,
    expression_pivot_plan,
    gene_expression_plan,
    patient_expression_plan,
    sampled_expression_filter_plan,
    statistics_patient_ids,
)
from repro.core.spec import QueryParameters
from repro.core.timing import PhaseTimer
from repro.datagen.dataset import GenBaseDataset
from repro.linalg.covariance import top_covariant_pairs
from repro.rlang import stats as r
from repro.rlang.dataframe import DataFrame
from repro.rlang.io import dataframe_from_csv_string, dataframe_to_csv_string


class _ColumnStoreDataManagement(Engine):
    """Shared column-store loading and data-management plans."""

    def _load(self, dataset: GenBaseDataset) -> None:
        self.store = ColumnStore("genbase")
        micro = dataset.microarray_relational()
        self.store.create_table(
            "microarray",
            {
                "gene_id": micro[:, 0].astype(np.int64),
                "patient_id": micro[:, 1].astype(np.int64),
                "expression_value": micro[:, 2],
            },
        )
        self.store.create_table(
            "genes",
            {
                "gene_id": dataset.genes.gene_id,
                "target": dataset.genes.target,
                "position": dataset.genes.position,
                "length": dataset.genes.length,
                "function": dataset.genes.function,
            },
        )
        self.store.create_table(
            "patients",
            {
                "patient_id": dataset.patients.patient_id,
                "age": dataset.patients.age,
                "gender": dataset.patients.gender,
                "zipcode": dataset.patients.zipcode,
                "disease_id": dataset.patients.disease_id,
                "drug_response": dataset.patients.drug_response,
            },
        )
        go = dataset.ontology_relational(include_zeros=False)
        self.store.create_table(
            "ontology",
            {"gene_id": go[:, 0].astype(np.int64), "go_id": go[:, 1].astype(np.int64)},
        )
        self.n_go_terms = dataset.ontology.n_go_terms

    # -- reusable vectorised plans --------------------------------------------------------

    def _run_pivot_plan(self, child_plan):
        """Execute one fused ``… → Join → Pivot`` plan on the store.

        The whole data-management stage is a single logical plan from
        :mod:`repro.core.queries`; the optimizer pushes the dimension-side
        predicate below the join, prunes every column the pivot does not
        reference, and picks the join build side from the encodings'
        statistics before :func:`repro.colstore.planner.run_plan` executes
        it compressed.
        """
        return run_plan(expression_pivot_plan(child_plan), self.store)

    def _drug_response_for(self, patient_labels: np.ndarray) -> np.ndarray:
        """Align drug responses with ``patient_labels`` via sorted binary search."""
        patients = self.store.query("patients")
        ids = patients.column("patient_id")
        response = patients.column("drug_response")
        labels = np.asarray(patient_labels, dtype=np.int64)
        order = np.argsort(ids, kind="stable")
        positions = np.searchsorted(ids, labels, sorter=order)
        if positions.size:
            in_range = positions < len(ids)
            matched = in_range.copy()
            matched[in_range] = ids[order[positions[in_range]]] == labels[in_range]
            if not matched.all():
                raise KeyError(int(labels[~matched][0]))
        return response[order[positions]]

    def _membership_matrix(self, gene_labels: np.ndarray) -> np.ndarray:
        """GO-membership matrix built by a fancy-index scatter (no row loop)."""
        labels = np.asarray(gene_labels, dtype=np.int64)
        membership = np.zeros((len(labels), self.n_go_terms), dtype=np.int8)
        ontology = self.store.query("ontology")
        gene_ids = ontology.column("gene_id")
        go_ids = ontology.column("go_id")
        if not len(labels) or not len(gene_ids):
            return membership
        order = np.argsort(labels, kind="stable")
        positions = np.searchsorted(labels, gene_ids, sorter=order)
        in_range = positions < len(labels)
        matched = in_range.copy()
        matched[in_range] = labels[order[positions[in_range]]] == gene_ids[in_range]
        membership[order[positions[matched]], go_ids[matched]] = 1
        return membership

    # -- the common per-query data-management stage ------------------------------------------

    def _pivot_regression(self, parameters: QueryParameters):
        """Q1 data management as one fused plan: genes ⋈ microarray → pivot."""
        threshold = parameters.function_threshold(self.dataset.spec)
        matrix, patient_labels, gene_labels = self._run_pivot_plan(
            gene_expression_plan(threshold)
        )
        response = self._drug_response_for(patient_labels)
        return matrix, patient_labels, gene_labels, response


class _ColumnStoreQueryMixin(_ColumnStoreDataManagement):
    """The five queries, parameterised over how the analytics are invoked.

    Subclasses provide ``_analytics_*`` hooks; the data-management shape is
    identical for both column-store configurations.
    """

    # Analytics hooks -----------------------------------------------------------------

    def _analytics_regression(self, matrix, response, timer):
        raise NotImplementedError

    def _analytics_covariance(self, matrix, timer):
        raise NotImplementedError

    def _analytics_biclustering(self, matrix, parameters, timer):
        raise NotImplementedError

    def _analytics_svd(self, matrix, k, parameters, timer):
        raise NotImplementedError

    def _analytics_statistics(self, gene_scores, membership, parameters, timer):
        raise NotImplementedError

    # Queries --------------------------------------------------------------------------

    def _run_regression(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        with timer.data_management():
            matrix, patient_labels, gene_labels, response = self._pivot_regression(parameters)
        fit = self._analytics_regression(matrix, response, timer)
        return QueryOutput(
            query="regression",
            summary={
                "n_selected_genes": int(len(gene_labels)),
                "n_patients": int(matrix.shape[0]),
                "r_squared": float(fit.r_squared),
            },
            payload=fit,
        )

    def _run_covariance(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        with timer.data_management():
            # One fused plan: patients(disease ∈ …) ⋈ microarray → pivot.
            # The disease predicate runs below the join on the patients side
            # and only the join key crosses it (see the Q2 plan snapshot).
            matrix, _patients, gene_labels = self._run_pivot_plan(
                patient_expression_plan(covariance_patient_predicate(parameters))
            )
        cov = self._analytics_covariance(matrix, timer)
        with timer.analytics():
            gene_a, gene_b, values = top_covariant_pairs(
                cov, fraction=parameters.covariance_top_fraction
            )
        with timer.data_management():
            functions = self.store.query("genes").column("function")
            gene_labels = np.asarray(gene_labels, dtype=np.int64)
            joined_rows = int(len(gene_a)) if len(gene_a) else 0
            _pair_functions = functions[gene_labels[gene_a]] if joined_rows else np.empty(0)
        return QueryOutput(
            query="covariance",
            summary={
                "n_selected_patients": int(matrix.shape[0]),
                "n_pairs_kept": int(len(gene_a)),
                "max_covariance": float(values[0]) if len(values) else 0.0,
            },
            payload={"covariance": cov},
        )

    def _run_biclustering(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        with timer.data_management():
            # One declarative conjunction inside one fused plan: the
            # optimizer splits it, pushes both halves below the join onto
            # the patients side and runs the more selective half first.
            matrix, _patients, _genes = self._run_pivot_plan(
                patient_expression_plan(bicluster_patient_predicate(parameters))
            )
        result = self._analytics_biclustering(matrix, parameters, timer)
        shapes = [bicluster.shape for bicluster in result]
        return QueryOutput(
            query="biclustering",
            summary={
                "n_selected_patients": int(matrix.shape[0]),
                "n_biclusters": int(len(result)),
                "largest_bicluster_cells": int(max((rows * cols for rows, cols in shapes), default=0)),
            },
            payload=result,
        )

    def _run_svd(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        threshold = parameters.function_threshold(self.dataset.spec)
        with timer.data_management():
            matrix, _patients, gene_labels = self._run_pivot_plan(
                gene_expression_plan(threshold)
            )
        k = max(1, min(parameters.svd_k(self.dataset.spec), matrix.shape[1]))
        result = self._analytics_svd(matrix, k, parameters, timer)
        singular_values = np.asarray(
            result.singular_values if hasattr(result, "singular_values") else result
        )
        return QueryOutput(
            query="svd",
            summary={
                "n_selected_genes": int(len(gene_labels)),
                "k": int(len(singular_values)),
                "top_singular_value": float(singular_values[0]) if len(singular_values) else 0.0,
            },
            payload=result,
        )

    def _run_statistics(self, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        sampled = statistics_patient_ids(self.dataset, parameters)
        with timer.data_management():
            # The statistics query needs no pivot matrix at all: the shared
            # plan selects the sampled patients' rows once (membership
            # pushdown), then the per-gene score (mean expression) is a
            # compressed group-aggregate whose keys are the sorted distinct
            # gene ids the pivot's column labels used to provide, and the
            # sampled-patient count is a distinct count on the same cached
            # selection.
            sampled_rows = run_plan(
                sampled_expression_filter_plan(sampled), self.store
            )
            gene_labels, gene_scores = sampled_rows.group_aggregate(
                "gene_id", "expression_value", "mean"
            )
            patient_labels = sampled_rows.distinct("patient_id")
            membership = self._membership_matrix(np.asarray(gene_labels, dtype=np.int64))
        result = self._analytics_statistics(gene_scores, membership, parameters, timer)
        return QueryOutput(
            query="statistics",
            summary={
                "n_sampled_patients": int(len(patient_labels)),
                "n_terms": int(len(result.go_ids)),
                "n_significant": int(result.significant.sum()),
            },
            payload=result,
        )


@dataclass
class ColumnStoreREngine(_ColumnStoreQueryMixin):
    """Column store for data management, external R (CSV hand-off) for analytics."""

    name: str = "columnstore-r"
    capabilities: EngineCapabilities = field(
        default_factory=lambda: EngineCapabilities(uses_external_analytics=True)
    )

    def _ship_matrix_to_r(self, matrix: np.ndarray, timer: PhaseTimer) -> np.ndarray:
        """Serialise a matrix through CSV into the R environment (DM cost)."""
        with timer.data_management():
            frame = DataFrame({f"c{i}": matrix[:, i] for i in range(matrix.shape[1])}) if matrix.size else DataFrame({"c0": np.empty(0)})
            payload = dataframe_to_csv_string(frame)
            timer.note("export_bytes", float(len(payload)))
            parsed = dataframe_from_csv_string(payload)
            shipped = parsed.as_matrix() if matrix.size else matrix
        return shipped

    def _analytics_regression(self, matrix, response, timer):
        shipped = self._ship_matrix_to_r(np.column_stack([matrix, response]), timer)
        with timer.analytics():
            return r.lm(shipped[:, :-1], shipped[:, -1])

    def _analytics_covariance(self, matrix, timer):
        shipped = self._ship_matrix_to_r(matrix, timer)
        with timer.analytics():
            return r.cov(shipped)

    def _analytics_biclustering(self, matrix, parameters, timer):
        shipped = self._ship_matrix_to_r(matrix, timer)
        with timer.analytics():
            return r.biclust(shipped, n_biclusters=parameters.n_biclusters, seed=parameters.seed)

    def _analytics_svd(self, matrix, k, parameters, timer):
        shipped = self._ship_matrix_to_r(matrix, timer)
        with timer.analytics():
            return r.svd(shipped, k=k, seed=parameters.seed)

    def _analytics_statistics(self, gene_scores, membership, parameters, timer):
        shipped = self._ship_matrix_to_r(
            np.column_stack([gene_scores, membership.astype(np.float64)]), timer
        )
        with timer.analytics():
            return r.enrichment(shipped[:, 0], shipped[:, 1:], alpha=parameters.statistics_alpha)


@dataclass
class ColumnStoreUdfEngine(_ColumnStoreQueryMixin):
    """Column store with in-database R UDFs (argument marshalling, no CSV)."""

    name: str = "columnstore-udf"
    capabilities: EngineCapabilities = field(default_factory=EngineCapabilities)
    udf_host: UdfHost = field(default_factory=UdfHost)

    def __post_init__(self) -> None:
        super().__post_init__()
        # The in-DB registry covers regression/covariance/enrichment; SVD and
        # biclustering are registered here as additional R UDFs.
        if "svd" not in self.udf_host.registry:
            self.udf_host.register(
                "svd",
                lambda matrix, k, seed: r.svd(matrix, k=k, seed=seed),
                description="R svd() via in-DB UDF",
            )
        if "biclustering" not in self.udf_host.registry:
            self.udf_host.register(
                "biclustering",
                lambda matrix, n, seed: r.biclust(matrix, n_biclusters=n, seed=seed),
                description="R biclust() via in-DB UDF",
            )

    def _analytics_regression(self, matrix, response, timer):
        with timer.analytics():
            return self.udf_host.call("linear_regression", matrix, response)

    def _analytics_covariance(self, matrix, timer):
        with timer.analytics():
            return self.udf_host.call("covariance", matrix)

    def _analytics_biclustering(self, matrix, parameters, timer):
        with timer.analytics():
            return self.udf_host.call(
                "biclustering", matrix, parameters.n_biclusters, parameters.seed
            )

    def _analytics_svd(self, matrix, k, parameters, timer):
        with timer.analytics():
            return self.udf_host.call("svd", matrix, k, parameters.seed)

    def _analytics_statistics(self, gene_scores, membership, parameters, timer):
        with timer.analytics():
            return self.udf_host.call("enrichment", gene_scores, membership)
