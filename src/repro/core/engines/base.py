"""Base classes shared by every benchmark engine adapter.

An *engine* is one of the configurations the paper evaluates (vanilla R,
Postgres + Madlib, SciDB, ...).  Every engine implements the same contract:

* ``load(dataset)`` — ingest the four GenBase tables into the engine's own
  storage (not timed; the paper pre-loads data too),
* ``run(query, parameters, timer)`` — execute one query, charging its data
  management and analytics work to the :class:`~repro.core.timing.PhaseTimer`
  and returning a :class:`~repro.core.queries.QueryOutput`,
* ``capabilities`` — which queries the configuration can run at all
  (e.g. Hadoop/Mahout has no biclustering).

Engines raise :class:`UnsupportedQueryError` for queries they cannot run and
let ``MemoryError`` (including the R environment's
:class:`~repro.rlang.dataframe.RMemoryError`) propagate — the runner maps
both onto the paper's "infinite result" convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.queries import QueryOutput
from repro.core.spec import QUERY_NAMES, QueryParameters, validate_query_name
from repro.core.timing import PhaseTimer
from repro.datagen.dataset import GenBaseDataset


class UnsupportedQueryError(RuntimeError):
    """The engine configuration has no implementation for this query."""


@dataclass(frozen=True)
class EngineCapabilities:
    """What an engine can do, used by the runner and the reports."""

    supported_queries: frozenset[str] = frozenset(QUERY_NAMES)
    multi_node: bool = False
    uses_external_analytics: bool = False
    uses_coprocessor: bool = False

    def supports(self, query: str) -> bool:
        return validate_query_name(query) in self.supported_queries


@dataclass
class Engine:
    """Base engine adapter.

    Attributes:
        name: registry name of the configuration.
        capabilities: see :class:`EngineCapabilities`.
    """

    name: str = "engine"
    capabilities: EngineCapabilities = field(default_factory=EngineCapabilities)

    def __post_init__(self) -> None:
        self.dataset: GenBaseDataset | None = None

    # -- lifecycle ----------------------------------------------------------------

    def load(self, dataset: GenBaseDataset) -> None:
        """Ingest the dataset into the engine's storage (not timed)."""
        self.dataset = dataset
        self._load(dataset)

    def _load(self, dataset: GenBaseDataset) -> None:
        raise NotImplementedError

    # -- execution -----------------------------------------------------------------

    def run(self, query: str, parameters: QueryParameters, timer: PhaseTimer) -> QueryOutput:
        """Run one query; dispatches to ``_run_<query>``."""
        if self.dataset is None:
            raise RuntimeError(f"engine {self.name!r} has no dataset loaded")
        query = validate_query_name(query)
        if not self.capabilities.supports(query):
            raise UnsupportedQueryError(
                f"engine {self.name!r} does not support the {query!r} query"
            )
        method = getattr(self, f"_run_{query}", None)
        if method is None:
            raise UnsupportedQueryError(
                f"engine {self.name!r} has no implementation for {query!r}"
            )
        return method(parameters, timer)

    # -- helpers shared by several adapters -------------------------------------------

    @staticmethod
    def _gene_scores(sample_matrix: np.ndarray) -> np.ndarray:
        """Per-gene score used by the statistics query: mean over the sampled patients."""
        return np.asarray(sample_matrix, dtype=np.float64).mean(axis=0)
