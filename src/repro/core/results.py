"""Result tables and figure/table regeneration helpers.

The ``benchmarks/`` harness uses these helpers to print, for every figure
and table in the paper, the same rows/series the paper reports:

* :class:`ResultTable` — a collection of :class:`~repro.core.runner.QueryResult`
  records with grouping/pivoting helpers and an ASCII renderer,
* :func:`figure_series` — the "time vs dataset size (or node count) per
  system" series behind Figures 1, 3 and 5,
* :func:`breakdown_series` — the data-management / analytics split behind
  Figures 2 and 4,
* :func:`speedup_table` — the Phi-vs-Xeon analytics speedups of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.runner import QueryResult, RunStatus


@dataclass
class ResultTable:
    """A collection of benchmark results with reporting helpers."""

    results: list[QueryResult] = field(default_factory=list)

    def add(self, result: QueryResult) -> None:
        self.results.append(result)

    def extend(self, results: Iterable[QueryResult]) -> None:
        self.results.extend(results)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    # -- selection ----------------------------------------------------------------------

    def filter(self, query: str | None = None, engine: str | None = None,
               dataset_size: str | None = None, n_nodes: int | None = None) -> "ResultTable":
        """Return a sub-table matching the given criteria."""
        selected = [
            result for result in self.results
            if (query is None or result.query == query)
            and (engine is None or result.engine == engine)
            and (dataset_size is None or result.dataset_size == dataset_size)
            and (n_nodes is None or result.n_nodes == n_nodes)
        ]
        return ResultTable(selected)

    def engines(self) -> list[str]:
        return sorted({result.engine for result in self.results})

    def sizes(self) -> list[str]:
        seen: list[str] = []
        for result in self.results:
            if result.dataset_size not in seen:
                seen.append(result.dataset_size)
        return seen

    def node_counts(self) -> list[int]:
        return sorted({result.n_nodes for result in self.results})

    # -- rendering -----------------------------------------------------------------------

    def to_rows(self) -> list[dict]:
        return [result.as_dict() for result in self.results]

    def render(self, columns: Sequence[str] | None = None) -> str:
        """Render as a fixed-width ASCII table."""
        rows = self.to_rows()
        if not rows:
            return "(no results)"
        columns = list(columns) if columns else list(rows[0].keys())
        widths = {
            column: max(len(column), *(len(str(row.get(column, ""))) for row in rows))
            for column in columns
        }
        header = "  ".join(column.ljust(widths[column]) for column in columns)
        separator = "  ".join("-" * widths[column] for column in columns)
        lines = [header, separator]
        for row in rows:
            lines.append(
                "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
            )
        return "\n".join(lines)


def _value_or_ceiling(result: QueryResult | None, ceiling: float) -> float | None:
    if result is None:
        return None
    return result.plot_value(ceiling)


def figure_series(
    table: ResultTable,
    query: str,
    x_axis: str = "dataset_size",
    ceiling: float | None = None,
) -> dict[str, list[tuple[object, float | None]]]:
    """Build "time vs x per engine" series for one query (Figures 1, 3, 5).

    Args:
        table: the results to plot.
        query: the query to select.
        x_axis: ``"dataset_size"`` or ``"n_nodes"``.
        ceiling: value used for infinite (timeout / memory) results; defaults
            to 1.2× the largest finite time in the selection.

    Returns:
        Mapping of engine → list of ``(x, seconds-or-None)`` points, where
        ``None`` marks configurations that do not support the query.
    """
    selected = table.filter(query=query)
    if ceiling is None:
        finite = [r.total_seconds for r in selected if not r.status.is_infinite]
        ceiling = 1.2 * max(finite, default=1.0)
    if x_axis == "dataset_size":
        x_values = selected.sizes()
    elif x_axis == "n_nodes":
        x_values = selected.node_counts()
    else:
        raise ValueError("x_axis must be 'dataset_size' or 'n_nodes'")

    series: dict[str, list[tuple[object, float | None]]] = {}
    for engine in selected.engines():
        points = []
        for x in x_values:
            criteria = {"dataset_size": x} if x_axis == "dataset_size" else {"n_nodes": x}
            matches = selected.filter(engine=engine, **criteria).results
            match = matches[0] if matches else None
            if match is not None and match.status is RunStatus.UNSUPPORTED:
                points.append((x, None))
            else:
                points.append((x, _value_or_ceiling(match, ceiling)))
        series[engine] = points
    return series


def breakdown_series(
    table: ResultTable,
    query: str,
    x_axis: str = "dataset_size",
) -> dict[str, dict[str, list[tuple[object, float]]]]:
    """Data-management vs analytics series for one query (Figures 2 and 4)."""
    selected = table.filter(query=query)
    x_values = selected.sizes() if x_axis == "dataset_size" else selected.node_counts()
    result: dict[str, dict[str, list[tuple[object, float]]]] = {}
    for engine in selected.engines():
        dm_points: list[tuple[object, float]] = []
        an_points: list[tuple[object, float]] = []
        for x in x_values:
            criteria = {"dataset_size": x} if x_axis == "dataset_size" else {"n_nodes": x}
            matches = selected.filter(engine=engine, **criteria).results
            if not matches:
                continue
            match = matches[0]
            dm_points.append((x, match.data_management_seconds))
            an_points.append((x, match.analytics_seconds))
        result[engine] = {"data_management": dm_points, "analytics": an_points}
    return result


def speedup_table(
    baseline: ResultTable,
    accelerated: ResultTable,
    queries: Sequence[str] = ("covariance", "svd", "statistics", "biclustering"),
    phase: str = "analytics",
) -> dict[str, dict[int, float]]:
    """Compute the Table 1 style speedups of the accelerated configuration.

    Args:
        baseline: results from the Xeon (non-accelerated) configuration.
        accelerated: results from the coprocessor configuration.
        queries: queries to report (Table 1 rows).
        phase: ``"analytics"`` (the paper's Table 1) or ``"total"``.

    Returns:
        Mapping query → {n_nodes → speedup}; missing pairs are omitted.
    """
    speedups: dict[str, dict[int, float]] = {}
    for query in queries:
        per_nodes: dict[int, float] = {}
        for n_nodes in sorted({r.n_nodes for r in baseline.filter(query=query)}):
            base = baseline.filter(query=query, n_nodes=n_nodes).results
            fast = accelerated.filter(query=query, n_nodes=n_nodes).results
            if not base or not fast:
                continue
            if base[0].status.is_infinite or fast[0].status.is_infinite:
                continue
            if phase == "analytics":
                base_value = base[0].analytics_seconds
                fast_value = fast[0].analytics_seconds
            else:
                base_value = base[0].total_seconds
                fast_value = fast[0].total_seconds
            if fast_value <= 0:
                continue
            per_nodes[n_nodes] = base_value / fast_value
        if per_nodes:
            speedups[query] = per_nodes
    return speedups


def render_speedup_table(speedups: dict[str, dict[int, float]]) -> str:
    """Render a Table-1-shaped ASCII table from :func:`speedup_table` output."""
    node_counts = sorted({n for per in speedups.values() for n in per})
    header = ["Benchmark"] + [f"{n} node{'s' if n > 1 else ''}" for n in node_counts]
    widths = [max(len(header[0]), *(len(q) for q in speedups))] + [
        max(len(h), 6) for h in header[1:]
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths, strict=True)),
        "  ".join("-" * w for w in widths),
    ]
    for query, per_nodes in speedups.items():
        row = [query.ljust(widths[0])]
        for n, width in zip(node_counts, widths[1:], strict=True):
            value = per_nodes.get(n)
            row.append((f"{value:.2f}" if value is not None else "-").ljust(width))
        lines.append("  ".join(row))
    return "\n".join(lines)
