"""The column-store catalog."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.colstore.delta import DeltaStore, Snapshot
from repro.colstore.query import ColumnQuery
from repro.colstore.table import ColumnTable


class ColumnStore:
    """A single-node column-store database: a catalog of column tables.

    Tables load sealed (compressed, read-optimised); the first write
    through :meth:`append` / :meth:`delete` / :meth:`update` attaches a
    :class:`~repro.colstore.delta.DeltaStore` — the writable tail +
    deletion-bitmap tier — and from then on every query resolves through a
    :class:`~repro.colstore.delta.Snapshot` of that table's current
    version, so readers see a consistent state while writers keep writing.
    Writes invalidate the affected synopsis-catalog entries (whose cache
    keys also carry :meth:`store_version`, so a stale entry can never be
    served even across re-derived catalogs).
    """

    def __init__(self, name: str = "genbase"):
        self.name = name
        self._tables: dict[str, ColumnTable] = {}
        self._deltas: dict[str, DeltaStore] = {}
        self._synopses: "SynopsisCatalog | None" = None

    @property
    def synopses(self) -> "SynopsisCatalog":
        """The store's sample-synopsis catalog (built lazily, cached).

        Uniform and stratified synopses built here are narrowed selections
        shared across queries — see :mod:`repro.colstore.synopsis`.
        """
        if self._synopses is None:
            from repro.colstore.synopsis import SynopsisCatalog
            self._synopses = SynopsisCatalog(self)
        return self._synopses

    # -- catalog management --------------------------------------------------------

    def create_table(self, name: str, arrays: Mapping[str, np.ndarray],
                     compress: bool = True) -> ColumnTable:
        """Create and load a table from column arrays.

        Raises:
            ValueError: if the table already exists.
        """
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = ColumnTable.from_arrays(name, arrays, compress=compress)
        self._tables[name] = table
        return table

    def register(self, table: ColumnTable) -> None:
        """Register an externally built table (e.g. a materialised join)."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise KeyError(f"no table named {name!r}")
        del self._tables[name]
        self._deltas.pop(name, None)

    def table(self, name: str) -> ColumnTable:
        """The table's current *sealed* segment (tail and deletes not applied).

        Written tables should be read through :meth:`query` /
        :meth:`effective_table`, which resolve the full logical content.
        """
        delta = self._deltas.get(name)
        if delta is not None:
            return delta.sealed_table
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "<none>"
            raise KeyError(f"no table named {name!r}; known tables: {known}") from None

    def effective_table(self, name: str):
        """The table's logical view: a snapshot table once written, else sealed."""
        delta = self._deltas.get(name)
        if delta is None:
            return self.table(name)
        return delta.snapshot().table

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # -- writes -----------------------------------------------------------------------

    def writable(self, name: str) -> DeltaStore:
        """The table's delta store, attached on first use.

        The returned store carries the write API (``append`` / ``delete``
        / ``update`` / ``compact``) and hands out :class:`Snapshot`
        handles; its write hook invalidates this store's synopsis cache.
        """
        delta = self._deltas.get(name)
        if delta is None:
            sealed = self.table(name)  # raises KeyError naming known tables
            delta = DeltaStore(sealed, on_write=lambda: self._written(name))
            self._deltas[name] = delta
        return delta

    def _written(self, name: str) -> None:
        """Write hook: drop the written table's cached synopses."""
        if self._synopses is not None:
            self._synopses.invalidate(name)

    def append(self, name: str, rows: Mapping[str, np.ndarray]) -> int:
        """Append rows to a table's tail; returns the new store version."""
        return self.writable(name).append(rows)

    def delete(self, name: str, row_ids) -> int:
        """Mark logical row ids deleted; returns the new store version."""
        return self.writable(name).delete(row_ids)

    def delete_where(self, name: str, expression) -> int:
        """Delete live rows matching a plan expression; returns rows deleted."""
        return self.writable(name).delete_where(expression)

    def update(self, name: str, row_ids, rows: Mapping[str, np.ndarray]) -> int:
        """Atomically replace ``row_ids`` with ``rows``; returns the new version."""
        return self.writable(name).update(row_ids, rows)

    def compact(self, name: str) -> int:
        """Reseal a written table's surviving rows as a new generation."""
        return self.writable(name).compact()

    def snapshot(self, name: str) -> Snapshot:
        """A consistent point-in-time view of one table."""
        return self.writable(name).snapshot()

    def store_version(self, name: str) -> int:
        """The table's write-version counter (0 while never written)."""
        delta = self._deltas.get(name)
        return 0 if delta is None else delta.version

    def live_row_count(self, name: str) -> int:
        """Logical (live) rows: sealed + tail minus deletions."""
        delta = self._deltas.get(name)
        if delta is None:
            return self.table(name).row_count
        return delta.snapshot().live_rows

    # -- querying ---------------------------------------------------------------------

    def query(self, table_name: str) -> ColumnQuery:
        """Start a vectorised query on a table.

        A written table is read through a fresh :class:`Snapshot` — the
        query sees the sealed segment, tail and deletion bitmap frozen at
        this call, however long it stays lazy.
        """
        delta = self._deltas.get(table_name)
        if delta is None:
            return ColumnQuery(self.table(table_name))
        return delta.snapshot().query()

    # -- stats ------------------------------------------------------------------------

    def total_rows(self) -> int:
        return sum(self.live_row_count(name) for name in self._tables)

    def total_compressed_bytes(self) -> int:
        return sum(self.effective_table(name).compressed_bytes
                   for name in self._tables)

    def describe(self) -> dict[str, dict]:
        return {
            name: {
                "rows": self.live_row_count(name),
                "columns": table.column_names,
                "compressed_bytes": table.compressed_bytes,
                "encodings": table.encodings(),
            }
            for name, table in sorted(
                (name, self.effective_table(name)) for name in self._tables
            )
        }
