"""The column-store catalog."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.colstore.query import ColumnQuery
from repro.colstore.table import ColumnTable


class ColumnStore:
    """A single-node column-store database: a catalog of column tables."""

    def __init__(self, name: str = "genbase"):
        self.name = name
        self._tables: dict[str, ColumnTable] = {}
        self._synopses: "SynopsisCatalog | None" = None

    @property
    def synopses(self) -> "SynopsisCatalog":
        """The store's sample-synopsis catalog (built lazily, cached).

        Uniform and stratified synopses built here are narrowed selections
        shared across queries — see :mod:`repro.colstore.synopsis`.
        """
        if self._synopses is None:
            from repro.colstore.synopsis import SynopsisCatalog
            self._synopses = SynopsisCatalog(self)
        return self._synopses

    # -- catalog management --------------------------------------------------------

    def create_table(self, name: str, arrays: Mapping[str, np.ndarray],
                     compress: bool = True) -> ColumnTable:
        """Create and load a table from column arrays.

        Raises:
            ValueError: if the table already exists.
        """
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = ColumnTable.from_arrays(name, arrays, compress=compress)
        self._tables[name] = table
        return table

    def register(self, table: ColumnTable) -> None:
        """Register an externally built table (e.g. a materialised join)."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise KeyError(f"no table named {name!r}")
        del self._tables[name]

    def table(self, name: str) -> ColumnTable:
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "<none>"
            raise KeyError(f"no table named {name!r}; known tables: {known}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # -- querying ---------------------------------------------------------------------

    def query(self, table_name: str) -> ColumnQuery:
        """Start a vectorised query on a table."""
        return ColumnQuery(self.table(table_name))

    # -- stats ------------------------------------------------------------------------

    def total_rows(self) -> int:
        return sum(table.row_count for table in self._tables.values())

    def total_compressed_bytes(self) -> int:
        return sum(table.compressed_bytes for table in self._tables.values())

    def describe(self) -> dict[str, dict]:
        return {
            name: {
                "rows": table.row_count,
                "columns": table.column_names,
                "compressed_bytes": table.compressed_bytes,
                "encodings": table.encodings(),
            }
            for name, table in sorted(self._tables.items())
        }
