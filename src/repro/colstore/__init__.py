"""A compressed, vectorised column-store engine.

This package is the benchmark's "popular column store" analog.  Its design
follows the classic column-store recipe:

* each column is stored separately as a typed, *compressed* vector
  (:mod:`repro.colstore.compression` implements run-length, dictionary and
  delta encodings with automatic selection),
* queries execute vectorised: predicates produce selection bitmaps over
  whole columns, joins and aggregations work on integer index vectors, and
  row materialisation is deferred until output (late materialisation),
* analytics can run outside the store (export to the R environment, paying
  the copy/reformat cost) or inside it through the UDF interface
  (:mod:`repro.colstore.udf`).

The engine's data-management performance profile therefore differs from the
row store in exactly the way the paper discusses: per-column scans are cheap,
but GenBase's narrow tables and multi-column fetches blunt the advantage
("our tables are very narrow and we retrieve several columns in some of our
tasks, a situation where column stores do not excel").

DESIGN — compressed execution
=============================

Queries operate *directly on the encoded columns* wherever the encoding
admits a fast path; a full decode happens only when a column is genuinely
materialised (and is then cached, the buffer-pool behaviour).  The
per-encoding fast-path matrix:

===========  ==============================  ===================================
encoding     ``take(indices)``               ``filter_mask`` / ``isin``
===========  ==============================  ===================================
plain        direct fancy indexing           full-column vectorised predicate
rle          ``searchsorted`` over the       predicate on the run *values* only,
             cumulative run ends             verdicts ``repeat``-expanded
dictionary   gather codes, one dictionary    predicate on the *distinct* values;
             lookup                          prefix/suffix verdicts (range
                                             predicates on the sorted dict)
                                             become a single code comparison,
                                             otherwise a code gather
delta        prefix sum over the             full decode (cached)
             ``[min, max]`` index window
===========  ==============================  ===================================

Consequences for the query layer:

* predicates handed to ``where``/``filter_mask`` must be element-wise and
  stateless — dictionary/RLE columns evaluate them on distinct values only;
* ``where``/``where_in`` narrow the selection vector through these pushdowns
  without materialising the filtered column;
* ``group_aggregate``/``pivot`` push the *grouping* down too: a dictionary
  column's ``(keys, codes)`` pair is consumed directly (``bincount`` over
  codes, min/max via one ``ufunc.at`` scatter), RLE runs fold into partial
  counts/sums/extrema with ``ufunc.reduceat`` and never expand, and a
  monotone delta column recovers its grouping from a change-point scan —
  ``np.unique`` over decoded values survives only as the plain-column
  fallback (see ``distinct_inverse``/``group_reduce``);
* the equi-join computes aligned position arrays with no per-row Python:
  dense integer keys take a direct-addressing (counting-sort) path, anything
  else an ``argsort`` + ``searchsorted`` sort-merge;
* ``best_encoding`` predicts every candidate's exact footprint from cheap
  column statistics (run count, cardinality, delta width — see
  ``encoding_sizes``) and builds only the winner.

``benchmarks/bench_colstore_ops.py`` sweeps these paths against the
decode-everything baselines and records the speedups in
``BENCH_colstore.json``.
"""

from repro.colstore.column import ColumnVector
from repro.colstore.compression import (
    AGGREGATE_FUNCTIONS,
    DeltaEncoding,
    DictionaryEncoding,
    PlainEncoding,
    RunLengthEncoding,
    best_encoding,
    encoding_sizes,
    make_encoding,
    reduce_by_inverse,
)
from repro.colstore.table import ColumnTable
from repro.colstore.delta import (
    DeltaStore,
    MergedColumn,
    Snapshot,
    SnapshotTable,
)
from repro.colstore.catalog import ColumnStore
from repro.colstore.query import (
    ColumnQuery,
    JoinedQuery,
    materialise_join,
    merge_join_positions,
)
from repro.colstore.planner import (
    ColumnStoreCatalog,
    explain_plan,
    optimize_plan,
    run_plan,
)

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "ColumnVector",
    "PlainEncoding",
    "RunLengthEncoding",
    "DictionaryEncoding",
    "DeltaEncoding",
    "best_encoding",
    "encoding_sizes",
    "make_encoding",
    "reduce_by_inverse",
    "ColumnTable",
    "ColumnStore",
    "DeltaStore",
    "MergedColumn",
    "Snapshot",
    "SnapshotTable",
    "ColumnQuery",
    "JoinedQuery",
    "materialise_join",
    "merge_join_positions",
    "ColumnStoreCatalog",
    "explain_plan",
    "optimize_plan",
    "run_plan",
]
