"""A compressed, vectorised column-store engine.

This package is the benchmark's "popular column store" analog.  Its design
follows the classic column-store recipe:

* each column is stored separately as a typed, *compressed* vector
  (:mod:`repro.colstore.compression` implements run-length, dictionary and
  delta encodings with automatic selection),
* queries execute vectorised: predicates produce selection bitmaps over
  whole columns, joins and aggregations work on integer index vectors, and
  row materialisation is deferred until output (late materialisation),
* analytics can run outside the store (export to the R environment, paying
  the copy/reformat cost) or inside it through the UDF interface
  (:mod:`repro.colstore.udf`).

The engine's data-management performance profile therefore differs from the
row store in exactly the way the paper discusses: per-column scans are cheap,
but GenBase's narrow tables and multi-column fetches blunt the advantage
("our tables are very narrow and we retrieve several columns in some of our
tasks, a situation where column stores do not excel").
"""

from repro.colstore.column import ColumnVector
from repro.colstore.compression import (
    DeltaEncoding,
    DictionaryEncoding,
    PlainEncoding,
    RunLengthEncoding,
    best_encoding,
)
from repro.colstore.table import ColumnTable
from repro.colstore.catalog import ColumnStore
from repro.colstore.query import ColumnQuery

__all__ = [
    "ColumnVector",
    "PlainEncoding",
    "RunLengthEncoding",
    "DictionaryEncoding",
    "DeltaEncoding",
    "best_encoding",
    "ColumnTable",
    "ColumnStore",
    "ColumnQuery",
]
