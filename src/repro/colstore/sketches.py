"""Mergeable sketches and confidence intervals for the approximate tier.

The approximate tier (docs/APPROXIMATE.md) answers aggregates without
touching every row, and every answer carries a confidence interval:

- :class:`HyperLogLog` estimates distinct counts from a fixed array of
  ``2**p`` registers.  Adding a value is idempotent and the merge is an
  elementwise register maximum, so per-partition sketches combine into
  exactly the sketch a single pass would have built — order- and
  partition-invariant by construction.
- :class:`TDigest` estimates quantiles from weighted centroids.  Below
  ``buffer_limit`` distinct values the digest is an *exact* weighted
  multiset (duplicates coalesce by value), so merges are lossless and the
  quantile matches numpy's ``inverted_cdf`` bit for bit; past the limit it
  compresses deterministically into equal-weight centroids with a
  documented rank-error bound of ``1/compression``.
- The ``sampled_*`` helpers turn a uniform sample into CLT confidence
  intervals for count/sum/mean, with the finite-population correction
  when the sample was drawn last (population size known) and
  inclusion-probability (Horvitz-Thompson) scaling when filters run
  above the sample and the matching population is itself estimated.

Everything here is deterministic: hashing is splitmix64 (no RNG at all)
and the sampling helpers only *describe* samples drawn elsewhere with an
explicit seed, so repeated runs give identical estimates and bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ApproxResult",
    "HyperLogLog",
    "TDigest",
    "hash64",
    "normal_quantile",
    "sampled_count",
    "sampled_mean",
    "sampled_sum",
]


# --------------------------------------------------------------------------- #
# Result type
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class ApproxResult:
    """An approximate answer: ``(estimate, ci_low, ci_high, confidence)``.

    ``ci_low``/``ci_high`` bound the true value at the stated confidence
    level under the sketch's error model (CLT for sampled aggregates, the
    1.04/sqrt(m) normal model for HyperLogLog, the deterministic rank
    bound for the t-digest).  Iterating yields the four fields in order,
    so results unpack like the tuple the plan layer documents.
    """

    estimate: float
    ci_low: float
    ci_high: float
    confidence: float

    def __iter__(self):
        return iter((self.estimate, self.ci_low, self.ci_high, self.confidence))

    def covers(self, value: float) -> bool:
        """Whether the interval contains ``value`` (inclusive)."""
        return self.ci_low <= value <= self.ci_high

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0


def _interval(estimate: float, margin: float, confidence: float) -> ApproxResult:
    margin = abs(float(margin))
    return ApproxResult(float(estimate), float(estimate) - margin,
                        float(estimate) + margin, float(confidence))


# --------------------------------------------------------------------------- #
# Normal quantile (no scipy in the image: Acklam's rational approximation)
# --------------------------------------------------------------------------- #

_ACKLAM_A = (-3.969683028665376e+01, 2.209460984245205e+02,
             -2.759285104469687e+02, 1.383577518672690e+02,
             -3.066479806614716e+01, 2.506628277459239e+00)
_ACKLAM_B = (-5.447609879822406e+01, 1.615858368580409e+02,
             -1.556989798598866e+02, 6.680131188771972e+01,
             -1.328068155288572e+01)
_ACKLAM_C = (-7.784894002430293e-03, -3.223964580411365e-01,
             -2.400758277161838e+00, -2.549732539343734e+00,
             4.374664141464968e+00, 2.938163982698783e+00)
_ACKLAM_D = (7.784695709041462e-03, 3.224671290700398e-01,
             2.445134137142996e+00, 3.754408661907416e+00)


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam, relative error < 1.2e-9).

    >>> round(normal_quantile(0.975), 4)
    1.96
    >>> round(normal_quantile(0.5), 10)
    0.0
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"normal quantile needs 0 < p < 1, got {p!r}")
    a, b, c, d = _ACKLAM_A, _ACKLAM_B, _ACKLAM_C, _ACKLAM_D
    low, high = 0.02425, 1 - 0.02425
    if p < low:
        q = math.sqrt(-2.0 * math.log(p))
        return ((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
                / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))
    if p > high:
        q = math.sqrt(-2.0 * math.log(1 - p))
        return -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
                 / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))
    q = p - 0.5
    r = q * q
    return ((((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1))


def _two_sided_z(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence!r}")
    return normal_quantile(0.5 + confidence / 2.0)


# --------------------------------------------------------------------------- #
# Hashing (splitmix64 — deterministic, no RNG state)
# --------------------------------------------------------------------------- #

def hash64(values: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit hashes of a numeric array (splitmix64 finalizer).

    Integers hash by value (int64 and int32 views of the same number
    collide on purpose); floats hash their IEEE float64 bits with ``-0.0``
    canonicalised to ``0.0``.  Non-numeric dtypes are rejected — the plan
    verifier only admits numeric columns into approximate aggregates.
    """
    values = np.asarray(values)
    if values.dtype.kind in "biu":
        bits = values.astype(np.int64, copy=False).view(np.uint64)
    elif values.dtype.kind == "f":
        canonical = values.astype(np.float64, copy=True)
        canonical[canonical == 0.0] = 0.0  # merge -0.0 and +0.0
        bits = canonical.view(np.uint64)
    else:
        raise TypeError(f"cannot hash dtype {values.dtype} for a sketch")
    z = bits + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


# --------------------------------------------------------------------------- #
# HyperLogLog
# --------------------------------------------------------------------------- #

class HyperLogLog:
    """Distinct-count sketch over ``m = 2**p`` one-byte registers.

    ``p`` is restricted to [12, 18] so the ``64 - p`` hash-tail bits fit a
    float64 mantissa exactly (the vectorised leading-zero count goes
    through ``np.frexp``).  Standard error is ``1.04 / sqrt(m)``; the
    small-range regime falls back to linear counting.
    """

    __slots__ = ("p", "m", "registers")

    def __init__(self, p: int = 12, registers: np.ndarray | None = None):
        if not 12 <= p <= 18:
            raise ValueError(f"HyperLogLog precision p must be in [12, 18], got {p}")
        self.p = p
        self.m = 1 << p
        if registers is None:
            registers = np.zeros(self.m, dtype=np.uint8)
        else:
            registers = np.asarray(registers, dtype=np.uint8)
            if registers.shape != (self.m,):
                raise ValueError(
                    f"register array has shape {registers.shape}, expected ({self.m},)"
                )
            registers = registers.copy()
        self.registers = registers

    def add_array(self, values: np.ndarray) -> "HyperLogLog":
        """Observe every value in ``values`` (duplicates are free)."""
        if len(values) == 0:
            return self
        hashes = hash64(values)
        tail_bits = np.uint64(64 - self.p)
        index = (hashes >> tail_bits).astype(np.int64)
        tail = hashes & np.uint64((1 << (64 - self.p)) - 1)
        # rho = leading-zero count of the tail within its 64-p bits, + 1.
        # For tail > 0: floor(log2(tail)) == frexp exponent - 1, exact
        # because 64-p <= 52 mantissa bits.
        _, exponent = np.frexp(tail.astype(np.float64))
        rho = np.where(tail > 0,
                       np.uint8(64 - self.p + 1) - exponent.astype(np.int64),
                       64 - self.p + 1).astype(np.uint8)
        np.maximum.at(self.registers, index, rho)
        return self

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Union of the two sketches: elementwise register maximum."""
        if other.p != self.p:
            raise ValueError(f"cannot merge HLL(p={other.p}) into HLL(p={self.p})")
        return HyperLogLog(self.p, np.maximum(self.registers, other.registers))

    def estimate(self) -> float:
        """Bias-corrected cardinality estimate (linear counting when small)."""
        m = float(self.m)
        alpha = 0.7213 / (1.0 + 1.079 / m)
        harmonic = float(np.sum(np.ldexp(1.0, -self.registers.astype(np.int64))))
        raw = alpha * m * m / harmonic
        zeros = int(np.count_nonzero(self.registers == 0))
        if raw <= 2.5 * m and zeros:
            return m * math.log(m / zeros)
        return raw

    def relative_error(self) -> float:
        """One standard error, relative: the classic ``1.04 / sqrt(m)``."""
        return 1.04 / math.sqrt(self.m)

    def result(self, confidence: float = 0.95) -> ApproxResult:
        estimate = self.estimate()
        margin = _two_sided_z(confidence) * self.relative_error() * estimate
        return _interval(estimate, margin, confidence)


# --------------------------------------------------------------------------- #
# t-digest (canonical buffered form)
# --------------------------------------------------------------------------- #

class TDigest:
    """Quantile sketch over weighted centroids, exact below ``buffer_limit``.

    The state is a sorted ``(mean, weight)`` array with exact duplicates
    coalesced.  While the number of distinct values stays at or below
    ``buffer_limit`` nothing is ever approximated: adds and merges just
    re-coalesce the weighted multiset, which makes merging per-partition
    digests *identical* to one single-pass digest regardless of order or
    partitioning.  Past the limit the buffer compresses deterministically
    into ``compression`` equal-weight centroids and ``rank_error()``
    reports the ``1/compression`` bound that the quantile bracket uses.
    """

    __slots__ = ("compression", "buffer_limit", "means", "weights", "compressed")

    def __init__(self, compression: int = 256, buffer_limit: int = 4096,
                 means: np.ndarray | None = None,
                 weights: np.ndarray | None = None,
                 compressed: bool = False):
        if compression < 8:
            raise ValueError(f"compression must be >= 8, got {compression}")
        if buffer_limit < compression:
            raise ValueError("buffer_limit must be >= compression")
        self.compression = compression
        self.buffer_limit = buffer_limit
        self.means = (np.empty(0, dtype=np.float64) if means is None
                      else np.asarray(means, dtype=np.float64).copy())
        self.weights = (np.empty(0, dtype=np.float64) if weights is None
                        else np.asarray(weights, dtype=np.float64).copy())
        self.compressed = compressed

    def add_array(self, values: np.ndarray,
                  weights: np.ndarray | None = None) -> "TDigest":
        """Fold in ``values`` (optionally pre-weighted, e.g. RLE run lengths)."""
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            return self
        if weights is None:
            weights = np.ones(len(values), dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
        means = np.concatenate([self.means, values])
        pooled = np.concatenate([self.weights, weights])
        unique, inverse = np.unique(means, return_inverse=True)
        self.means = unique
        self.weights = np.bincount(inverse, weights=pooled, minlength=len(unique))
        if len(self.means) > self.buffer_limit:
            self._compress()
        return self

    def merge(self, other: "TDigest") -> "TDigest":
        """Combine two digests; lossless while both are uncompressed buffers."""
        merged = TDigest(self.compression, self.buffer_limit,
                         self.means, self.weights,
                         self.compressed or other.compressed)
        merged.add_array(other.means, other.weights)
        return merged

    def _compress(self) -> None:
        """Deterministic equal-weight re-bucketing into ``compression`` centroids.

        Buckets are fixed cumulative-weight strata of the *current* sorted
        multiset, so the result depends only on the state being compressed
        — never on python-level iteration order.
        """
        total = float(np.sum(self.weights))
        cumulative = np.cumsum(self.weights)
        bucket = np.minimum(
            (cumulative * self.compression / total).astype(np.int64),
            self.compression - 1,
        )
        # np.unique keeps buckets in ascending order, preserving sortedness.
        labels, inverse = np.unique(bucket, return_inverse=True)
        weight_sums = np.bincount(inverse, weights=self.weights,
                                  minlength=len(labels))
        mean_sums = np.bincount(inverse, weights=self.weights * self.means,
                                minlength=len(labels))
        self.means = mean_sums / weight_sums
        self.weights = weight_sums
        self.compressed = True

    def total_weight(self) -> float:
        return float(np.sum(self.weights))

    def quantile(self, q: float) -> float:
        """Weighted inverted-CDF quantile: smallest centroid with F >= q.

        On an uncompressed digest with unit weights this matches
        ``np.quantile(values, q, method="inverted_cdf")`` exactly.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction must be in [0, 1], got {q!r}")
        if len(self.means) == 0:
            return math.nan
        cumulative = np.cumsum(self.weights)
        target = q * cumulative[-1]
        index = int(np.searchsorted(cumulative, target, side="left"))
        return float(self.means[min(index, len(self.means) - 1)])

    def rank_error(self) -> float:
        """Deterministic rank-error bound: 0 while exact, 1/compression after."""
        return 0.0 if not self.compressed else 1.0 / self.compression

    def result(self, q: float, confidence: float = 0.95) -> ApproxResult:
        """Estimate plus the value bracket ``[quantile(q-eps), quantile(q+eps)]``.

        The bracket converts the rank-error bound into value space; on an
        exact (uncompressed) digest it collapses to a point interval.
        ``confidence`` is recorded as stated — the rank bound is
        deterministic, so the interval holds at any confidence level.
        """
        _two_sided_z(confidence)  # validate the confidence parameter
        estimate = self.quantile(q)
        eps = self.rank_error()
        low = self.quantile(max(0.0, q - eps))
        high = self.quantile(min(1.0, q + eps))
        return ApproxResult(estimate, low, high, float(confidence))


# --------------------------------------------------------------------------- #
# CLT bounds for sampled aggregates
# --------------------------------------------------------------------------- #

def _sample_std(values: np.ndarray) -> float:
    if len(values) < 2:
        return 0.0
    return float(np.std(values, ddof=1))


def sampled_mean(values: np.ndarray, fraction: float,
                 confidence: float = 0.95) -> ApproxResult:
    """CLT interval for a mean over a uniform sample.

    ``fraction`` is the sampling rate, used as the finite-population
    correction ``sqrt(1 - f)`` — fixed-size sampling without replacement
    shrinks the variance relative to an i.i.d. sample.
    """
    z = _two_sided_z(confidence)
    values = np.asarray(values, dtype=np.float64)
    n = len(values)
    if n == 0:
        return ApproxResult(math.nan, math.nan, math.nan, float(confidence))
    fpc = math.sqrt(max(0.0, 1.0 - fraction))
    margin = z * _sample_std(values) / math.sqrt(n) * fpc
    return _interval(float(np.mean(values)), margin, confidence)


def sampled_sum(values: np.ndarray, fraction: float,
                confidence: float = 0.95,
                population: int | None = None) -> ApproxResult:
    """CLT interval for a sum estimated from a uniform sample.

    With ``population`` known (the sample ran *last*, over a selection of
    known size N) the estimate is ``N * mean`` and the variance is the
    fixed-size without-replacement form ``N^2 (1-f) s^2 / n``.  Without it
    (filters ran above the sample, so the matching population is itself
    estimated) the Horvitz-Thompson estimate ``sum / f`` carries the extra
    population-uncertainty term ``xbar^2 n (1-f) / f^2``.
    """
    z = _two_sided_z(confidence)
    values = np.asarray(values, dtype=np.float64)
    n = len(values)
    if n == 0:
        return ApproxResult(0.0, 0.0, 0.0, float(confidence))
    s = _sample_std(values)
    mean = float(np.mean(values))
    if population is not None:
        f = n / population if population else 1.0
        estimate = population * mean
        variance = (population ** 2) * max(0.0, 1.0 - f) * s * s / n
    else:
        f = fraction
        estimate = float(np.sum(values)) / f
        scaled = n / f  # estimated matching-population size
        variance = ((scaled ** 2) * max(0.0, 1.0 - f) * s * s / n
                    + mean * mean * n * max(0.0, 1.0 - f) / (f * f))
    return _interval(estimate, z * math.sqrt(variance), confidence)


def sampled_count(n: int, fraction: float, confidence: float = 0.95,
                  population: int | None = None) -> ApproxResult:
    """Interval for a count estimated from a uniform sample.

    With ``population`` known the count *is* the population (the sample
    ran last — zero-width interval); otherwise the binomial model gives
    ``n / f`` with standard error ``sqrt(n (1-f)) / f``.
    """
    z = _two_sided_z(confidence)
    if population is not None:
        return ApproxResult(float(population), float(population),
                            float(population), float(confidence))
    f = fraction
    margin = z * math.sqrt(n * max(0.0, 1.0 - f)) / f
    return _interval(n / f if f else float(n), margin, confidence)
