"""In-database UDF support for the column store.

The paper's "column store + UDFs" configuration runs R functions inside the
DBMS through a UDF interface — avoiding the export/reformat cost of the
"column store + external R" configuration, at the price of a per-invocation
bridge overhead and an interface that occasionally behaves badly (the paper
observes the biclustering query performing *worse* through the UDF path).

:class:`UdfHost` models that bridge honestly: each call copies its array
arguments (the DBMS→UDF argument marshalling) before invoking the function.
The marshalling work is real copying, so its cost scales with the data like
the real interface's does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.relational.udf import UdfRegistry, default_rlang_udf_registry


@dataclass
class UdfCallStats:
    """Bookkeeping for one UDF invocation (used by tests and reports)."""

    name: str
    bytes_marshalled: int


@dataclass
class UdfHost:
    """Executes registered UDFs with argument marshalling.

    Attributes:
        registry: the function registry (defaults to the in-DB R registry).
        copies_per_call: how many times array arguments are copied per call;
            2 models the DBMS→R and R→DBMS conversions of the embedded-R
            interface.
    """

    registry: UdfRegistry = field(default_factory=default_rlang_udf_registry)
    copies_per_call: int = 2
    calls: list[UdfCallStats] = field(default_factory=list)

    def register(self, name: str, function: Callable, tier: str = "compiled",
                 description: str = "") -> None:
        """Register an additional UDF on this host."""
        self.registry.register(name, function, tier=tier, description=description)

    def call(self, name: str, *args, **kwargs):
        """Invoke a UDF, marshalling (copying) every array argument first."""
        marshalled_args = []
        bytes_marshalled = 0
        for argument in args:
            if isinstance(argument, np.ndarray):
                copied = argument
                for _ in range(max(1, self.copies_per_call)):
                    copied = np.array(copied, copy=True)
                bytes_marshalled += argument.nbytes * max(1, self.copies_per_call)
                marshalled_args.append(copied)
            else:
                marshalled_args.append(argument)
        self.calls.append(UdfCallStats(name=name, bytes_marshalled=bytes_marshalled))
        return self.registry.call(name, *marshalled_args, **kwargs)

    @property
    def total_bytes_marshalled(self) -> int:
        return sum(call.bytes_marshalled for call in self.calls)
