"""Column encodings: plain, run-length, dictionary and delta.

Column stores get much of their edge from keeping columns compressed on disk
and, where possible, operating directly on the compressed form.  The
encodings here are honest implementations — they really do shrink the
stored representation and decode on access — so the engine's performance
trade-offs (cheap scans of low-cardinality columns, extra decode work on
high-entropy float columns) emerge from the data rather than from constants.

All encodings implement the small :class:`Encoding` interface:
``encode`` → opaque state, ``decode`` → the original numpy array,
``encoded_bytes`` → approximate storage footprint.

Beyond the round-trip interface, every encoding offers *compressed
execution* fast paths that answer point lookups and predicates without
materialising the full column:

* ``take(indices)`` gathers individual positions (dictionary: gather codes
  then one dictionary lookup; RLE: ``searchsorted`` over run boundaries;
  delta: prefix-sum over the ``[min(indices), max(indices)]`` window only),
* ``filter_mask(predicate)`` evaluates a vectorised element-wise predicate —
  for dictionary/RLE columns on the *distinct values only* — and expands the
  result through the codes/runs into a full-length boolean mask,
* ``isin(values)`` pushes membership tests down the same way,
* ``distinct_inverse(positions)`` produces the ``(keys, inverse)`` pair that
  ``np.unique(..., return_inverse=True)`` would compute — a dictionary
  column already *is* that pair, an RLE column derives it from its run
  values, a monotone delta column from a change-point scan — and
* ``group_reduce(values, function, positions)`` runs a grouped reduction
  (count/sum/mean/min/max) keyed by the column: dictionary aggregates with
  ``bincount`` over the stored codes, RLE folds whole runs into partial
  counts/sums/extrema via ``ufunc.reduceat`` without ever expanding them.

Predicates handed to ``filter_mask`` must be element-wise and stateless:
the encoding may invoke them on the distinct values rather than the full
column, so anything that inspects its whole input (``v > v.mean()``) would
silently change meaning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def predicate_mask(values: np.ndarray, predicate) -> np.ndarray:
    """Evaluate an element-wise predicate, insisting on a same-shape bool mask."""
    mask = np.asarray(predicate(values), dtype=bool)
    if mask.shape != values.shape:
        raise ValueError("predicate must return one boolean per input value")
    return mask


def _normalised_indices(indices: np.ndarray, length: int) -> np.ndarray:
    """Resolve negative positions the way plain fancy indexing would."""
    indices = np.asarray(indices)
    if indices.size and indices.min() < 0:
        indices = np.where(indices < 0, indices + length, indices)
    return indices


#: Grouped reductions every ``group_reduce`` implementation must support.
AGGREGATE_FUNCTIONS = ("mean", "sum", "count", "min", "max")


def reduce_by_inverse(
    inverse: np.ndarray, n_groups: int, values: np.ndarray | None, function: str
) -> np.ndarray:
    """Grouped reduction of ``values`` keyed by precomputed group codes.

    ``inverse`` assigns each row to one of ``n_groups`` groups (the
    ``np.unique(..., return_inverse=True)`` contract, but any non-negative
    integer codes work — dictionary codes go in unchanged).  ``count``
    never reads ``values``, which may then be None.
    """
    if function == "count":
        return np.bincount(inverse, minlength=n_groups).astype(np.float64)
    values = np.asarray(values, dtype=np.float64)
    if function == "sum":
        return np.bincount(inverse, weights=values, minlength=n_groups)
    if function == "mean":
        totals = np.bincount(inverse, weights=values, minlength=n_groups)
        counts = np.bincount(inverse, minlength=n_groups)
        return totals / np.maximum(counts, 1)
    if function in ("min", "max"):
        result = np.full(n_groups, np.inf if function == "min" else -np.inf)
        reducer = np.minimum if function == "min" else np.maximum
        reducer.at(result, inverse, values)
        return result
    raise ValueError(f"unsupported aggregate function {function!r}")


def sorted_distinct(values: np.ndarray) -> np.ndarray:
    """``np.unique(values)`` for already-sorted input: a change-point scan."""
    if not values.size:
        return np.unique(values)
    change_points = np.flatnonzero(values[1:] != values[:-1]) + 1
    return values[np.concatenate([[0], change_points])]


def sorted_distinct_inverse(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(values, return_inverse=True)`` for already-sorted input.

    A change-point scan replaces the sort: O(n) instead of O(n log n), with
    bit-identical output (distinct values of a sorted array are already in
    ascending order).
    """
    if not values.size:
        return np.unique(values, return_inverse=True)
    change_points = np.flatnonzero(values[1:] != values[:-1]) + 1
    starts = np.concatenate([[0], change_points])
    ends = np.concatenate([change_points, [len(values)]])
    inverse = np.repeat(np.arange(len(starts), dtype=np.intp), ends - starts)
    return values[starts], inverse


def _compact_distinct(
    keys: np.ndarray, codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Drop distinct entries with no surviving rows, remapping the codes.

    A narrowed selection may miss some dictionary entries / run values
    entirely; ``np.unique`` over the gathered rows would not list them, so
    neither may the pushed-down result.
    """
    counts = np.bincount(codes, minlength=len(keys))
    present = counts > 0
    if present.all():
        return keys, codes
    remap = np.cumsum(present) - 1
    return keys[present], remap[codes]


class Encoding:
    """Interface for column encodings.

    ``supports_distinct_pushdown`` advertises whether ``filter_mask`` /
    ``isin`` evaluate on the distinct values only (dictionary, RLE) rather
    than falling back to a full decode.
    """

    name: str = "base"
    supports_distinct_pushdown: bool = False
    # False when take() costs O(index span) rather than O(len(indices)) —
    # callers should prefer decode-and-cache for wide gathers.
    cheap_random_access: bool = True

    def encode(self, values: np.ndarray) -> None:
        raise NotImplementedError

    def decode(self) -> np.ndarray:
        raise NotImplementedError

    def encoded_bytes(self) -> int:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- compressed execution (generic fallbacks decode in full) -------------------

    def stats_hint(self) -> tuple[int | None, object, object]:
        """Cheap ``(distinct_count, minimum, maximum)`` facts, None when unknown.

        Selectivity estimation reads these through
        :meth:`repro.colstore.column.ColumnVector.stats`; encodings answer
        from their own metadata (dictionary cardinality, run values, delta
        endpoints) without decoding.  The base implementation knows nothing.
        """
        return None, None, None

    def take(self, indices: np.ndarray) -> np.ndarray:
        """Gather the values at ``indices`` from the encoded form."""
        return self.decode()[np.asarray(indices)]  # decode-ok: base-class gather fallback

    def filter_mask(self, predicate) -> np.ndarray:
        """Full-length boolean mask for an element-wise predicate."""
        return predicate_mask(self.decode(), predicate)  # decode-ok: opaque predicates have no fast path

    def isin(self, values: np.ndarray) -> np.ndarray:
        """Full-length boolean membership mask."""
        return np.isin(self.decode(), values)  # decode-ok: base-class membership fallback

    def distinct_inverse(
        self, positions: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sorted distinct values and per-row group codes.

        Equivalent to ``np.unique(column[positions], return_inverse=True)``
        (whole column when ``positions`` is None).  Key and code *values*
        match ``np.unique`` exactly; the code dtype may be narrower (e.g. a
        dictionary column hands back its stored codes).  Returned arrays may
        alias encoding state — treat them as read-only.
        """
        values = self.decode() if positions is None else self.take(positions)  # decode-ok: generic distinct scan
        return np.unique(values, return_inverse=True)

    def distinct_values(self, positions: np.ndarray | None = None) -> np.ndarray:
        """Sorted distinct values only — no inverse materialisation.

        Same aliasing caveat as :meth:`distinct_inverse`.
        """
        return self.distinct_inverse(positions)[0]

    def group_reduce(
        self,
        values: np.ndarray | None,
        function: str,
        positions: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Grouped reduction of ``values`` keyed by this column's values.

        ``values`` must be aligned with the grouped rows: full column length
        when ``positions`` is None, else one value per position.  For
        ``count`` the values are never read and may be None.  Returns
        ``(group_keys, aggregates)`` with keys sorted ascending.
        """
        keys, inverse = self.distinct_inverse(positions)
        return keys, reduce_by_inverse(inverse, len(keys), values, function)

    def sketch_pairs(
        self, positions: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """``(values, weights)`` stream for sketch builders (HLL / t-digest).

        The weighted stream represents the column's value *multiset*: each
        value appears with its multiplicity summed into the weight (``None``
        weights mean all-ones).  Run-length and dictionary encodings answer
        from their compressed state — each run value or dictionary key is
        handed over once — so a sketch build touches O(distinct) values
        instead of O(rows).  The base implementation streams the raw rows.
        """
        values = self.decode() if positions is None else self.take(positions)  # decode-ok: generic sketch scan fallback
        return values, None


@dataclass
class PlainEncoding(Encoding):
    """No compression; the baseline every other encoding is compared against."""

    name: str = "plain"

    def __post_init__(self):
        self._values: np.ndarray | None = None

    def encode(self, values: np.ndarray) -> None:
        self._values = np.asarray(values).copy()

    def decode(self) -> np.ndarray:
        if self._values is None:
            return np.empty(0)
        return self._values.copy()

    def encoded_bytes(self) -> int:
        return 0 if self._values is None else self._values.nbytes

    def __len__(self) -> int:
        return 0 if self._values is None else len(self._values)

    def take(self, indices: np.ndarray) -> np.ndarray:
        if self._values is None:
            return np.empty(0)[np.asarray(indices)]
        return self._values[np.asarray(indices)]

    def filter_mask(self, predicate) -> np.ndarray:
        if self._values is None:
            return np.empty(0, dtype=bool)
        return predicate_mask(self._values, predicate)

    def isin(self, values: np.ndarray) -> np.ndarray:
        if self._values is None:
            return np.empty(0, dtype=bool)
        return np.isin(self._values, values)

    def distinct_inverse(
        self, positions: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._values is None:
            return np.unique(np.empty(0), return_inverse=True)
        values = self._values if positions is None else self._values[np.asarray(positions)]
        return np.unique(values, return_inverse=True)

    def stats_hint(self) -> tuple[int | None, object, object]:
        """Endpoints scanned from the stored array — no decode copy."""
        if self._values is None or not len(self._values):
            return None, None, None
        if self._values.dtype.kind not in "biuf":
            return None, None, None
        return None, self._values.min(), self._values.max()


@dataclass
class RunLengthEncoding(Encoding):
    """Run-length encoding: ``(value, run_length)`` pairs.

    Best for sorted or low-cardinality columns (disease ids, gender, GO
    membership flags).
    """

    name: str = "rle"
    supports_distinct_pushdown: bool = True

    def __post_init__(self):
        self._run_values: np.ndarray | None = None
        self._run_lengths: np.ndarray | None = None
        self._run_ends: np.ndarray | None = None
        self._dtype = None
        self._length = 0

    def encode(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        self._dtype = values.dtype
        self._length = len(values)
        self._run_ends = None
        if len(values) == 0:
            self._run_values = values.copy()
            self._run_lengths = np.empty(0, dtype=np.int64)
            return
        change_points = np.flatnonzero(values[1:] != values[:-1]) + 1
        starts = np.concatenate([[0], change_points])
        ends = np.concatenate([change_points, [len(values)]])
        self._run_values = values[starts].copy()
        self._run_lengths = (ends - starts).astype(np.int64)

    def decode(self) -> np.ndarray:
        if self._run_values is None:
            return np.empty(0)
        return np.repeat(self._run_values, self._run_lengths)

    def _cumulative_run_ends(self) -> np.ndarray:
        if self._run_ends is None:
            self._run_ends = np.cumsum(self._run_lengths)
        return self._run_ends

    def take(self, indices: np.ndarray) -> np.ndarray:
        if self._run_values is None:
            return np.empty(0)[np.asarray(indices)]
        indices = _normalised_indices(indices, self._length)
        if indices.size and (indices.min() < 0 or indices.max() >= self._length):
            raise IndexError(
                f"index out of bounds for RLE column of length {self._length}"
            )
        run_index = np.searchsorted(self._cumulative_run_ends(), indices, side="right")
        return self._run_values[run_index]

    def filter_mask(self, predicate) -> np.ndarray:
        if self._run_values is None:
            return np.empty(0, dtype=bool)
        run_mask = predicate_mask(self._run_values, predicate)
        return np.repeat(run_mask, self._run_lengths)

    def isin(self, values: np.ndarray) -> np.ndarray:
        if self._run_values is None:
            return np.empty(0, dtype=bool)
        return np.repeat(np.isin(self._run_values, values), self._run_lengths)

    def distinct_inverse(
        self, positions: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._run_values is None:
            return np.unique(np.empty(0), return_inverse=True)
        run_keys, run_codes = np.unique(self._run_values, return_inverse=True)
        if positions is None:
            # Every run is non-empty, so every run value survives.
            return run_keys, np.repeat(run_codes, self._run_lengths)
        positions = _normalised_indices(positions, self._length)
        run_index = np.searchsorted(self._cumulative_run_ends(), positions, side="right")
        return _compact_distinct(run_keys, run_codes[run_index])

    def distinct_values(self, positions: np.ndarray | None = None) -> np.ndarray:
        """Keys-only path: unique run values, no n-length inverse expansion."""
        if positions is not None or self._run_values is None:
            return super().distinct_values(positions)
        return np.unique(self._run_values)

    def stats_hint(self) -> tuple[int | None, object, object]:
        """Distinct count and extrema from the run values (never the rows)."""
        if self._run_values is None or not len(self._run_values):
            return None, None, None
        uniques = np.unique(self._run_values)
        return len(uniques), uniques[0], uniques[-1]

    def group_reduce(
        self,
        values: np.ndarray | None,
        function: str,
        positions: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fold whole runs into partial counts/sums/extrema — no expansion.

        Per-run partials come from ``ufunc.reduceat`` at the run starts
        (counts are the stored run lengths verbatim), then collapse onto the
        distinct run values, so the work after one O(n) pass over ``values``
        is proportional to the run count, not the row count.
        """
        if positions is not None or self.run_count == 0:
            return super().group_reduce(values, function, positions)
        if function not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unsupported aggregate function {function!r}")
        run_keys, run_codes = np.unique(self._run_values, return_inverse=True)
        n_groups = len(run_keys)
        lengths = self._run_lengths
        if function == "count":
            return run_keys, np.bincount(run_codes, weights=lengths, minlength=n_groups)
        values = np.asarray(values, dtype=np.float64)
        starts = self._cumulative_run_ends() - lengths
        if function in ("sum", "mean"):
            run_sums = np.add.reduceat(values, starts)
            totals = np.bincount(run_codes, weights=run_sums, minlength=n_groups)
            if function == "sum":
                return run_keys, totals
            counts = np.bincount(run_codes, weights=lengths, minlength=n_groups)
            return run_keys, totals / np.maximum(counts, 1)
        reducer = np.minimum if function == "min" else np.maximum
        per_run = reducer.reduceat(values, starts)
        result = np.full(n_groups, np.inf if function == "min" else -np.inf)
        reducer.at(result, run_codes, per_run)
        return run_keys, result

    def sketch_pairs(
        self, positions: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Fold whole runs: each run value appears once, weighted by its length.

        A narrowed selection counts surviving positions per run with one
        ``searchsorted`` + ``bincount`` — still no row expansion.
        """
        if self._run_values is None:
            return np.empty(0), None
        if positions is None:
            return self._run_values, self._run_lengths
        positions = _normalised_indices(positions, self._length)
        run_index = np.searchsorted(self._cumulative_run_ends(), positions, side="right")
        counts = np.bincount(run_index, minlength=self.run_count)
        present = counts > 0
        return self._run_values[present], counts[present]

    def encoded_bytes(self) -> int:
        if self._run_values is None:
            return 0
        return self._run_values.nbytes + self._run_lengths.nbytes

    def __len__(self) -> int:
        return self._length

    @property
    def run_count(self) -> int:
        return 0 if self._run_values is None else len(self._run_values)


@dataclass
class DictionaryEncoding(Encoding):
    """Dictionary encoding: distinct values + small integer codes.

    Best for moderate-cardinality columns (function codes, zipcodes).
    """

    name: str = "dictionary"
    supports_distinct_pushdown: bool = True

    def __post_init__(self):
        self._dictionary: np.ndarray | None = None
        self._codes: np.ndarray | None = None

    def encode(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        self._dictionary, codes = np.unique(values, return_inverse=True)
        # Use the narrowest integer width that can hold the codes.
        n_distinct = len(self._dictionary)
        if n_distinct <= np.iinfo(np.uint8).max + 1:
            dtype = np.uint8
        elif n_distinct <= np.iinfo(np.uint16).max + 1:
            dtype = np.uint16
        else:
            dtype = np.uint32
        self._codes = codes.astype(dtype)

    def decode(self) -> np.ndarray:
        if self._dictionary is None or self._codes is None:
            return np.empty(0)
        return self._dictionary[self._codes]

    def encoded_bytes(self) -> int:
        if self._dictionary is None or self._codes is None:
            return 0
        return self._dictionary.nbytes + self._codes.nbytes

    def __len__(self) -> int:
        return 0 if self._codes is None else len(self._codes)

    @property
    def cardinality(self) -> int:
        return 0 if self._dictionary is None else len(self._dictionary)

    def take(self, indices: np.ndarray) -> np.ndarray:
        if self._dictionary is None or self._codes is None:
            return np.empty(0)[np.asarray(indices)]
        return self._dictionary[self._codes[np.asarray(indices)]]

    def filter_mask(self, predicate) -> np.ndarray:
        if self._dictionary is None or self._codes is None:
            return np.empty(0, dtype=bool)
        return self._expand_distinct_mask(predicate_mask(self._dictionary, predicate))

    def isin(self, values: np.ndarray) -> np.ndarray:
        if self._dictionary is None or self._codes is None:
            return np.empty(0, dtype=bool)
        return self._expand_distinct_mask(np.isin(self._dictionary, values))

    def distinct_inverse(
        self, positions: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """The stored ``(dictionary, codes)`` pair *is* the unique/inverse.

        The dictionary is sorted and deduplicated by construction, so the
        whole-column case costs nothing; a narrowed selection gathers its
        codes and drops dictionary entries no surviving row references.
        """
        if self._dictionary is None or self._codes is None:
            return np.unique(np.empty(0), return_inverse=True)
        if positions is None:
            return self._dictionary, self._codes
        return _compact_distinct(self._dictionary, self._codes[np.asarray(positions)])

    def stats_hint(self) -> tuple[int | None, object, object]:
        """The sorted dictionary *is* the statistics: cardinality + endpoints."""
        if self._dictionary is None or not len(self._dictionary):
            return None, None, None
        return len(self._dictionary), self._dictionary[0], self._dictionary[-1]

    def sketch_pairs(
        self, positions: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Hash each dictionary key once, weighted by its code count.

        Whole column: one ``bincount`` over the stored codes.  Narrowed
        selection: the same bincount over the gathered codes, dropping keys
        no surviving row references.
        """
        if self._dictionary is None or self._codes is None:
            return np.empty(0), None
        codes = (self._codes if positions is None
                 else self._codes[np.asarray(positions)])
        counts = np.bincount(codes, minlength=self.cardinality)
        present = counts > 0
        return self._dictionary[present], counts[present]

    def _expand_distinct_mask(self, distinct_mask: np.ndarray) -> np.ndarray:
        """Expand a per-distinct-value verdict to a full-length row mask.

        The dictionary is sorted, so range predicates (``<``, ``>=``, …)
        produce prefix/suffix verdict masks and equality/BETWEEN predicates
        produce a single contiguous run of verdicts; all of those expand as
        one or two code comparisons instead of a gather.
        """
        codes = self._codes
        true_count = int(distinct_mask.sum())
        cardinality = len(distinct_mask)
        if true_count == 0:
            return np.zeros(len(codes), dtype=bool)
        if true_count == cardinality:
            return np.ones(len(codes), dtype=bool)
        first_true = int(np.argmax(distinct_mask))
        if distinct_mask[first_true:first_true + true_count].all():
            # Contiguous verdict run [first_true, first_true + true_count).
            if first_true == 0:
                return codes < true_count
            if first_true + true_count == cardinality:
                return codes >= first_true
            if true_count == 1:
                return codes == first_true
            return (codes >= first_true) & (codes < first_true + true_count)
        return distinct_mask[codes]


@dataclass
class DeltaEncoding(Encoding):
    """Delta encoding for monotone / slowly varying integer columns.

    Stores the first value and the differences, using a narrow dtype when
    the deltas are small (positions, patient ids, gene ids).
    """

    name: str = "delta"
    cheap_random_access: bool = False

    def __post_init__(self):
        self._first = None
        self._deltas: np.ndarray | None = None
        self._dtype = None

    def encode(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        self._dtype = values.dtype
        if len(values) == 0:
            self._first = None
            self._deltas = np.empty(0, dtype=np.int64)
            return
        self._first = values[0]
        deltas = np.diff(values.astype(np.int64))
        if len(deltas) and np.abs(deltas).max() <= np.iinfo(np.int16).max:
            deltas = deltas.astype(np.int16)
        elif len(deltas) and np.abs(deltas).max() <= np.iinfo(np.int32).max:
            deltas = deltas.astype(np.int32)
        self._deltas = deltas

    def decode(self) -> np.ndarray:
        if self._first is None:
            return np.empty(0, dtype=self._dtype or np.int64)
        restored = np.concatenate(
            [[np.int64(self._first)], np.int64(self._first) + np.cumsum(self._deltas, dtype=np.int64)]
        )
        return restored.astype(self._dtype)

    def encoded_bytes(self) -> int:
        if self._deltas is None:
            return 0
        return 8 + self._deltas.nbytes

    def __len__(self) -> int:
        if self._first is None:
            return 0
        return len(self._deltas) + 1

    def take(self, indices: np.ndarray) -> np.ndarray:
        """Gather via a prefix sum over the ``[min, max]`` index window only."""
        indices = np.asarray(indices)
        if self._first is None:
            return np.empty(0, dtype=self._dtype or np.int64)[indices]
        length = len(self._deltas) + 1
        indices = _normalised_indices(indices, length)
        if indices.size == 0:
            return np.empty(0, dtype=self._dtype)
        low = int(indices.min())
        high = int(indices.max())
        if low < 0 or high >= length:
            raise IndexError(
                f"index out of bounds for delta column of length {length}"
            )
        start = np.int64(self._first) + self._deltas[:low].sum(dtype=np.int64)
        window = np.concatenate(
            [[start], start + np.cumsum(self._deltas[low:high], dtype=np.int64)]
        )
        return window[indices - low].astype(self._dtype)

    @property
    def is_monotone(self) -> bool:
        """True when every delta is ≥ 0, i.e. the column decodes sorted."""
        if self._first is None:
            return False
        return len(self._deltas) == 0 or int(self._deltas.min()) >= 0

    def stats_hint(self) -> tuple[int | None, object, object]:
        """Monotone columns expose their endpoints without decoding."""
        if self._first is None or not self.is_monotone:
            return None, None, None
        last = np.int64(self._first) + self._deltas.sum(dtype=np.int64)
        return None, self._first, last.astype(self._dtype)

    def distinct_inverse(
        self, positions: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Monotone columns (all deltas ≥ 0) decode already sorted, so the
        distinct values fall out of a change-point scan instead of the sort
        ``np.unique`` would run."""
        if positions is not None or not self.is_monotone:
            return super().distinct_inverse(positions)
        return sorted_distinct_inverse(self.decode())  # decode-ok: change-point scan needs the materialised run

    def distinct_values(self, positions: np.ndarray | None = None) -> np.ndarray:
        if positions is not None or not self.is_monotone:
            return super().distinct_values(positions)
        return sorted_distinct(self.decode())  # decode-ok: change-point scan needs the materialised run


def _dictionary_code_bytes(cardinality: int) -> int:
    """Per-code width the dictionary encoding would use (mirrors its encode)."""
    if cardinality <= np.iinfo(np.uint8).max + 1:
        return 1
    if cardinality <= np.iinfo(np.uint16).max + 1:
        return 2
    return 4


def _delta_item_bytes(max_abs_delta: int) -> int:
    """Per-delta width the delta encoding would use (mirrors its encode)."""
    if max_abs_delta <= np.iinfo(np.int16).max:
        return 2
    if max_abs_delta <= np.iinfo(np.int32).max:
        return 4
    return 8


def encoding_sizes(values: np.ndarray) -> dict[str, int]:
    """Predict each candidate encoding's footprint from column statistics.

    The predictions are exact — they reproduce ``encoded_bytes()`` of the
    real encodings — but are computed from cheap scalar statistics (run
    count, cardinality, maximum delta width) instead of materialising every
    candidate.  Cardinality (the only sort-cost statistic) is skipped when a
    lower bound proves the dictionary cannot win.
    """
    values = np.asarray(values)
    n = values.size
    itemsize = values.dtype.itemsize
    sizes: dict[str, int] = {"plain": values.nbytes}
    if not n:
        return sizes
    is_integral = np.issubdtype(values.dtype, np.integer) or np.issubdtype(
        values.dtype, np.bool_
    )

    run_count = int(np.count_nonzero(values[1:] != values[:-1])) + 1
    sizes["rle"] = run_count * itemsize + run_count * 8

    if is_integral:
        deltas = np.diff(values.astype(np.int64))
        max_abs_delta = int(np.abs(deltas).max()) if len(deltas) else 0
        sizes["delta"] = 8 + (n - 1) * _delta_item_bytes(max_abs_delta)

    dictionary_applies = is_integral
    if not dictionary_applies:
        # Floats: only dictionary-encode plausibly low-cardinality columns.
        dictionary_applies = _distinct_count(values[: min(n, 10_000)]) <= 4096
    if dictionary_applies:
        # Codes cost ≥ 1 byte/row and the dictionary ≥ 1 entry, so skip the
        # O(n log n) exact-cardinality pass when that bound cannot win.
        best_so_far = min(sizes.values())
        if n + itemsize <= best_so_far:
            cardinality = run_count if run_count <= 1 else _distinct_count(values)
            sizes["dictionary"] = (
                cardinality * itemsize + n * _dictionary_code_bytes(cardinality)
            )
    return sizes


def _distinct_count(values: np.ndarray) -> int:
    """Exact cardinality via sort-and-count (faster than ``np.unique`` here).

    Collapses NaNs to one distinct value, matching the ``np.unique`` the
    dictionary encoder itself uses — ``!=`` alone would count every NaN.
    """
    if not values.size:
        return 0
    sorted_values = np.sort(values)
    if sorted_values.dtype.kind == "f":
        nan_count = int(np.count_nonzero(np.isnan(sorted_values)))
        if nan_count:
            sorted_values = sorted_values[: len(sorted_values) - nan_count]
            if not sorted_values.size:
                return 1
            return int(np.count_nonzero(sorted_values[1:] != sorted_values[:-1])) + 2
    return int(np.count_nonzero(sorted_values[1:] != sorted_values[:-1])) + 1


_ENCODING_CLASSES: dict[str, type[Encoding]] = {
    "plain": PlainEncoding,
    "rle": RunLengthEncoding,
    "dictionary": DictionaryEncoding,
    "delta": DeltaEncoding,
}

# Tie-break order: simpler encodings win equal footprints.
_ENCODING_PRECEDENCE = ("plain", "rle", "dictionary", "delta")


def make_encoding(name: str, values: np.ndarray) -> Encoding:
    """Build a specific encoding by name (tests/benchmarks force one this way)."""
    try:
        encoding = _ENCODING_CLASSES[name]()
    except KeyError:
        raise ValueError(
            f"unknown encoding {name!r}; choose from {sorted(_ENCODING_CLASSES)}"
        ) from None
    encoding.encode(np.asarray(values))
    return encoding


def best_encoding(values: np.ndarray) -> Encoding:
    """Pick the smallest applicable encoding for a column.

    Float columns with many distinct values stay plain; integer columns
    consider RLE, dictionary and delta and keep whichever is smallest (ties
    go to the simpler encoding in the order plain → RLE → dictionary →
    delta).  Candidate footprints come from :func:`encoding_sizes` — O(1)
    statistics per candidate — so only the winning encoding is ever built.
    """
    values = np.asarray(values)
    sizes = encoding_sizes(values)
    best_name = min(
        (name for name in _ENCODING_PRECEDENCE if name in sizes),
        key=lambda name: (sizes[name], _ENCODING_PRECEDENCE.index(name)),
    )
    encoding = _ENCODING_CLASSES[best_name]()
    encoding.encode(values)
    return encoding
