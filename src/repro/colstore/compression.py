"""Column encodings: plain, run-length, dictionary and delta.

Column stores get much of their edge from keeping columns compressed on disk
and, where possible, operating directly on the compressed form.  The
encodings here are honest implementations — they really do shrink the
stored representation and decode on access — so the engine's performance
trade-offs (cheap scans of low-cardinality columns, extra decode work on
high-entropy float columns) emerge from the data rather than from constants.

All encodings implement the small :class:`Encoding` interface:
``encode`` → opaque state, ``decode`` → the original numpy array,
``encoded_bytes`` → approximate storage footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class Encoding:
    """Interface for column encodings."""

    name: str = "base"

    def encode(self, values: np.ndarray) -> None:
        raise NotImplementedError

    def decode(self) -> np.ndarray:
        raise NotImplementedError

    def encoded_bytes(self) -> int:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


@dataclass
class PlainEncoding(Encoding):
    """No compression; the baseline every other encoding is compared against."""

    name: str = "plain"

    def __post_init__(self):
        self._values: np.ndarray | None = None

    def encode(self, values: np.ndarray) -> None:
        self._values = np.asarray(values).copy()

    def decode(self) -> np.ndarray:
        if self._values is None:
            return np.empty(0)
        return self._values.copy()

    def encoded_bytes(self) -> int:
        return 0 if self._values is None else self._values.nbytes

    def __len__(self) -> int:
        return 0 if self._values is None else len(self._values)


@dataclass
class RunLengthEncoding(Encoding):
    """Run-length encoding: ``(value, run_length)`` pairs.

    Best for sorted or low-cardinality columns (disease ids, gender, GO
    membership flags).
    """

    name: str = "rle"

    def __post_init__(self):
        self._run_values: np.ndarray | None = None
        self._run_lengths: np.ndarray | None = None
        self._dtype = None
        self._length = 0

    def encode(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        self._dtype = values.dtype
        self._length = len(values)
        if len(values) == 0:
            self._run_values = values.copy()
            self._run_lengths = np.empty(0, dtype=np.int64)
            return
        change_points = np.flatnonzero(values[1:] != values[:-1]) + 1
        starts = np.concatenate([[0], change_points])
        ends = np.concatenate([change_points, [len(values)]])
        self._run_values = values[starts].copy()
        self._run_lengths = (ends - starts).astype(np.int64)

    def decode(self) -> np.ndarray:
        if self._run_values is None:
            return np.empty(0)
        return np.repeat(self._run_values, self._run_lengths)

    def encoded_bytes(self) -> int:
        if self._run_values is None:
            return 0
        return self._run_values.nbytes + self._run_lengths.nbytes

    def __len__(self) -> int:
        return self._length

    @property
    def run_count(self) -> int:
        return 0 if self._run_values is None else len(self._run_values)


@dataclass
class DictionaryEncoding(Encoding):
    """Dictionary encoding: distinct values + small integer codes.

    Best for moderate-cardinality columns (function codes, zipcodes).
    """

    name: str = "dictionary"

    def __post_init__(self):
        self._dictionary: np.ndarray | None = None
        self._codes: np.ndarray | None = None

    def encode(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        self._dictionary, codes = np.unique(values, return_inverse=True)
        # Use the narrowest integer width that can hold the codes.
        n_distinct = len(self._dictionary)
        if n_distinct <= np.iinfo(np.uint8).max + 1:
            dtype = np.uint8
        elif n_distinct <= np.iinfo(np.uint16).max + 1:
            dtype = np.uint16
        else:
            dtype = np.uint32
        self._codes = codes.astype(dtype)

    def decode(self) -> np.ndarray:
        if self._dictionary is None or self._codes is None:
            return np.empty(0)
        return self._dictionary[self._codes]

    def encoded_bytes(self) -> int:
        if self._dictionary is None or self._codes is None:
            return 0
        return self._dictionary.nbytes + self._codes.nbytes

    def __len__(self) -> int:
        return 0 if self._codes is None else len(self._codes)

    @property
    def cardinality(self) -> int:
        return 0 if self._dictionary is None else len(self._dictionary)


@dataclass
class DeltaEncoding(Encoding):
    """Delta encoding for monotone / slowly varying integer columns.

    Stores the first value and the differences, using a narrow dtype when
    the deltas are small (positions, patient ids, gene ids).
    """

    name: str = "delta"

    def __post_init__(self):
        self._first = None
        self._deltas: np.ndarray | None = None
        self._dtype = None

    def encode(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        self._dtype = values.dtype
        if len(values) == 0:
            self._first = None
            self._deltas = np.empty(0, dtype=np.int64)
            return
        self._first = values[0]
        deltas = np.diff(values.astype(np.int64))
        if len(deltas) and np.abs(deltas).max() <= np.iinfo(np.int16).max:
            deltas = deltas.astype(np.int16)
        elif len(deltas) and np.abs(deltas).max() <= np.iinfo(np.int32).max:
            deltas = deltas.astype(np.int32)
        self._deltas = deltas

    def decode(self) -> np.ndarray:
        if self._first is None:
            return np.empty(0, dtype=self._dtype or np.int64)
        restored = np.concatenate(
            [[np.int64(self._first)], np.int64(self._first) + np.cumsum(self._deltas, dtype=np.int64)]
        )
        return restored.astype(self._dtype)

    def encoded_bytes(self) -> int:
        if self._deltas is None:
            return 0
        return 8 + self._deltas.nbytes

    def __len__(self) -> int:
        if self._first is None:
            return 0
        return len(self._deltas) + 1


def best_encoding(values: np.ndarray) -> Encoding:
    """Pick the smallest applicable encoding for a column.

    Float columns with many distinct values stay plain; integer columns try
    RLE, dictionary and delta and keep whichever is smallest (ties go to the
    simpler encoding in the order plain → RLE → dictionary → delta).
    """
    values = np.asarray(values)
    candidates: list[Encoding] = [PlainEncoding()]
    if values.size:
        if np.issubdtype(values.dtype, np.integer) or np.issubdtype(values.dtype, np.bool_):
            candidates.extend([RunLengthEncoding(), DictionaryEncoding(), DeltaEncoding()])
        else:
            # RLE still wins for constant/low-cardinality float columns.
            candidates.append(RunLengthEncoding())
            distinct = len(np.unique(values[: min(len(values), 10_000)]))
            if distinct <= 4096:
                candidates.append(DictionaryEncoding())
    best: Encoding | None = None
    best_size = None
    for encoding in candidates:
        encoding.encode(values)
        size = encoding.encoded_bytes()
        if best is None or size < best_size:
            best, best_size = encoding, size
    return best
