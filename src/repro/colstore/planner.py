"""Execute shared logical plans (:mod:`repro.plan`) on the column store.

This is the glue between the engine-agnostic plan layer and the compressed
column tables: a :class:`ColumnStoreCatalog` exposes table schemas and the
encodings' statistics to the optimizer, and :func:`run_plan` lowers an
(optimized) plan onto :class:`~repro.colstore.query.ColumnQuery` — whose
lazy filter pipeline maps range/equality/membership predicates straight
onto the dictionary/RLE/delta fast paths.

Plans may scan either a named :class:`ColumnStore` table or a *binding* —
a base :class:`ColumnQuery` supplied by the caller (the lazy
:class:`~repro.colstore.query.JoinedQuery` builder uses bindings so a
sampled or pre-narrowed input can still join through the fused path).
Joins execute through :func:`~repro.colstore.query.materialise_join`,
honouring the optimizer's build-side annotation and materialising the
(projection-pruned) output *uncompressed*: a join intermediate is consumed
once by the aggregate/pivot on top of it, so re-encoding it would cost
more than it could ever save.

Relational-algebra subtrees produce a :class:`ColumnQuery` (call
``collect()`` for a table); :class:`~repro.plan.logical.Aggregate` returns
``(group_keys, aggregates)`` and :class:`~repro.plan.logical.Pivot`
returns ``(matrix, row_labels, column_labels)``, matching the eager
``ColumnQuery`` methods bit for bit.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.colstore.catalog import ColumnStore
from repro.colstore.query import ColumnQuery, materialise_join
from repro.plan import logical
from repro.plan.expressions import Expression
from repro.plan.logical import explain
from repro.plan.observe import PlanObservation
from repro.plan.optimizer import (
    ColumnStats,
    PlanCatalog,
    cost_annotator,
    optimize,
)
from repro.plan.verify import maybe_verify_rewrite


class ColumnStoreCatalog(PlanCatalog):
    """Expose a :class:`ColumnStore`'s schemas and encoding stats to the optimizer.

    ``bindings`` maps scan names to base :class:`ColumnQuery` objects; a
    bound scan answers schema and statistics questions from its table, and
    its row-count estimate reflects the binding's pre-narrowed selection.
    """

    def __init__(self, store: ColumnStore | None = None,
                 bindings: Mapping[str, ColumnQuery] | None = None):
        self.store = store
        self.bindings = dict(bindings or {})

    def _table_for(self, name: str):
        binding = self.bindings.get(name)
        if binding is not None:
            return binding.table
        if self.store is not None and name in self.store:
            # The *effective* table: a written table answers schema, dtype
            # and statistics questions from its current snapshot (sealed
            # stats widened by the tail), not the stale sealed segment.
            return self.store.effective_table(name)
        return None

    def columns_of(self, table: str) -> list[str] | None:
        found = self._table_for(table)
        return None if found is None else found.column_names

    def stats_of(self, table: str, column: str) -> ColumnStats | None:
        found = self._table_for(table)
        if found is None:
            return None
        try:
            return found.column(column).stats()
        except KeyError:
            return None

    def dtype_of(self, table: str, column: str):
        found = self._table_for(table)
        if found is None:
            return None
        try:
            return found.column(column).dtype
        except KeyError:
            return None

    def row_count_of(self, table: str) -> int | None:
        binding = self.bindings.get(table)
        if binding is not None:
            if binding._base is not None:
                return len(binding._base)
            return binding.table.row_count
        if self.store is not None and table in self.store:
            # Live rows: a written table's deleted rows never reach any
            # operator, so they must not inflate cardinality estimates.
            return self.store.live_row_count(table)
        return None


def optimize_plan(plan: logical.PlanNode, store: ColumnStore | None = None,
                  bindings: Mapping[str, ColumnQuery] | None = None) -> logical.PlanNode:
    """Optimize a plan with the store's (and bindings') schemas and statistics."""
    return optimize(plan, ColumnStoreCatalog(store, bindings))


def explain_plan(plan: logical.PlanNode, store: ColumnStore | None = None,
                 bindings: Mapping[str, ColumnQuery] | None = None) -> str:
    """Render a plan; with a store or bindings, every node carries its
    estimated output rows and filters their structural class + selectivity
    (:func:`repro.plan.optimizer.cost_annotator`)."""
    if store is None and bindings is None:
        return explain(plan)
    catalog = ColumnStoreCatalog(store, bindings)
    return explain(plan, cost_annotator(plan, catalog))


def run_plan(plan: logical.PlanNode, store: ColumnStore | None = None,
             optimized: bool = True,
             bindings: Mapping[str, ColumnQuery] | None = None,
             observation: PlanObservation | None = None):
    """Execute a logical plan against the store and/or scan bindings.

    The single entry point behind every fused pipeline: relational-algebra
    plans return a lazy :class:`ColumnQuery`; an ``Aggregate`` terminal
    returns ``(group_keys, aggregates)`` and a ``Pivot`` terminal returns
    ``(matrix, row_labels, column_labels)``.  A terminal directly above a
    ``Join`` consumes the pruned, uncompressed join output — the fused
    join → aggregate/pivot path.

    Args:
        plan: the logical plan tree.
        store: the column store holding the scanned tables (optional when
            every scan is covered by ``bindings``).
        optimized: apply the rule-based optimizer first (pass False to
            execute the plan exactly as written — the equivalence tests
            compare both paths).
        bindings: scan name → base :class:`ColumnQuery` overrides.
        observation: optional :class:`~repro.plan.observe.PlanObservation`
            filled with the observed output cardinality (the calibration
            counterpart of the optimizer's row estimates).

    With the ``REPRO_VERIFY_PLANS`` debug flag set, every optimizer
    application is checked by the static rewrite-soundness verifier
    (:func:`repro.plan.verify.verify_rewrite`) before execution.

    Scans over *written* tables resolve through snapshots
    (:meth:`~repro.colstore.catalog.ColumnStore.query`), and one run keeps
    a per-execution scan cache so every ``Scan`` of the same table — a
    self-join, a rewritten subtree — reads the **same** frozen version
    even while writers race the execution.
    """
    if optimized:
        written = plan
        plan = optimize_plan(plan, store, bindings)
        maybe_verify_rewrite(written, plan, ColumnStoreCatalog(store, bindings))
    if observation is not None:
        observation.engine = "colstore"
    scans: dict[str, ColumnQuery] = {}
    if isinstance(plan, logical.Aggregate):
        query = _query_for(plan.child, store, bindings, scans)
        keys, aggregates = query.group_aggregate(plan.group_by, plan.value, plan.function)
        if observation is not None:
            observation.output_rows = int(len(keys))
        return keys, aggregates
    if isinstance(plan, logical.Pivot):
        query = _query_for(plan.child, store, bindings, scans)
        matrix, row_labels, column_labels = query.pivot(
            plan.row_key, plan.column_key, plan.value
        )
        if observation is not None:
            observation.output_rows = int(len(row_labels))
            observation.output_cells = int(matrix.size)
        return matrix, row_labels, column_labels
    if isinstance(plan, logical.ApproxAggregate):
        result = _run_approx(plan, store, bindings, scans)
        if observation is not None:
            observation.output_rows = 1
        return result
    query = _query_for(plan, store, bindings, scans)
    if observation is not None:
        observation.output_rows = int(len(query))
    return query


def _scan_query(table_name: str, store: ColumnStore,
                scans: dict[str, ColumnQuery] | None) -> ColumnQuery:
    """One frozen base query per table per plan execution.

    The first scan of a table snapshots it; later scans in the same run
    rewrap that snapshot's table and base selection, so the whole plan
    answers from a single version.
    """
    if scans is None:
        return store.query(table_name)
    base = scans.get(table_name)
    if base is None:
        base = store.query(table_name)
        scans[table_name] = base
    return ColumnQuery(base.table, base._base)


def _query_for(node: logical.PlanNode, store: ColumnStore | None,
               bindings: Mapping[str, ColumnQuery] | None,
               scans: dict[str, ColumnQuery] | None = None) -> ColumnQuery:
    """Lower a relational-algebra subtree onto a lazy ColumnQuery."""
    if isinstance(node, logical.Scan):
        if bindings and node.table in bindings:
            binding = bindings[node.table]
            return ColumnQuery(binding.table, binding._base)
        if store is None:
            raise KeyError(
                f"no binding named {node.table!r} and no store to scan it from"
            )
        return _scan_query(node.table, store, scans)
    if isinstance(node, logical.Filter):
        predicate: Expression = node.predicate
        return _query_for(node.child, store, bindings, scans).where(predicate)
    if isinstance(node, logical.Project):
        return _query_for(node.child, store, bindings, scans).select(*node.columns)
    if isinstance(node, logical.Sample):
        return _query_for(node.child, store, bindings, scans).sample(
            node.fraction, node.seed
        )
    if isinstance(node, logical.Join):
        left = _query_for(node.left, store, bindings, scans)
        right = _query_for(node.right, store, bindings, scans)
        table = materialise_join(
            left, right, node.left_key, node.right_key,
            result_name=node.result_name, build=node.build_side, compress=False,
        )
        return ColumnQuery(table)
    raise TypeError(f"cannot execute plan node {type(node).__name__} on the column store")


def _sampled_base(node: logical.PlanNode, store: ColumnStore | None,
                  bindings: Mapping[str, ColumnQuery] | None,
                  fraction: float, seed: int,
                  scans: dict[str, ColumnQuery] | None = None) -> tuple[ColumnQuery, int]:
    """Lower ``Sample(node)`` and return ``(sampled query, pre-sample rows)``.

    A ``Project*(Scan)`` sample is served from the store's synopsis
    catalog — projections never change the row set, so the cached
    selection applies verbatim (the projection-pruning rule routinely
    narrows the scan below the sample).  Repeated approximate queries
    over the same ``(table, fraction, seed)`` then reuse one cached
    selection; the catalog builds through ``ColumnQuery.sample`` so the
    rows are bit-identical either way.
    """
    inner, projection = node, None
    while isinstance(inner, logical.Project):
        if projection is None:  # the outermost projection wins
            projection = inner.columns
        inner = inner.child
    if (isinstance(inner, logical.Scan) and store is not None
            and inner.table in store
            and not (bindings and inner.table in bindings)):
        table = store.effective_table(inner.table)
        selection = store.synopses.uniform(inner.table, fraction, seed)
        sampled = ColumnQuery(table, selection)
        if projection is not None:
            sampled = sampled.select(*projection)
        return sampled, store.live_row_count(inner.table)
    base = _query_for(node, store, bindings, scans)
    return base.sample(fraction, seed), len(base)


def _run_approx(plan: logical.ApproxAggregate, store: ColumnStore | None,
                bindings: Mapping[str, ColumnQuery] | None,
                scans: dict[str, ColumnQuery] | None = None):
    """Execute an ``ApproxAggregate`` terminal → :class:`ApproxResult`.

    Sketch kinds stream the child selection through the encoding-level
    ``sketch_pairs`` builders (whole RLE runs folded, dictionary keys
    hashed once).  Sampled kinds locate the ``Sample`` stage: sample-last
    plans use population-known CLT bounds (with finite-population
    correction against the pre-sample count); filters *above* the sample
    fall back to Horvitz–Thompson bounds with the realised inclusion
    fraction; a plan with no sample at all returns the exact answer with
    a zero-width interval.
    """
    from repro.colstore import sketches

    # Surface invalid-confidence / non-mergeable-aggregate before touching
    # data; column existence and dtype are checked by the store itself.
    plan.output_schema({plan.value: np.dtype(np.float64)})
    if plan.kind in logical.SKETCH_APPROX_KINDS:
        query = _query_for(plan.child, store, bindings, scans)
        selection = None if query._full_selection else query.selection
        column = query.table.column(plan.value)
        if plan.kind == "approx_distinct":
            return column.hll_sketch(selection).result(plan.confidence)
        return column.tdigest_sketch(selection).result(plan.quantile, plan.confidence)

    fraction, seed = plan.fraction, plan.seed
    sample_child: logical.PlanNode | None = None
    above: list[logical.PlanNode] = []  # Filter/Project stages above the sample
    if fraction is not None:
        sample_child = plan.child  # inline opt-in ≡ Sample as immediate child
    else:
        cursor = plan.child
        while isinstance(cursor, (logical.Filter, logical.Project)):
            above.append(cursor)
            cursor = cursor.child
        if isinstance(cursor, logical.Sample):
            fraction, seed = cursor.fraction, cursor.seed
            sample_child = cursor.child

    if sample_child is None:  # no sampling anywhere: exact, zero-width interval
        query = _query_for(plan.child, store, bindings, scans)
        if plan.kind == "approx_count":
            exact = float(len(query))
        else:
            values = query.column(plan.value).astype(np.float64)
            exact = float(values.sum()) if plan.kind == "approx_sum" else (
                float(values.mean()) if len(values) else float("nan"))
        return sketches.ApproxResult(exact, exact, exact, plan.confidence)

    sampled, population = _sampled_base(sample_child, store, bindings,
                                        fraction, seed, scans)
    realised = len(sampled) / population if population else 0.0
    query, filtered = sampled, False
    for step in reversed(above):
        if isinstance(step, logical.Filter):
            query = query.where(step.predicate)
            filtered = True
        else:
            query = query.select(*step.columns)
    known = None if filtered else population
    if plan.kind == "approx_count":
        return sketches.sampled_count(len(query), realised, plan.confidence,
                                      population=known)
    values = query.column(plan.value)
    if plan.kind == "approx_sum":
        return sketches.sampled_sum(values, realised, plan.confidence,
                                    population=known)
    return sketches.sampled_mean(values, realised, plan.confidence)
