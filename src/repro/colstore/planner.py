"""Execute shared logical plans (:mod:`repro.plan`) on the column store.

This is the glue between the engine-agnostic plan layer and the compressed
column tables: a :class:`ColumnStoreCatalog` exposes table schemas and the
encodings' statistics to the optimizer, and :func:`run_plan` lowers an
(optimized) plan onto :class:`~repro.colstore.query.ColumnQuery` — whose
lazy filter pipeline maps range/equality/membership predicates straight
onto the dictionary/RLE/delta fast paths.

Relational-algebra subtrees produce a :class:`ColumnQuery` (call
``collect()`` for a table); :class:`~repro.plan.logical.Aggregate` returns
``(group_keys, aggregates)`` and :class:`~repro.plan.logical.Pivot`
returns ``(matrix, row_labels, column_labels)``, matching the eager
``ColumnQuery`` methods bit for bit.
"""

from __future__ import annotations

from repro.colstore.catalog import ColumnStore
from repro.colstore.query import ColumnQuery
from repro.plan import logical
from repro.plan.expressions import Expression
from repro.plan.logical import explain
from repro.plan.optimizer import (
    ColumnStats,
    PlanCatalog,
    optimize,
    selectivity_annotator,
)


class ColumnStoreCatalog(PlanCatalog):
    """Expose a :class:`ColumnStore`'s schemas and encoding stats to the optimizer."""

    def __init__(self, store: ColumnStore):
        self.store = store

    def columns_of(self, table: str) -> list[str] | None:
        if table not in self.store:
            return None
        return self.store.table(table).column_names

    def stats_of(self, table: str, column: str) -> ColumnStats | None:
        if table not in self.store:
            return None
        try:
            return self.store.table(table).column(column).stats()
        except KeyError:
            return None


def optimize_plan(plan: logical.PlanNode, store: ColumnStore) -> logical.PlanNode:
    """Optimize a plan with the store's schemas and statistics."""
    return optimize(plan, ColumnStoreCatalog(store))


def explain_plan(plan: logical.PlanNode, store: ColumnStore | None = None) -> str:
    """Render a plan; with a store, filters carry selectivity estimates."""
    if store is None:
        return explain(plan)
    catalog = ColumnStoreCatalog(store)
    return explain(plan, selectivity_annotator(plan, catalog))


def run_plan(plan: logical.PlanNode, store: ColumnStore, optimized: bool = True):
    """Execute a logical plan against the store.

    Args:
        plan: the logical plan tree.
        store: the column store holding the scanned tables.
        optimized: apply the rule-based optimizer first (pass False to
            execute the plan exactly as written — the equivalence tests
            compare both paths).
    """
    if optimized:
        plan = optimize_plan(plan, store)
    if isinstance(plan, logical.Aggregate):
        query = _query_for(plan.child, store)
        return query.group_aggregate(plan.group_by, plan.value, plan.function)
    if isinstance(plan, logical.Pivot):
        query = _query_for(plan.child, store)
        return query.pivot(plan.row_key, plan.column_key, plan.value)
    return _query_for(plan, store)


def _query_for(node: logical.PlanNode, store: ColumnStore) -> ColumnQuery:
    """Lower a relational-algebra subtree onto a lazy ColumnQuery."""
    if isinstance(node, logical.Scan):
        return store.query(node.table)
    if isinstance(node, logical.Filter):
        predicate: Expression = node.predicate
        return _query_for(node.child, store).where(predicate)
    if isinstance(node, logical.Project):
        return _query_for(node.child, store).select(*node.columns)
    if isinstance(node, logical.Sample):
        return _query_for(node.child, store).sample(node.fraction, node.seed)
    if isinstance(node, logical.Join):
        left = _query_for(node.left, store)
        right = _query_for(node.right, store)
        table = left.join(
            right, node.left_key, node.right_key, result_name=node.result_name
        )
        return ColumnQuery(table)
    raise TypeError(f"cannot execute plan node {type(node).__name__} on the column store")
