"""Reusable sample synopses: build once per table version, reuse across queries.

A synopsis is a *narrowed selection* — a sorted ``int64`` array of base-row
positions — drawn once with an explicit seed and cached, so every
approximate query over the same ``(table, fraction, seed)`` reuses the
same rows instead of re-scoring the table (the VerdictDB "scramble"
lifecycle: pay the sampling scan once, answer many queries from it).

Two kinds:

- **uniform** — exactly the rows :meth:`repro.colstore.query.ColumnQuery.sample`
  would keep on a full-table query, which is what makes the optimizer's
  synopsis routing (:func:`repro.plan.optimizer.route_through_synopsis`)
  a pure caching rewrite: the sampled row set is bit-identical whether it
  comes from the catalog or from an inline ``Sample``.
- **stratified-by-column** — the same rank-by-score draw applied within
  each distinct value of a stratification column, keeping
  ``max(1, round(fraction * group_rows))`` rows per stratum so rare groups
  survive sampling (uniform samples starve small disease cohorts).

Everything is deterministic: the only randomness is ``default_rng(seed)``
with the caller's explicit seed.

**Writes and staleness.**  A cached selection is only valid for the table
version it was drawn from — serving it after an append would silently
exclude the new rows from every approximate answer.  Cache keys therefore
carry the table's :meth:`~repro.colstore.catalog.ColumnStore.store_version`,
and the store's write hook calls :meth:`SynopsisCatalog.invalidate` so
superseded entries are dropped eagerly rather than accumulating one
selection per version.
"""

from __future__ import annotations

import numpy as np

from repro.colstore.query import ColumnQuery


class SynopsisCatalog:
    """Per-store cache of sample synopses, keyed by build parameters + version."""

    def __init__(self, store):
        self._store = store
        self._selections: dict[tuple, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._selections)

    def _version(self, table_name: str) -> int:
        return self._store.store_version(table_name)

    def invalidate(self, table_name: str) -> None:
        """Drop every cached synopsis of ``table_name`` (called on writes)."""
        stale = [key for key in self._selections if key[1] == table_name]
        for key in stale:
            del self._selections[key]

    def uniform(self, table_name: str, fraction: float, seed: int = 0) -> np.ndarray:
        """The uniform synopsis selection for ``(table, fraction, seed)``.

        Built on first request by delegating to ``ColumnQuery.sample`` on a
        full-table query — the synopsis *is* that sample's row set — then
        cached; later calls return the stored selection. Treat it as
        read-only (it is shared across queries).  On a written table the
        draw runs over a current snapshot's live rows, and the cache key's
        version component retires the entry at the next write.
        """
        key = ("uniform", table_name, float(fraction), int(seed),
               self._version(table_name))
        selection = self._selections.get(key)
        if selection is None:
            query = self._store.query(table_name).sample(fraction, seed)
            selection = np.asarray(query.selection, dtype=np.int64)
            self._selections[key] = selection
        return selection

    def stratified(self, table_name: str, column: str, fraction: float,
                   seed: int = 0) -> np.ndarray:
        """A stratified-by-``column`` synopsis selection.

        Within each distinct value of ``column``, keeps the
        ``max(1, round(fraction * group_rows))`` rows with the smallest
        ``default_rng(seed)`` scores — the same rank-by-score rule the
        uniform sample uses, applied per stratum, so every group is
        represented at (at least) the requested rate.  On a written table
        the strata are formed over the snapshot's live rows only.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"synopsis fraction {fraction!r} outside (0, 1]")
        key = ("stratified", table_name, column, float(fraction), int(seed),
               self._version(table_name))
        selection = self._selections.get(key)
        if selection is None:
            query = self._store.query(table_name)
            table = query.table
            scores = np.random.default_rng(seed).random(table.row_count)
            base = None if query._full_selection else query.selection
            rows = np.arange(table.row_count, dtype=np.int64) if base is None else base
            _, inverse = table.column(column).distinct_inverse(base)
            inverse = np.asarray(inverse, dtype=np.int64)
            counts = np.bincount(inverse)
            # Order rows by (stratum, score): each stratum's cheapest rows
            # come first within its contiguous block.
            order = np.lexsort((scores[rows], inverse))
            starts = np.cumsum(counts) - counts
            rank_in_group = np.arange(len(order)) - np.repeat(starts, counts)
            keep_per_group = np.maximum(
                1, np.round(fraction * counts).astype(np.int64)
            )
            kept = rows[order[rank_in_group < np.repeat(keep_per_group, counts)]]
            selection = np.sort(kept).astype(np.int64)
            self._selections[key] = selection
        return selection

    def query(self, table_name: str, selection: np.ndarray) -> ColumnQuery:
        """Wrap a synopsis selection as a query over its base table."""
        return ColumnQuery(self._store.effective_table(table_name), selection)

    def describe(self) -> dict[tuple, int]:
        """Built synopses and their row counts (for EXPLAIN-style output)."""
        return {key: len(sel) for key, sel in sorted(self._selections.items(),
                                                     key=lambda kv: repr(kv[0]))}
