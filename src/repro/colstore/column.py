"""Typed, compressed column vectors."""

from __future__ import annotations

import numpy as np

from repro.colstore.compression import (
    Encoding,
    PlainEncoding,
    best_encoding,
    predicate_mask,
)


class ColumnVector:
    """One named column stored in compressed form.

    The column keeps only its encoded representation; ``values()`` decodes on
    demand and caches the decoded array until the column is mutated, so
    repeated scans of the same column pay the decode cost once (the usual
    column-store buffer-pool behaviour).
    """

    def __init__(self, name: str, values: np.ndarray, compress: bool = True):
        if not name:
            raise ValueError("column name must be non-empty")
        self.name = name
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("a column must be one-dimensional")
        self.dtype = values.dtype
        self._encoding: Encoding
        if compress:
            self._encoding = best_encoding(values)
        else:
            self._encoding = PlainEncoding()
            self._encoding.encode(values)
        self._cache: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._encoding)

    def __repr__(self) -> str:
        return (
            f"ColumnVector({self.name!r}, n={len(self)}, "
            f"encoding={self._encoding.name}, bytes={self.encoded_bytes})"
        )

    @property
    def encoding_name(self) -> str:
        return self._encoding.name

    @property
    def encoded_bytes(self) -> int:
        return self._encoding.encoded_bytes()

    @property
    def supports_distinct_pushdown(self) -> bool:
        """True when predicates evaluate on distinct values only (dict/RLE)."""
        return self._encoding.supports_distinct_pushdown

    def values(self) -> np.ndarray:
        """Decode (and cache) the full column."""
        if self._cache is None:
            self._cache = self._encoding.decode()
        return self._cache

    def take(self, indices: np.ndarray) -> np.ndarray:
        """Gather the values at ``indices`` (late materialisation step).

        Uses the encoding's compressed gather when the column has not been
        decoded yet; once the decode cache exists, plain fancy indexing on it
        is the cheapest path.  Encodings whose gather costs O(index span)
        (delta's prefix-sum window) decode-and-cache instead once the span
        covers most of the column, so repeated wide gathers pay the decode
        only once.
        """
        if self._cache is not None:
            return self._cache[np.asarray(indices)]
        indices = np.asarray(indices)
        if not self._encoding.cheap_random_access and indices.size:
            low, high = int(indices.min()), int(indices.max())
            if low < 0 or high - low + 1 >= len(self) // 2:
                return self.values()[indices]
        return self._encoding.take(indices)

    def filter_mask(self, predicate) -> np.ndarray:
        """Full-length boolean mask for a vectorised *element-wise* predicate.

        Dictionary/RLE columns evaluate the predicate on their distinct
        values only and expand the verdicts through codes/runs — the
        predicate therefore must not depend on the shape or order of its
        input.
        """
        if self._encoding.supports_distinct_pushdown:
            return self._encoding.filter_mask(predicate)
        return predicate_mask(self.values(), predicate)

    def isin(self, values: np.ndarray) -> np.ndarray:
        """Full-length boolean membership mask, pushed down the encoding."""
        if self._encoding.supports_distinct_pushdown:
            return self._encoding.isin(values)
        return np.isin(self.values(), values)

    def appended(self, values: np.ndarray) -> "ColumnVector":
        """Return a new column with ``values`` appended (columns are immutable)."""
        combined = np.concatenate([self.values(), np.asarray(values, dtype=self.dtype)])
        return ColumnVector(self.name, combined)
