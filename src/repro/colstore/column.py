"""Typed, compressed column vectors."""

from __future__ import annotations

import numpy as np

from repro.colstore.compression import Encoding, PlainEncoding, best_encoding


class ColumnVector:
    """One named column stored in compressed form.

    The column keeps only its encoded representation; ``values()`` decodes on
    demand and caches the decoded array until the column is mutated, so
    repeated scans of the same column pay the decode cost once (the usual
    column-store buffer-pool behaviour).
    """

    def __init__(self, name: str, values: np.ndarray, compress: bool = True):
        if not name:
            raise ValueError("column name must be non-empty")
        self.name = name
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("a column must be one-dimensional")
        self.dtype = values.dtype
        self._encoding: Encoding
        if compress:
            self._encoding = best_encoding(values)
        else:
            self._encoding = PlainEncoding()
            self._encoding.encode(values)
        self._cache: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._encoding)

    def __repr__(self) -> str:
        return (
            f"ColumnVector({self.name!r}, n={len(self)}, "
            f"encoding={self._encoding.name}, bytes={self.encoded_bytes})"
        )

    @property
    def encoding_name(self) -> str:
        return self._encoding.name

    @property
    def encoded_bytes(self) -> int:
        return self._encoding.encoded_bytes()

    def values(self) -> np.ndarray:
        """Decode (and cache) the full column."""
        if self._cache is None:
            self._cache = self._encoding.decode()
        return self._cache

    def take(self, indices: np.ndarray) -> np.ndarray:
        """Gather the values at ``indices`` (late materialisation step)."""
        return self.values()[indices]

    def filter_mask(self, predicate) -> np.ndarray:
        """Apply a vectorised predicate to the whole column, returning a bool mask."""
        return np.asarray(predicate(self.values()), dtype=bool)

    def appended(self, values: np.ndarray) -> "ColumnVector":
        """Return a new column with ``values`` appended (columns are immutable)."""
        combined = np.concatenate([self.values(), np.asarray(values, dtype=self.dtype)])
        return ColumnVector(self.name, combined)
