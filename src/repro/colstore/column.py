"""Typed, compressed column vectors."""

from __future__ import annotations

import numpy as np

from repro.colstore.compression import (
    Encoding,
    PlainEncoding,
    best_encoding,
    make_encoding,
    predicate_mask,
    reduce_by_inverse,
    sorted_distinct,
    sorted_distinct_inverse,
)
from repro.colstore.sketches import HyperLogLog, TDigest
from repro.plan.optimizer import ColumnStats


class ColumnVector:
    """One named column stored in compressed form.

    The column keeps only its encoded representation; ``values()`` decodes on
    demand and caches the decoded array until the column is mutated, so
    repeated scans of the same column pay the decode cost once (the usual
    column-store buffer-pool behaviour).
    """

    def __init__(self, name: str, values: np.ndarray, compress: bool = True,
                 encoding: str | None = None):
        if not name:
            raise ValueError("column name must be non-empty")
        self.name = name
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("a column must be one-dimensional")
        self.dtype = values.dtype
        self._encoding: Encoding
        if encoding is not None:
            self._encoding = make_encoding(encoding, values)
        elif compress:
            self._encoding = best_encoding(values)
        else:
            self._encoding = PlainEncoding()
            self._encoding.encode(values)
        self._cache: np.ndarray | None = None
        self._stats: ColumnStats | None = None

    def __len__(self) -> int:
        return len(self._encoding)

    def __repr__(self) -> str:
        return (
            f"ColumnVector({self.name!r}, n={len(self)}, "
            f"encoding={self._encoding.name}, bytes={self.encoded_bytes})"
        )

    @property
    def encoding_name(self) -> str:
        return self._encoding.name

    @property
    def encoded_bytes(self) -> int:
        return self._encoding.encoded_bytes()

    @property
    def supports_distinct_pushdown(self) -> bool:
        """True when predicates evaluate on distinct values only (dict/RLE)."""
        return self._encoding.supports_distinct_pushdown

    def stats(self) -> ColumnStats:
        """Cheap column statistics for the planner's selectivity estimates.

        Answered from encoding metadata where possible (dictionary
        cardinality and endpoints, RLE run values, a monotone delta
        column's first/last value, a plain column's stored array).
        Statistics never *force* a decode: a column whose encoding has no
        hint only gets min/max when its decode cache already exists,
        otherwise the bounds stay unknown and the planner falls back to
        the default selectivity.  Computed once and cached.
        """
        if self._stats is None:
            distinct, minimum, maximum = self._encoding.stats_hint()
            if self.dtype.kind not in "biuf":
                # Non-numeric columns have no usable range: a string
                # dictionary's lexicographic endpoints may even parse as
                # floats ('100' < '99') and invert the bounds.
                minimum = maximum = None
            minimum = self._finite_or_none(minimum)
            maximum = self._finite_or_none(maximum)
            if (
                (minimum is None or maximum is None)
                and self._cache is not None
                and len(self)
                and self.dtype.kind in "biuf"
            ):
                minimum = self._finite_or_none(self._cache.min())
                maximum = self._finite_or_none(self._cache.max())
            self._stats = ColumnStats(len(self), distinct, minimum, maximum)
        return self._stats

    @staticmethod
    def _finite_or_none(value) -> float | None:
        """Coerce a statistics bound to a finite float (None otherwise)."""
        if value is None:
            return None
        try:
            number = float(value)
        except (TypeError, ValueError):
            return None
        return number if np.isfinite(number) else None

    def values(self) -> np.ndarray:
        """Decode (and cache) the full column."""
        if self._cache is None:
            self._cache = self._encoding.decode()  # decode-ok: explicit full-materialisation API
        return self._cache

    def take(self, indices: np.ndarray) -> np.ndarray:
        """Gather the values at ``indices`` (late materialisation step).

        Uses the encoding's compressed gather when the column has not been
        decoded yet; once the decode cache exists, plain fancy indexing on it
        is the cheapest path.  Encodings whose gather costs O(index span)
        (delta's prefix-sum window) decode-and-cache instead once the span
        covers most of the column, so repeated wide gathers pay the decode
        only once.
        """
        if self._cache is not None:
            return self._cache[np.asarray(indices)]
        indices = np.asarray(indices)
        if not self._encoding.cheap_random_access and indices.size:
            low, high = int(indices.min()), int(indices.max())
            if low < 0 or high - low + 1 >= len(self) // 2:
                return self.values()[indices]
        return self._encoding.take(indices)

    def filter_mask(self, predicate) -> np.ndarray:
        """Full-length boolean mask for a vectorised *element-wise* predicate.

        Dictionary/RLE columns evaluate the predicate on their distinct
        values only and expand the verdicts through codes/runs — the
        predicate therefore must not depend on the shape or order of its
        input.
        """
        if self._encoding.supports_distinct_pushdown:
            return self._encoding.filter_mask(predicate)
        return predicate_mask(self.values(), predicate)

    def isin(self, values: np.ndarray) -> np.ndarray:
        """Full-length boolean membership mask, pushed down the encoding."""
        if self._encoding.supports_distinct_pushdown:
            return self._encoding.isin(values)
        return np.isin(self.values(), values)

    def distinct_inverse(
        self, selection: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sorted distinct values and per-row group codes (``np.unique`` contract).

        Restricted to ``selection`` when given.  Dictionary/RLE columns
        answer from their codes/runs without decoding.  Other encodings
        group the decoded values — a whole-column grouping decodes through
        the column cache (so repeated aggregations pay the decode once), and
        a monotone delta column keeps its linear change-point scan over the
        cached values.  Key and code values match
        ``np.unique(..., return_inverse=True)`` exactly, though the code
        dtype may be narrower; the arrays may alias column state — treat
        them as read-only.
        """
        if self._encoding.supports_distinct_pushdown:
            return self._encoding.distinct_inverse(selection)
        if selection is not None:
            if self._cache is not None:
                return np.unique(self._cache[np.asarray(selection)], return_inverse=True)
            # Narrow selections gather via the encoding without a full decode.
            return self._encoding.distinct_inverse(selection)
        values = self.values()  # decode once, populate the cache
        if getattr(self._encoding, "is_monotone", False):
            return sorted_distinct_inverse(values)
        return np.unique(values, return_inverse=True)

    def distinct_values(self, selection: np.ndarray | None = None) -> np.ndarray:
        """Sorted distinct values only — skips the inverse entirely.

        RLE answers from its run values, dictionary from its (compacted)
        dictionary; same cache behaviour and read-only aliasing caveat as
        :meth:`distinct_inverse`.
        """
        if self._encoding.supports_distinct_pushdown:
            return self._encoding.distinct_values(selection)
        if selection is not None:
            if self._cache is not None:
                return np.unique(self._cache[np.asarray(selection)])
            return self._encoding.distinct_values(selection)
        values = self.values()  # decode once, populate the cache
        if getattr(self._encoding, "is_monotone", False):
            return sorted_distinct(values)
        return np.unique(values)

    def group_reduce(
        self,
        values: np.ndarray | None,
        function: str,
        selection: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Grouped reduction of ``values`` keyed by this column.

        ``values`` must be aligned with the grouped rows (the whole column,
        or ``selection`` when given); for ``count`` they are never read and
        may be None.  Dictionary columns aggregate straight over their
        stored codes; RLE columns fold whole runs into partial
        counts/sums/extrema; everything else groups via
        :meth:`distinct_inverse` (cache-aware).
        """
        if self._encoding.supports_distinct_pushdown:
            return self._encoding.group_reduce(values, function, selection)
        keys, inverse = self.distinct_inverse(selection)
        return keys, reduce_by_inverse(inverse, len(keys), values, function)

    def hll_sketch(self, selection: np.ndarray | None = None,
                   p: int = 12) -> HyperLogLog:
        """Build a HyperLogLog distinct-count sketch over this column.

        Streams the encoding's :meth:`~repro.colstore.compression.Encoding.sketch_pairs`
        — an RLE column hashes each run value once, a dictionary column each
        dictionary key once — restricted to ``selection`` when given.  The
        returned sketch merges with any other built at the same precision
        (the cluster bridge reduces per-partition sketches driver-side).
        """
        values, _ = self._encoding.sketch_pairs(selection)
        return HyperLogLog(p).add_array(values)

    def tdigest_sketch(self, selection: np.ndarray | None = None,
                       compression: int = 256,
                       buffer_limit: int = 4096) -> TDigest:
        """Build a t-digest quantile sketch over this column.

        The weighted :meth:`~repro.colstore.compression.Encoding.sketch_pairs`
        stream feeds run values weighted by run lengths (RLE) or dictionary
        keys weighted by code counts (dictionary), so low-cardinality
        columns build an *exact* digest without ever expanding rows.
        """
        values, weights = self._encoding.sketch_pairs(selection)
        return TDigest(compression, buffer_limit).add_array(values, weights)

    def coerce(self, values: np.ndarray) -> np.ndarray:
        """Cast incoming values to this column's dtype, refusing lossy casts.

        ``same_kind`` casting rejects float→int truncation outright, and
        string values wider than the column's fixed width raise instead of
        being silently clipped — the write path's (``DeltaStore.append``)
        admission rule.
        """
        values = np.atleast_1d(np.asarray(values))
        if values.ndim != 1:
            raise ValueError(f"column {self.name!r}: values must be 1-d")
        coerced = values.astype(self.dtype, casting="same_kind", copy=True)
        if self.dtype.kind in "US" and values.dtype.kind in "US":
            if (coerced != values).any():
                raise ValueError(
                    f"column {self.name!r}: value too wide for dtype {self.dtype}"
                )
        return coerced

    def appended(self, values: np.ndarray) -> "ColumnVector":
        """Return a new column with ``values`` appended (columns are immutable)."""
        combined = np.concatenate([self.values(), np.asarray(values, dtype=self.dtype)])
        return ColumnVector(self.name, combined)
