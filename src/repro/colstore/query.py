"""Vectorised query execution over column tables.

A :class:`ColumnQuery` carries a reference to its base table plus a
*selection vector* (integer row positions that survive the filters so far)
— the late-materialisation execution style of real column stores.  Filters
narrow the selection vector using whole-column vectorised comparisons;
``columns()`` / ``to_matrix()`` gather only what the caller asks for.

Joins produce a new in-memory :class:`ColumnTable` built from gathered
columns (a materialised join result), since GenBase's join outputs feed
either a pivot or an aggregate immediately afterwards.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.colstore.table import ColumnTable


class ColumnQuery:
    """A query over one column table with an accumulated selection vector."""

    def __init__(self, table: ColumnTable, selection: np.ndarray | None = None):
        self.table = table
        if selection is None:
            selection = np.arange(table.row_count, dtype=np.int64)
        self.selection = np.asarray(selection, dtype=np.int64)

    # -- filtering -----------------------------------------------------------------

    def where(self, column: str, predicate: Callable[[np.ndarray], np.ndarray]) -> "ColumnQuery":
        """Keep rows where ``predicate(column_values)`` is True.

        The predicate receives the *already selected* values of the column
        and must return a boolean array of the same length.
        """
        values = self.table.column(column).take(self.selection)
        mask = np.asarray(predicate(values), dtype=bool)
        if mask.shape != values.shape:
            raise ValueError("predicate must return one boolean per input value")
        return ColumnQuery(self.table, self.selection[mask])

    def where_in(self, column: str, values: Sequence) -> "ColumnQuery":
        """Keep rows whose column value is in ``values``."""
        lookup = np.asarray(list(values))
        return self.where(column, lambda v: np.isin(v, lookup))

    def sample(self, fraction: float, seed: int = 0) -> "ColumnQuery":
        """Keep a deterministic random sample of the current selection."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        n_keep = max(1, int(round(fraction * len(self.selection))))
        chosen = rng.choice(len(self.selection), size=n_keep, replace=False)
        return ColumnQuery(self.table, np.sort(self.selection[chosen]))

    # -- inspection -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.selection)

    def column(self, name: str) -> np.ndarray:
        """Materialise one column restricted to the current selection."""
        return self.table.column(name).take(self.selection)

    def columns(self, names: Sequence[str]) -> dict[str, np.ndarray]:
        """Materialise several columns restricted to the current selection."""
        return {name: self.column(name) for name in names}

    def to_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Materialise the named columns side by side as a float matrix."""
        if not names:
            return np.empty((len(self.selection), 0))
        return np.column_stack([self.column(name).astype(np.float64) for name in names])

    def to_table(self, name: str, names: Sequence[str] | None = None) -> ColumnTable:
        """Materialise the current selection as a new column table."""
        names = list(names) if names is not None else self.table.column_names
        return ColumnTable.from_arrays(name, self.columns(names))

    # -- joins ------------------------------------------------------------------------

    def join(
        self,
        other: "ColumnQuery",
        left_key: str,
        right_key: str,
        columns: Mapping[str, str] | None = None,
        other_columns: Mapping[str, str] | None = None,
        result_name: str = "join_result",
    ) -> ColumnTable:
        """Vectorised equi-join, materialising the requested output columns.

        Args:
            other: the probe-side query.
            left_key: join key column in this query's table.
            right_key: join key column in ``other``'s table.
            columns: mapping of output name → this table's column name; the
                default keeps all of this table's columns.
            other_columns: mapping of output name → other table's column
                name; the default keeps all of the other table's columns
                except its join key.
            result_name: name for the materialised result table.
        """
        if columns is None:
            columns = {name: name for name in self.table.column_names}
        if other_columns is None:
            other_columns = {
                name: name for name in other.table.column_names if name != right_key
            }

        left_keys = self.column(left_key)
        right_keys = other.column(right_key)

        # Build a hash index on the smaller side, probe with the larger.
        build_left = len(left_keys) <= len(right_keys)
        build_values = left_keys if build_left else right_keys
        probe_values = right_keys if build_left else left_keys

        index: dict[object, list[int]] = {}
        for position, key in enumerate(build_values.tolist()):
            index.setdefault(key, []).append(position)

        build_positions: list[int] = []
        probe_positions: list[int] = []
        for position, key in enumerate(probe_values.tolist()):
            matches = index.get(key)
            if not matches:
                continue
            for match in matches:
                build_positions.append(match)
                probe_positions.append(position)

        if build_left:
            left_positions = np.asarray(build_positions, dtype=np.int64)
            right_positions = np.asarray(probe_positions, dtype=np.int64)
        else:
            left_positions = np.asarray(probe_positions, dtype=np.int64)
            right_positions = np.asarray(build_positions, dtype=np.int64)

        arrays: dict[str, np.ndarray] = {}
        for output_name, source in columns.items():
            arrays[output_name] = self.column(source)[left_positions] if len(left_positions) else np.empty(0, dtype=self.table.column(source).dtype)
        for output_name, source in other_columns.items():
            arrays[output_name] = other.column(source)[right_positions] if len(right_positions) else np.empty(0, dtype=other.table.column(source).dtype)
        return ColumnTable.from_arrays(result_name, arrays)

    # -- aggregation -----------------------------------------------------------------

    def group_aggregate(
        self,
        group_column: str,
        value_column: str,
        function: str = "mean",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised GROUP BY returning ``(group_keys, aggregated_values)``.

        Supported functions: mean, sum, count, min, max.
        """
        groups = self.column(group_column)
        values = self.column(value_column).astype(np.float64)
        keys, inverse = np.unique(groups, return_inverse=True)
        if function == "count":
            return keys, np.bincount(inverse, minlength=len(keys)).astype(np.float64)
        if function == "sum":
            return keys, np.bincount(inverse, weights=values, minlength=len(keys))
        if function == "mean":
            totals = np.bincount(inverse, weights=values, minlength=len(keys))
            counts = np.bincount(inverse, minlength=len(keys))
            return keys, totals / np.maximum(counts, 1)
        if function in ("min", "max"):
            result = np.full(len(keys), np.inf if function == "min" else -np.inf)
            reducer = np.minimum if function == "min" else np.maximum
            np_function = reducer.at
            np_function(result, inverse, values)
            return keys, result
        raise ValueError(f"unsupported aggregate function {function!r}")

    # -- pivot -------------------------------------------------------------------------

    def pivot(self, row_key: str, column_key: str, value: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pivot the selected rows into a dense matrix.

        Returns ``(matrix, row_labels, column_labels)``; labels are the
        sorted distinct key values and missing cells are 0.
        """
        rows = self.column(row_key)
        cols = self.column(column_key)
        values = self.column(value).astype(np.float64)
        row_labels, row_positions = np.unique(rows, return_inverse=True)
        column_labels, column_positions = np.unique(cols, return_inverse=True)
        matrix = np.zeros((len(row_labels), len(column_labels)), dtype=np.float64)
        matrix[row_positions, column_positions] = values
        return matrix, row_labels, column_labels
