"""Vectorised query execution over column tables.

A :class:`ColumnQuery` carries a reference to its base table plus a
*selection vector* (integer row positions that survive the filters so far)
— the late-materialisation execution style of real column stores.  Filters
narrow the selection vector using whole-column vectorised comparisons;
``columns()`` / ``to_matrix()`` gather only what the caller asks for.

Joins produce a new in-memory :class:`ColumnTable` built from gathered
columns (a materialised join result), since GenBase's join outputs feed
either a pivot or an aggregate immediately afterwards.

Filters execute *on the compressed form* where the encoding allows it:
dictionary and RLE columns evaluate predicates on their distinct values
only and expand the verdicts through codes/runs
(:meth:`~repro.colstore.column.ColumnVector.filter_mask`), so predicates
must be element-wise and stateless.  The equi-join is a vectorised
sort-merge (``argsort`` + ``searchsorted`` position arrays) rather than an
interpreted hash loop.

Aggregation pushes down the encodings the same way.  ``group_aggregate``
never re-derives the grouping with ``np.unique``: a dictionary-encoded
group column already stores the ``(keys, inverse)`` pair, so count/sum/mean
run as ``bincount`` over the codes and min/max as one ``ufunc.at`` scatter
of per-code partials; an RLE group column folds whole runs into partial
counts/sums/extrema (``ufunc.reduceat`` at run starts) without expansion; a
monotone delta column recovers the grouping from a change-point scan.
``pivot`` reuses the same ``distinct_inverse`` surface for both axes
instead of two ``np.unique`` calls, scattering values through the stored
codes.  Narrowed selections gather the codes and compact away group keys
with no surviving rows.  Results match aggregating the decoded, gathered
column exactly — bit-identical keys always, and bit-identical aggregates
for count/min/max and for any exactly-representable values — with one
caveat: RLE run folding reassociates floating-point addition, so sum/mean
over non-integer float values can differ from the row-order accumulation
in the last ulps.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.colstore.compression import predicate_mask
from repro.colstore.table import ColumnTable


def merge_join_positions(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised equi-join returning aligned ``(left, right)`` position arrays.

    Groups the smaller (build) side by key — direct addressing over the key
    range for dense integer keys, ``argsort`` + ``searchsorted`` otherwise —
    then expands each probe row's hit range with ``repeat`` arithmetic; no
    Python-level loop over rows.  Output is larger-side-major; within one
    probe row the matches appear in build-position order.
    """
    if len(left_keys) <= len(right_keys):
        left_positions, right_positions = _match_positions(left_keys, right_keys)
    else:
        right_positions, left_positions = _match_positions(right_keys, left_keys)
    return left_positions, right_positions


# Direct addressing allocates O(key range) scratch; cap it so sparse keys
# fall back to the sort-merge path instead of exploding memory.
_DIRECT_ADDRESS_SLACK = 16
_DIRECT_ADDRESS_MIN_SPAN = 1 << 20


def _match_positions(
    build_keys: np.ndarray, probe_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Match positions ``(build, probe)``, picking the cheapest strategy."""
    # Direct addressing does int64 arithmetic on the keys, so both sides must
    # fit int64 losslessly (uint64 would wrap and fabricate matches).
    both_integral = all(
        np.issubdtype(keys.dtype, np.integer) and np.can_cast(keys.dtype, np.int64)
        for keys in (build_keys, probe_keys)
    )
    if both_integral and build_keys.size and probe_keys.size:
        key_min = int(build_keys.min())
        span = int(build_keys.max()) - key_min + 1
        budget = max(
            _DIRECT_ADDRESS_MIN_SPAN,
            _DIRECT_ADDRESS_SLACK * (len(build_keys) + len(probe_keys)),
        )
        if span <= budget:
            return _direct_address_positions(build_keys, probe_keys, key_min, span)
    return _sorted_match_positions(build_keys, probe_keys)


def _expand_hit_ranges(
    low: np.ndarray, counts: np.ndarray, order: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-probe hit ranges ``[low, low+counts)`` over ``order``."""
    total = int(counts.sum())
    probe_positions = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    # Per-output offset within its probe row's hit range.
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts, dtype=np.int64) - counts, counts
    )
    build_positions = order[np.repeat(low, counts) + within]
    return build_positions.astype(np.int64), probe_positions


def _direct_address_positions(
    build_keys: np.ndarray, probe_keys: np.ndarray, key_min: int, span: int
) -> tuple[np.ndarray, np.ndarray]:
    """Dense-integer fast path: bucket the build side by key value directly."""
    shifted_build = build_keys.astype(np.int64) - key_min
    per_key_counts = np.bincount(shifted_build, minlength=span)
    per_key_starts = np.cumsum(per_key_counts) - per_key_counts
    order = np.argsort(shifted_build, kind="stable")  # build positions by key
    shifted_probe = probe_keys.astype(np.int64) - key_min
    clipped = np.clip(shifted_probe, 0, span - 1)
    in_range = (shifted_probe >= 0) & (shifted_probe < span)
    counts = np.where(in_range, per_key_counts[clipped], 0)
    return _expand_hit_ranges(per_key_starts[clipped], counts, order)


def _sorted_match_positions(
    build_keys: np.ndarray, probe_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Generic path: sort the build side, binary-search it with the probes."""
    order = np.argsort(build_keys, kind="stable")
    sorted_build = build_keys[order]
    low = np.searchsorted(sorted_build, probe_keys, side="left")
    high = np.searchsorted(sorted_build, probe_keys, side="right")
    return _expand_hit_ranges(low, high - low, order)


class ColumnQuery:
    """A query over one column table with an accumulated selection vector."""

    def __init__(self, table: ColumnTable, selection: np.ndarray | None = None):
        self.table = table
        self._full_selection = selection is None
        if selection is None:
            selection = np.arange(table.row_count, dtype=np.int64)
        self.selection = np.asarray(selection, dtype=np.int64)

    # -- filtering -----------------------------------------------------------------

    def _narrowed(self, full_mask: np.ndarray) -> "ColumnQuery":
        """Narrow the selection with a full-column boolean mask."""
        if self._full_selection:
            return ColumnQuery(self.table, np.flatnonzero(full_mask).astype(np.int64))
        return ColumnQuery(self.table, self.selection[full_mask[self.selection]])

    def where(self, column: str, predicate: Callable[[np.ndarray], np.ndarray]) -> "ColumnQuery":
        """Keep rows where ``predicate(column_values)`` is True.

        The predicate must be a vectorised, element-wise, stateless function
        returning one boolean per input value.  On dictionary/RLE columns it
        is pushed down to the *distinct* values and expanded through the
        codes/runs, so it never sees the full (or selected) column there.
        """
        vector = self.table.column(column)
        if self._full_selection or vector.supports_distinct_pushdown:
            return self._narrowed(vector.filter_mask(predicate))
        # Plain/delta columns with a narrowed selection: gather first so the
        # predicate runs over the selected values only (seed behaviour).
        mask = predicate_mask(vector.take(self.selection), predicate)
        return ColumnQuery(self.table, self.selection[mask])

    def where_in(self, column: str, values: Sequence) -> "ColumnQuery":
        """Keep rows whose column value is in ``values``.

        Accepts any array-like (ndarrays are used as-is, no Python-list
        round trip); keys are deduplicated before the membership test and
        the test itself is pushed down the column's encoding.
        """
        vector = self.table.column(column)  # unknown names must raise either way
        if not isinstance(values, np.ndarray):
            values = np.asarray(list(values))
        if values.size == 0:
            # An empty key set selects nothing.  Short-circuit before the
            # float64 dtype that ``np.asarray([])`` defaults to can poison
            # the membership comparison against string/int columns.
            return ColumnQuery(self.table, np.empty(0, dtype=np.int64))
        lookup = np.unique(values)
        return self._narrowed(vector.isin(lookup))

    def sample(self, fraction: float, seed: int = 0) -> "ColumnQuery":
        """Keep a deterministic random sample of the current selection."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        n_keep = max(1, int(round(fraction * len(self.selection))))
        chosen = rng.choice(len(self.selection), size=n_keep, replace=False)
        return ColumnQuery(self.table, np.sort(self.selection[chosen]))

    # -- inspection -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.selection)

    def column(self, name: str) -> np.ndarray:
        """Materialise one column restricted to the current selection."""
        return self.table.column(name).take(self.selection)

    def distinct(self, name: str) -> np.ndarray:
        """Sorted distinct values of ``name`` within the current selection.

        Pushed down the encoding: a dictionary column answers from its
        (compacted) dictionary, RLE from its run values — no decode, no
        ``np.unique`` sort, no inverse materialisation.  Returns a fresh
        array the caller may mutate.
        """
        selection = None if self._full_selection else self.selection
        keys = self.table.column(name).distinct_values(selection)
        # distinct_values may hand back encoding state (the dictionary
        # itself); at this public layer, never leak a mutable alias.
        return keys.copy()

    def columns(self, names: Sequence[str]) -> dict[str, np.ndarray]:
        """Materialise several columns restricted to the current selection."""
        return {name: self.column(name) for name in names}

    def to_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Materialise the named columns side by side as a float matrix."""
        if not names:
            return np.empty((len(self.selection), 0))
        return np.column_stack([self.column(name).astype(np.float64) for name in names])

    def to_table(self, name: str, names: Sequence[str] | None = None) -> ColumnTable:
        """Materialise the current selection as a new column table."""
        names = list(names) if names is not None else self.table.column_names
        return ColumnTable.from_arrays(name, self.columns(names))

    # -- joins ------------------------------------------------------------------------

    def join(
        self,
        other: "ColumnQuery",
        left_key: str,
        right_key: str,
        columns: Mapping[str, str] | None = None,
        other_columns: Mapping[str, str] | None = None,
        result_name: str = "join_result",
    ) -> ColumnTable:
        """Vectorised equi-join, materialising the requested output columns.

        Args:
            other: the probe-side query.
            left_key: join key column in this query's table.
            right_key: join key column in ``other``'s table.
            columns: mapping of output name → this table's column name; the
                default keeps all of this table's columns.
            other_columns: mapping of output name → other table's column
                name; the default keeps all of the other table's columns
                except its join key.
            result_name: name for the materialised result table.
        """
        if columns is None:
            columns = {name: name for name in self.table.column_names}
        if other_columns is None:
            other_columns = {
                name: name for name in other.table.column_names if name != right_key
            }

        left_keys = self.column(left_key)
        right_keys = other.column(right_key)
        left_positions, right_positions = merge_join_positions(left_keys, right_keys)

        # One gather path for both sides: compose the join positions with the
        # selection vectors and let the (possibly compressed) column gather —
        # empty position arrays then yield empty outputs whose dtype matches
        # the populated case by construction.
        left_rows = self.selection[left_positions]
        right_rows = other.selection[right_positions]
        arrays: dict[str, np.ndarray] = {}
        for output_name, source in columns.items():
            arrays[output_name] = self.table.column(source).take(left_rows)
        for output_name, source in other_columns.items():
            arrays[output_name] = other.table.column(source).take(right_rows)
        return ColumnTable.from_arrays(result_name, arrays)

    # -- aggregation -----------------------------------------------------------------

    def group_aggregate(
        self,
        group_column: str,
        value_column: str,
        function: str = "mean",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised GROUP BY returning ``(group_keys, aggregated_values)``.

        Supported functions: mean, sum, count, min, max.  The grouping is
        pushed down the group column's encoding (codes/runs consumed
        directly — see the module docstring) rather than re-derived with
        ``np.unique`` over decoded values.
        """
        value_vector = self.table.column(value_column)  # validate even for count
        if function == "count":
            values = None  # count never reads the values: stay fully compressed
        else:
            values = value_vector.take(self.selection).astype(np.float64)
        selection = None if self._full_selection else self.selection
        keys, aggregates = self.table.column(group_column).group_reduce(
            values, function, selection
        )
        # The keys may alias encoding state (a dictionary column hands back
        # its dictionary); never leak a mutable alias from the query layer.
        return keys.copy(), aggregates

    # -- pivot -------------------------------------------------------------------------

    def pivot(self, row_key: str, column_key: str, value: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pivot the selected rows into a dense matrix.

        Returns ``(matrix, row_labels, column_labels)``; labels are the
        sorted distinct key values and missing cells are 0.  Both axes reuse
        the key columns' stored dictionary codes / run structure
        (:meth:`~repro.colstore.column.ColumnVector.distinct_inverse`)
        instead of two ``np.unique`` calls.  Duplicate ``(row, column)``
        pairs resolve last-write-wins, in selection order.
        """
        values = self.column(value).astype(np.float64)
        selection = None if self._full_selection else self.selection
        row_labels, row_positions = self.table.column(row_key).distinct_inverse(selection)
        column_labels, column_positions = self.table.column(column_key).distinct_inverse(selection)
        matrix = np.zeros((len(row_labels), len(column_labels)), dtype=np.float64)
        matrix[row_positions, column_positions] = values
        # Labels may alias encoding state (the dictionary itself); the
        # positions stay internal, but the labels leave the query layer.
        return matrix, row_labels.copy(), column_labels.copy()
