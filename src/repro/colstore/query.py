"""Vectorised query execution over column tables.

A :class:`ColumnQuery` is a *lazy builder* over the shared declarative
query surface in :mod:`repro.plan`: ``where`` accepts an expression tree
(``col("function") < 250``, ``&``/``|``/``~``, ``isin``) and only records
it.  The accumulated conjunction is optimized when a result is first
needed — split into conjuncts, each classified structurally
(range/equality/membership/opaque) and reordered so the predicate with the
smallest estimated selectivity (from the encodings' own statistics) runs
first over the full column while the rest evaluate on the already-narrowed
selection only.  The materialised state is a *selection vector* (integer
row positions that survive the filters) — the late-materialisation
execution style of real column stores; ``columns()`` / ``to_matrix()``
gather only what the caller asks for, and ``select()``/``collect()`` prune
the materialised columns to the projected set.

The legacy ``where(column_name, callable)`` form is deprecated: it wraps
the callable into an opaque-predicate node the optimizer cannot inspect
(default selectivity, no encoding-specific mapping beyond the distinct-
value pushdown).  Migrate to expressions — see ``src/repro/plan/README.md``.

Joins are lazy too: :meth:`ColumnQuery.join` returns a :class:`JoinedQuery`
builder whose terminals (``collect`` / ``group_aggregate`` / ``pivot``)
assemble one whole logical plan — ``Scan → Filter* → Join → Aggregate/
Pivot`` — and execute it through :func:`repro.colstore.planner.run_plan`,
so predicates and projections are optimized *across* the join boundary
(GenBase's join outputs feed a pivot or an aggregate immediately, which is
exactly the fusion opportunity).  The eager materialised-table join
survives as :func:`materialise_join`, the primitive the plan executor
itself uses.

Filters execute *on the compressed form* where the encoding allows it:
dictionary and RLE columns evaluate predicates on their distinct values
only and expand the verdicts through codes/runs
(:meth:`~repro.colstore.column.ColumnVector.filter_mask`), so predicates
must be element-wise and stateless.  The equi-join is a vectorised
sort-merge (``argsort`` + ``searchsorted`` position arrays) rather than an
interpreted hash loop.

Aggregation pushes down the encodings the same way.  ``group_aggregate``
never re-derives the grouping with ``np.unique``: a dictionary-encoded
group column already stores the ``(keys, inverse)`` pair, so count/sum/mean
run as ``bincount`` over the codes and min/max as one ``ufunc.at`` scatter
of per-code partials; an RLE group column folds whole runs into partial
counts/sums/extrema (``ufunc.reduceat`` at run starts) without expansion; a
monotone delta column recovers the grouping from a change-point scan.
``pivot`` reuses the same ``distinct_inverse`` surface for both axes
instead of two ``np.unique`` calls, scattering values through the stored
codes.  Narrowed selections gather the codes and compact away group keys
with no surviving rows.  Results match aggregating the decoded, gathered
column exactly — bit-identical keys always, and bit-identical aggregates
for count/min/max and for any exactly-representable values — with one
caveat: RLE run folding reassociates floating-point addition, so sum/mean
over non-integer float values can differ from the row-order accumulation
in the last ulps.
"""

from __future__ import annotations

import warnings
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.colstore.compression import predicate_mask
from repro.colstore.table import ColumnTable
from repro.plan.expressions import ColumnRef, Expression, InList, Opaque
from repro.plan.logical import Aggregate, Filter, Join, Pivot, PlanNode, Project, Scan
from repro.plan.optimizer import ordered_conjuncts


def merge_join_positions(
    left_keys: np.ndarray, right_keys: np.ndarray, build: str = "auto"
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised equi-join returning aligned ``(left, right)`` position arrays.

    Groups the build side by key — direct addressing over the key range for
    dense integer keys, ``argsort`` + ``searchsorted`` otherwise — then
    expands each probe row's hit range with ``repeat`` arithmetic; no
    Python-level loop over rows.  ``build`` picks the indexed side:
    ``"auto"`` (the default) builds on the smaller input, ``"left"`` /
    ``"right"`` honour an optimizer annotation chosen from column
    statistics (:func:`repro.plan.optimizer.choose_join_build_side`).
    Output is probe-side-major; within one probe row the matches appear in
    build-position order.
    """
    if build not in ("auto", "left", "right"):
        raise ValueError(f"build must be 'auto', 'left' or 'right', not {build!r}")
    if build == "left" or (build == "auto" and len(left_keys) <= len(right_keys)):
        left_positions, right_positions = _match_positions(left_keys, right_keys)
    else:
        right_positions, left_positions = _match_positions(right_keys, left_keys)
    return left_positions, right_positions


# Direct addressing allocates O(key range) scratch; cap it so sparse keys
# fall back to the sort-merge path instead of exploding memory.
_DIRECT_ADDRESS_SLACK = 16
_DIRECT_ADDRESS_MIN_SPAN = 1 << 20


def _match_positions(
    build_keys: np.ndarray, probe_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Match positions ``(build, probe)``, picking the cheapest strategy."""
    # Direct addressing does int64 arithmetic on the keys, so both sides must
    # fit int64 losslessly (uint64 would wrap and fabricate matches).
    both_integral = all(
        np.issubdtype(keys.dtype, np.integer) and np.can_cast(keys.dtype, np.int64)
        for keys in (build_keys, probe_keys)
    )
    if both_integral and build_keys.size and probe_keys.size:
        key_min = int(build_keys.min())
        span = int(build_keys.max()) - key_min + 1
        budget = max(
            _DIRECT_ADDRESS_MIN_SPAN,
            _DIRECT_ADDRESS_SLACK * (len(build_keys) + len(probe_keys)),
        )
        if span <= budget:
            return _direct_address_positions(build_keys, probe_keys, key_min, span)
    return _sorted_match_positions(build_keys, probe_keys)


def _expand_hit_ranges(
    low: np.ndarray, counts: np.ndarray, order: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-probe hit ranges ``[low, low+counts)`` over ``order``."""
    total = int(counts.sum())
    probe_positions = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    # Per-output offset within its probe row's hit range.
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts, dtype=np.int64) - counts, counts
    )
    build_positions = order[np.repeat(low, counts) + within]
    return build_positions.astype(np.int64), probe_positions


def _direct_address_positions(
    build_keys: np.ndarray, probe_keys: np.ndarray, key_min: int, span: int
) -> tuple[np.ndarray, np.ndarray]:
    """Dense-integer fast path: bucket the build side by key value directly."""
    shifted_build = build_keys.astype(np.int64) - key_min
    per_key_counts = np.bincount(shifted_build, minlength=span)
    per_key_starts = np.cumsum(per_key_counts) - per_key_counts
    order = np.argsort(shifted_build, kind="stable")  # build positions by key
    shifted_probe = probe_keys.astype(np.int64) - key_min
    clipped = np.clip(shifted_probe, 0, span - 1)
    in_range = (shifted_probe >= 0) & (shifted_probe < span)
    counts = np.where(in_range, per_key_counts[clipped], 0)
    return _expand_hit_ranges(per_key_starts[clipped], counts, order)


def _sorted_match_positions(
    build_keys: np.ndarray, probe_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Generic path: sort the build side, binary-search it with the probes."""
    order = np.argsort(build_keys, kind="stable")
    sorted_build = build_keys[order]
    low = np.searchsorted(sorted_build, probe_keys, side="left")
    high = np.searchsorted(sorted_build, probe_keys, side="right")
    return _expand_hit_ranges(low, high - low, order)


def materialise_join(
    left: "ColumnQuery",
    right: "ColumnQuery",
    left_key: str,
    right_key: str,
    columns: Mapping[str, str] | None = None,
    other_columns: Mapping[str, str] | None = None,
    result_name: str = "join_result",
    build: str = "auto",
    compress: bool = True,
) -> ColumnTable:
    """Execute an equi-join eagerly, materialising the output columns.

    This is the execution primitive both join paths share: the lazy
    :class:`JoinedQuery` terminals reach it through the plan executor
    (:func:`repro.colstore.planner.run_plan`), which prunes the gathered
    columns and annotates the build side first; calling it directly
    reproduces the pre-plan eager join.  ``compress=False`` stores the
    gathered arrays plain — the right choice for a query intermediate that
    is consumed once (re-encoding it would cost more than it saves).
    """
    if columns is None:
        columns = {name: name for name in left.output_columns}
    if other_columns is None:
        other_columns = {
            name: name for name in right.output_columns if name != right_key
        }

    left_keys = left.column(left_key)
    right_keys = right.column(right_key)
    left_positions, right_positions = merge_join_positions(
        left_keys, right_keys, build=build
    )

    # One gather path for both sides: compose the join positions with the
    # selection vectors and let the (possibly compressed) column gather —
    # empty position arrays then yield empty outputs whose dtype matches
    # the populated case by construction.
    left_rows = left.selection[left_positions]
    right_rows = right.selection[right_positions]
    arrays: dict[str, np.ndarray] = {}
    for output_name, source in columns.items():
        arrays[output_name] = left.table.column(source).take(left_rows)
    for output_name, source in other_columns.items():
        arrays[output_name] = right.table.column(source).take(right_rows)
    return ColumnTable.from_arrays(result_name, arrays, compress=compress)


def _columnwise(expression: Expression, column: str):
    """Compile a single-column expression to an element-wise mask function.

    The result is safe for the encodings' distinct-value pushdown: every
    expression node evaluates element-wise, so verdicts on distinct values
    expand correctly through codes/runs.
    """
    return lambda values: expression.evaluate({column: values})


class ColumnQuery:
    """A lazy query over one column table.

    Filters accumulate as declarative predicate expressions; the selection
    vector is computed (and cached) the first time a result is needed, via
    the selectivity-ordered execution described in the module docstring.
    """

    def __init__(self, table: ColumnTable, selection: np.ndarray | None = None,
                 pending: Sequence[Expression] = (),
                 projection: tuple[str, ...] | None = None):
        self.table = table
        self._base = (
            None if selection is None else np.asarray(selection, dtype=np.int64)
        )
        self._pending: tuple[Expression, ...] = tuple(pending)
        self._projection = projection
        self._cached: np.ndarray | None = self._base if not self._pending else None

    # -- lazy state -----------------------------------------------------------------

    @property
    def selection(self) -> np.ndarray:
        """The materialised selection vector (runs pending filters once)."""
        if self._cached is None:
            self._cached = self._execute_filters()
        return self._cached

    @property
    def _full_selection(self) -> bool:
        return self._base is None and not self._pending

    def _derive(self, extra: Expression) -> "ColumnQuery":
        """Stack one more filter; an already-materialised selection becomes
        the new base so earlier results are never recomputed."""
        if self._cached is not None and self._pending:
            return ColumnQuery(self.table, self._cached, (extra,), self._projection)
        return ColumnQuery(
            self.table, self._base, self._pending + (extra,), self._projection
        )

    def _validate_columns(self, names) -> None:
        for name in sorted(names):
            self.table.column(name)  # raises KeyError naming column and table

    # -- filter execution ------------------------------------------------------------

    def _optimized_filters(self):
        """Split, classify and selectivity-order the pending conjunction.

        The single pipeline behind both execution and ``explain()``, so the
        rendered plan always matches the executed one.
        ``ordered_conjuncts`` itself skips the statistics pass when the
        conjunction has a single conjunct.
        """
        return ordered_conjuncts(
            self._pending, lambda column: self.table.column(column).stats()
        )

    def _execute_filters(self) -> np.ndarray:
        selection = self._base
        for expression, predicate, _ in self._optimized_filters():
            selection = self._apply_filter(selection, expression, predicate)
        if selection is None:
            selection = np.arange(self.table.row_count, dtype=np.int64)
        return selection

    def _apply_filter(self, selection, expression, predicate) -> np.ndarray:
        """Narrow ``selection`` (None = all rows) by one classified predicate.

        The first filter evaluates over the full column through the
        encoding's pushdown (``isin`` / distinct-value ``filter_mask``);
        later filters evaluate on the gathered, already-narrowed values
        only, so an unselective predicate never touches the full column
        once a selective one has run.
        """
        if predicate.column is not None:
            vector = self.table.column(predicate.column)
            if predicate.kind == "membership":
                keys = expression.key_array()
                if selection is None:
                    return np.flatnonzero(vector.isin(keys)).astype(np.int64)
                return selection[np.isin(vector.take(selection), keys)]
            fn = _columnwise(expression, predicate.column)
            if selection is None:
                return np.flatnonzero(vector.filter_mask(fn)).astype(np.int64)
            return selection[predicate_mask(vector.take(selection), fn)]
        # Multi-column (or column-free) predicate: vectorised batch evaluation.
        names = sorted(expression.columns_referenced())
        batch = {
            name: (
                self.table.column(name).values()
                if selection is None
                else self.table.column(name).take(selection)
            )
            for name in names
        }
        length = self.table.row_count if selection is None else len(selection)
        mask = np.asarray(expression.evaluate(batch), dtype=bool)
        if mask.ndim == 0:
            mask = np.full(length, bool(mask))
        if mask.shape != (length,):
            raise ValueError("predicate must return one boolean per input row")
        return np.flatnonzero(mask).astype(np.int64) if selection is None else selection[mask]

    # -- filtering -----------------------------------------------------------------

    def where(self, column, predicate: Callable[[np.ndarray], np.ndarray] | None = None) -> "ColumnQuery":
        """Keep rows satisfying a predicate (lazily).

        The declarative form takes one expression argument::

            query.where(col("function") < 250)
            query.where((col("gender") == 1) & (col("age") < 40))

        Conjunctions are split and reordered by estimated selectivity before
        execution; range/equality/``isin`` shapes map straight onto the
        encodings' fast paths.

        The legacy form ``where(column_name, callable)`` is **deprecated**:
        the callable must be vectorised, element-wise and stateless (on
        dictionary/RLE columns it is evaluated on the *distinct* values
        only) and is wrapped into an opaque node the optimizer cannot
        inspect or estimate.
        """
        if isinstance(column, Expression):
            if predicate is not None:
                raise TypeError(
                    "where(expression) takes no second argument; "
                    "where(column_name, callable) is the deprecated form"
                )
            self._validate_columns(column.columns_referenced())
            return self._derive(column)
        warnings.warn(
            "ColumnQuery.where(column_name, callable) is deprecated; build a "
            "declarative expression with repro.plan.col instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if not callable(predicate):
            raise TypeError("the deprecated where(column_name, ...) form needs a callable")
        self.table.column(column)  # raises KeyError naming column and table
        return self._derive(Opaque(column, predicate))

    def where_in(self, column: str, values: Sequence) -> "ColumnQuery":
        """Keep rows whose column value is in ``values`` (lazily).

        Accepts any array-like (ndarrays are used as-is, no Python-list
        round trip); keys are deduplicated before the membership test and
        the test itself is pushed down the column's encoding.  Equivalent
        to ``where(col(column).isin(values))``.
        """
        self.table.column(column)  # raises KeyError naming column and table
        if not isinstance(values, np.ndarray):
            values = np.asarray(list(values))
        if values.size == 0:
            # An empty key set selects nothing.  Short-circuit before the
            # float64 dtype that ``np.asarray([])`` defaults to can poison
            # the membership comparison against string/int columns.
            return ColumnQuery(self.table, np.empty(0, dtype=np.int64),
                               projection=self._projection)
        return self._derive(InList(ColumnRef(column), values))

    def sample(self, fraction: float, seed: int = 0) -> "ColumnQuery":
        """Keep a deterministic random sample of the current selection.

        Each base-table row gets a score from ``default_rng(seed)``; the
        sample keeps the ``max(1, round(fraction * n))`` selected rows with
        the smallest scores.  The kept rows are therefore a pure function
        of the *set* of selected rows — independent of the order the
        selection vector lists them in or the order earlier filters were
        applied (and re-applied by the optimizer) — so narrowing after
        ``sample`` composes deterministically for equal seeds.  Sampling
        remains an optimizer barrier: filters never move across it.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        rows = np.sort(self.selection)
        n_keep = max(1, int(round(fraction * len(rows)))) if len(rows) else 0
        scores = np.random.default_rng(seed).random(self.table.row_count)
        kept = rows[np.argsort(scores[rows], kind="stable")[:n_keep]]
        return ColumnQuery(self.table, np.sort(kept), projection=self._projection)

    # -- projection --------------------------------------------------------------------

    def select(self, *names: str) -> "ColumnQuery":
        """Restrict the query's output to the named columns (lazily).

        Only the selected columns are ever decoded by ``collect()`` /
        ``to_table()`` — the column-store form of projection pruning.
        """
        self._validate_columns(names)
        derived = ColumnQuery(self.table, self._base, self._pending, tuple(names))
        derived._cached = self._cached
        return derived

    @property
    def output_columns(self) -> list[str]:
        """The columns this query materialises (projection or all)."""
        if self._projection is not None:
            return list(self._projection)
        return self.table.column_names

    def collect(self, name: str = "result") -> ColumnTable:
        """Materialise the query as a new column table (projected columns only)."""
        return self.to_table(name, self._projection)

    def explain(self) -> str:
        """Render the optimized filter pipeline (for tests and debugging)."""
        lines = [f"Scan {self.table.name} ({self.table.row_count} rows)"]
        if self._base is not None:
            lines.append(f"  Base selection ({len(self._base)} rows)")
        for expression, predicate, selectivity in self._optimized_filters():
            lines.append(
                f"  Filter {expression!r} [{predicate.kind} ~sel={selectivity:.4f}]"
            )
        if self._projection is not None:
            lines.append(f"  Project {list(self._projection)}")
        return "\n".join(lines)

    # -- inspection -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.selection)

    def column(self, name: str) -> np.ndarray:
        """Materialise one column restricted to the current selection."""
        return self.table.column(name).take(self.selection)

    def distinct(self, name: str) -> np.ndarray:
        """Sorted distinct values of ``name`` within the current selection.

        Pushed down the encoding: a dictionary column answers from its
        (compacted) dictionary, RLE from its run values — no decode, no
        ``np.unique`` sort, no inverse materialisation.  Returns a fresh
        array the caller may mutate.
        """
        selection = None if self._full_selection else self.selection
        keys = self.table.column(name).distinct_values(selection)
        # distinct_values may hand back encoding state (the dictionary
        # itself); at this public layer, never leak a mutable alias.
        return keys.copy()

    def columns(self, names: Sequence[str]) -> dict[str, np.ndarray]:
        """Materialise several columns restricted to the current selection."""
        return {name: self.column(name) for name in names}

    def to_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Materialise the named columns side by side as a float matrix."""
        if not names:
            return np.empty((len(self.selection), 0))
        return np.column_stack([self.column(name).astype(np.float64) for name in names])

    def to_table(self, name: str, names: Sequence[str] | None = None) -> ColumnTable:
        """Materialise the current selection as a new column table.

        Defaults to the projected columns (``select``), or all columns when
        no projection was set.
        """
        names = list(names) if names is not None else self.output_columns
        return ColumnTable.from_arrays(name, self.columns(names))

    # -- joins ------------------------------------------------------------------------

    def join(
        self,
        other: "ColumnQuery",
        left_key: str,
        right_key: str,
        columns: Mapping[str, str] | None = None,
        other_columns: Mapping[str, str] | None = None,
        result_name: str = "join_result",
    ) -> "JoinedQuery":
        """Equi-join with ``other`` — returns a lazy :class:`JoinedQuery`.

        Nothing executes here: the builder's terminals
        (:meth:`~JoinedQuery.collect`, :meth:`~JoinedQuery.group_aggregate`,
        :meth:`~JoinedQuery.pivot`) assemble one logical plan
        ``Scan → Filter* → Join → [Aggregate | Pivot]`` and run it through
        :func:`repro.colstore.planner.run_plan`, so the optimizer prunes
        projections and pushes predicates *across* the join boundary and
        picks the build side from column statistics.  The pre-plan eager
        behaviour (a materialised :class:`ColumnTable`) is one ``.collect()``
        call away.

        Args:
            other: the other input query.
            left_key: join key column in this query's table.
            right_key: join key column in ``other``'s table.
            columns: mapping of output name → this table's column name; the
                default keeps this query's projected columns (all columns
                when no ``select`` was applied).
            other_columns: mapping of output name → other table's column
                name; the default keeps the other query's projected columns
                except its join key.
            result_name: name for the join output (used by ``collect``).
        """
        return JoinedQuery(
            self, other, left_key, right_key, columns, other_columns, result_name
        )

    def _plan_fragment(self, scan_name: str) -> tuple["PlanNode", "ColumnQuery"]:
        """This query as a logical-plan fragment plus its scan binding.

        Pending (not yet executed) filters become :class:`Filter` nodes the
        optimizer can see and move; an already-materialised selection (a
        ``sample``, an empty ``where_in`` short-circuit, filters forced by
        an earlier result) cannot be re-expressed declaratively, so it rides
        along as the *binding* — a base query the executor lowers the
        :class:`Scan` onto.
        """
        plan: PlanNode = Scan(scan_name)
        if self._cached is not None:
            # Filters already ran; their result is the binding's base.
            binding = ColumnQuery(self.table, self._cached)
        else:
            binding = ColumnQuery(self.table, self._base)
            for expression in self._pending:
                plan = Filter(plan, expression)
        if self._projection is not None:
            plan = Project(plan, tuple(self._projection))
        return plan, binding

    # -- aggregation -----------------------------------------------------------------

    def group_aggregate(
        self,
        group_column: str,
        value_column: str,
        function: str = "mean",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised GROUP BY returning ``(group_keys, aggregated_values)``.

        Supported functions: mean, sum, count, min, max.  The grouping is
        pushed down the group column's encoding (codes/runs consumed
        directly — see the module docstring) rather than re-derived with
        ``np.unique`` over decoded values.
        """
        value_vector = self.table.column(value_column)  # validate even for count
        if function == "count":
            values = None  # count never reads the values: stay fully compressed
        elif self._full_selection:
            # The aggregate consumes every row: materialising the column is
            # the gather, without first building (and indexing through) an
            # arange selection vector.  The ``astype`` copy keeps the
            # encoding's decode cache unaliased.
            values = value_vector.values().astype(np.float64)  # decode-ok: full-table aggregate reads every value
        else:
            values = value_vector.take(self.selection).astype(np.float64)
        selection = None if self._full_selection else self.selection
        keys, aggregates = self.table.column(group_column).group_reduce(
            values, function, selection
        )
        # The keys may alias encoding state (a dictionary column hands back
        # its dictionary); never leak a mutable alias from the query layer.
        return keys.copy(), aggregates

    # -- pivot -------------------------------------------------------------------------

    def pivot(self, row_key: str, column_key: str, value: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pivot the selected rows into a dense matrix.

        Returns ``(matrix, row_labels, column_labels)``; labels are the
        sorted distinct key values and missing cells are 0.  Both axes reuse
        the key columns' stored dictionary codes / run structure
        (:meth:`~repro.colstore.column.ColumnVector.distinct_inverse`)
        instead of two ``np.unique`` calls.  Duplicate ``(row, column)``
        pairs resolve last-write-wins, in selection order.
        """
        values = self.column(value).astype(np.float64)
        selection = None if self._full_selection else self.selection
        row_labels, row_positions = self.table.column(row_key).distinct_inverse(selection)
        column_labels, column_positions = self.table.column(column_key).distinct_inverse(selection)
        matrix = np.zeros((len(row_labels), len(column_labels)), dtype=np.float64)
        matrix[row_positions, column_positions] = values
        # Labels may alias encoding state (the dictionary itself); the
        # positions stay internal, but the labels leave the query layer.
        return matrix, row_labels.copy(), column_labels.copy()


class JoinedQuery:
    """A lazy equi-join of two :class:`ColumnQuery` inputs.

    Built by :meth:`ColumnQuery.join`; nothing executes until a terminal
    runs.  Each terminal assembles **one** logical plan — the inputs'
    pending filters become :class:`~repro.plan.logical.Filter` nodes below a
    :class:`~repro.plan.logical.Join`, topped by the terminal's
    :class:`~repro.plan.logical.Aggregate` / :class:`~repro.plan.logical.Pivot`
    — and hands it to :func:`repro.colstore.planner.run_plan`.  The
    optimizer therefore sees *across* the join boundary: single-side total
    predicates written after ``join(...)`` move below it, each side decodes
    only the join key plus the columns the terminal references, and the
    build side comes from :class:`~repro.plan.optimizer.ColumnStats`
    row-count/cardinality estimates.  The join output is materialised
    *uncompressed* (it is consumed once; re-encoding it is pure overhead) —
    the measured win over the eager materialise-then-plan path is the
    ``join_pivot`` op in ``benchmarks/bench_colstore_ops.py``.

    Join output row order is probe-side-major and therefore depends on the
    chosen build side; aggregate results are row-order independent except
    for the documented last-ulp caveat on float sums, and pivots resolve
    duplicate ``(row, column)`` pairs last-write-wins in output order.
    """

    def __init__(
        self,
        left: ColumnQuery,
        right: ColumnQuery,
        left_key: str,
        right_key: str,
        columns: Mapping[str, str] | None = None,
        other_columns: Mapping[str, str] | None = None,
        result_name: str = "join_result",
        filters: Sequence[Expression] = (),
    ):
        left.table.column(left_key)   # raises KeyError naming column and table
        right.table.column(right_key)
        if columns is None:
            columns = {name: name for name in left.output_columns}
        if other_columns is None:
            other_columns = {
                name: name for name in right.output_columns if name != right_key
            }
        for source in columns.values():
            left.table.column(source)
        for source in other_columns.values():
            right.table.column(source)
        self._left = left
        self._right = right
        self._left_key = left_key
        self._right_key = right_key
        self._columns = dict(columns)
        self._other_columns = dict(other_columns)
        self._result_name = result_name
        self._filters: tuple[Expression, ...] = tuple(filters)

    # -- output schema -----------------------------------------------------------------

    @property
    def output_columns(self) -> list[str]:
        """The join's output column names (left side first, then right)."""
        return list(self._columns) + list(self._other_columns)

    def _source(self, name: str) -> str:
        """Resolve an output name to its source column (KeyError if unknown)."""
        if name in self._columns:
            return self._columns[name]
        if name in self._other_columns:
            return self._other_columns[name]
        raise KeyError(
            f"no column {name!r} in join result {self._result_name!r}; "
            f"has {self.output_columns}"
        )

    # -- composition -------------------------------------------------------------------

    def where(self, expression: Expression) -> "JoinedQuery":
        """Stack a filter over the join output (lazily).

        The predicate joins the plan *above* the Join node; the optimizer
        then pushes each total single-side conjunct below the join onto the
        input it references, exactly as if it had been written on that
        input.  Partial predicates (division, opaque callables) stay above
        the join — below it they would run on rows the join eliminates.
        """
        if not isinstance(expression, Expression):
            raise TypeError("JoinedQuery.where takes a declarative expression")
        for name in sorted(expression.columns_referenced()):
            if self._source(name) != name:
                raise ValueError(
                    f"cannot filter on renamed join output {name!r}; filter the "
                    "input query before joining instead"
                )
        return JoinedQuery(
            self._left, self._right, self._left_key, self._right_key,
            self._columns, self._other_columns, self._result_name,
            self._filters + (expression,),
        )

    # -- plan assembly -----------------------------------------------------------------

    def _ambiguous_sources(self) -> bool:
        """True when the shared Join node cannot express this join's output.

        The plan layer identifies columns by *source name*, and the join
        output convention is "left columns, then right columns minus the
        right key" — so a source name both sides produce would be gathered
        once by name, the right side's copy silently winning.  That loses
        the output → source ownership the ``columns``/``other_columns``
        mappings express (``{"lx": "x"}`` vs ``{"rx": "x"}``); such joins
        take the eager output-name-keyed path instead.  The same applies
        when one output name is mapped on both sides.
        """
        right_sources = set(self._right.output_columns) - {self._right_key}
        return bool(
            set(self._columns.values()) & right_sources
            or set(self._other_columns.values()) & set(self._left.output_columns)
            or set(self._columns) & set(self._other_columns)
        )

    def _eager_query(self) -> ColumnQuery:
        """Materialise through the eager primitive (output-name-keyed).

        Fallback for :meth:`_ambiguous_sources` joins: column ownership is
        resolved by the explicit mappings before any name can collide, at
        the price of skipping the cross-join optimizer rewrites.  Stacked
        filters apply on the materialised output, exactly as written.
        """
        table = materialise_join(
            self._left, self._right, self._left_key, self._right_key,
            self._columns, self._other_columns, self._result_name,
            compress=False,
        )
        query = ColumnQuery(table)
        for expression in self._filters:
            query = query.where(expression)
        return query

    def _assemble(self) -> tuple[PlanNode, dict[str, ColumnQuery]]:
        """Build the ``Scan → Filter* → Join → Filter*`` plan + scan bindings."""
        left_name = self._left.table.name
        right_name = self._right.table.name
        if right_name == left_name:
            right_name = f"{right_name}__right"
        left_plan, left_binding = self._left._plan_fragment(left_name)
        right_plan, right_binding = self._right._plan_fragment(right_name)
        plan: PlanNode = Join(
            left_plan, right_plan, self._left_key, self._right_key, self._result_name
        )
        for expression in self._filters:
            plan = Filter(plan, expression)
        return plan, {left_name: left_binding, right_name: right_binding}

    def logical_plan(self) -> PlanNode:
        """The unoptimized relational-algebra plan (for tests and EXPLAIN)."""
        plan, _bindings = self._assemble()
        return plan

    def explain(self) -> str:
        """Render the optimized fused plan (as ``collect`` would run it).

        Shows the join with per-side pushed filters, through-join projection
        pruning, selectivity annotations and the chosen build side.
        """
        from repro.colstore import planner

        if self._ambiguous_sources():
            lines = [
                f"EagerJoin {self._left_key} = {self._right_key} "
                "(source names collide across inputs; output-name-keyed "
                "materialisation, no cross-join rewrites)"
            ]
            lines.extend(f"  Filter {expression!r}" for expression in self._filters)
            return "\n".join(lines)
        plan, bindings = self._assemble()
        sources = tuple(self._source(output) for output in self.output_columns)
        optimized = planner.optimize_plan(Project(plan, sources), bindings=bindings)
        return planner.explain_plan(optimized, bindings=bindings)

    # -- terminals ---------------------------------------------------------------------

    def _run(self, plan: PlanNode, bindings: dict[str, ColumnQuery]):
        from repro.colstore import planner

        return planner.run_plan(plan, bindings=bindings)

    def collect(self, name: str | None = None, compress: bool = False) -> ColumnTable:
        """Materialise the join output as a :class:`ColumnTable`.

        Gathers only the mapped output columns (the optimizer prunes the
        rest through the join); pass ``compress=True`` to re-encode the
        result — worthwhile only when it will be scanned repeatedly.
        """
        if self._ambiguous_sources():
            query = self._eager_query()
            arrays = {output: query.column(output) for output in self.output_columns}
            return ColumnTable.from_arrays(
                name or self._result_name, arrays, compress=compress
            )
        plan, bindings = self._assemble()
        sources = [self._source(output) for output in self.output_columns]
        query = self._run(Project(plan, tuple(sources)), bindings)
        if (
            not compress
            and query._full_selection
            and sources == list(self.output_columns)
            and query.table.column_names == sources
        ):
            # The executor already materialised exactly the requested
            # columns, uncompressed and unfiltered — share its vectors
            # instead of gathering every column a second time.
            return ColumnTable(
                name or self._result_name,
                [query.table.column(source) for source in sources],
            )
        arrays = {
            output: query.column(self._source(output))
            for output in self.output_columns
        }
        return ColumnTable.from_arrays(
            name or self._result_name, arrays, compress=compress
        )

    def group_aggregate(
        self,
        group_column: str,
        value_column: str,
        function: str = "mean",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused join → GROUP BY returning ``(group_keys, aggregated_values)``.

        One plan ``Join → Aggregate``: each join input decodes only its key
        plus the group/value columns it contributes, and the grouped
        reduction runs directly over the gathered arrays — the joined rows
        are never re-encoded.  Keys match ``np.unique`` of the joined group
        column exactly; see the class docstring for the float-sum ordering
        caveat.
        """
        if self._ambiguous_sources():
            return self._eager_query().group_aggregate(
                group_column, value_column, function
            )
        plan, bindings = self._assemble()
        terminal = Aggregate(
            plan, self._source(group_column), self._source(value_column), function
        )
        return self._run(terminal, bindings)

    def pivot(
        self, row_key: str, column_key: str, value: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fused join → pivot into a dense ``(matrix, row_labels, column_labels)``.

        One plan ``Join → Pivot``: only the two key columns and the value
        column cross the join.  Labels are the sorted distinct key values of
        the joined rows; missing cells are 0; duplicate ``(row, column)``
        pairs resolve last-write-wins in join output order.
        """
        if self._ambiguous_sources():
            return self._eager_query().pivot(row_key, column_key, value)
        plan, bindings = self._assemble()
        terminal = Pivot(
            plan, self._source(row_key), self._source(column_key), self._source(value)
        )
        return self._run(terminal, bindings)
