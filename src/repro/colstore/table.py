"""Column tables: named collections of aligned column vectors."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.colstore.column import ColumnVector


class ColumnTable:
    """A table stored column-by-column.

    Unlike the row store there is no per-row object at rest; rows only come
    into existence when a query's output is materialised.
    """

    def __init__(self, name: str, columns: Sequence[ColumnVector]):
        if not name:
            raise ValueError("table name must be non-empty")
        if not columns:
            raise ValueError("a table needs at least one column")
        lengths = {len(column) for column in columns}
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {sorted(lengths)}")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names")
        self.name = name
        self._columns = {column.name: column for column in columns}
        self._order = list(names)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_arrays(cls, name: str, arrays: Mapping[str, np.ndarray],
                    compress: bool = True) -> "ColumnTable":
        """Build a table from a mapping of column name → numpy array."""
        columns = [ColumnVector(column_name, values, compress=compress)
                   for column_name, values in arrays.items()]
        return cls(name, columns)

    # -- metadata -----------------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return list(self._order)

    @property
    def row_count(self) -> int:
        return len(self._columns[self._order[0]])

    def __len__(self) -> int:
        return self.row_count

    @property
    def compressed_bytes(self) -> int:
        return sum(column.encoded_bytes for column in self._columns.values())

    def encodings(self) -> dict[str, str]:
        """Report which encoding each column chose (useful for tests/docs)."""
        return {name: self._columns[name].encoding_name for name in self._order}

    def __repr__(self) -> str:
        return (
            f"ColumnTable({self.name!r}, rows={self.row_count}, "
            f"columns={self.column_names})"
        )

    # -- access --------------------------------------------------------------------

    def column(self, name: str) -> ColumnVector:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r} in table {self.name!r}; has {self._order}"
            ) from None

    def values(self, name: str) -> np.ndarray:
        """Decode one column fully."""
        return self.column(name).values()

    def arrays(self) -> dict[str, np.ndarray]:
        """Every column decoded, in schema order (reseal/reload helper).

        ``ColumnTable.from_arrays(name, table.arrays())`` round-trips the
        table; the delta tier's ``compact()`` and the snapshot-equivalence
        tests both rebuild stores this way.
        """
        return {name: self.values(name) for name in self._order}

    def gather(self, names: Sequence[str], indices: np.ndarray | None = None) -> dict[str, np.ndarray]:
        """Materialise the named columns, optionally restricted to ``indices``."""
        result = {}
        for name in names:
            column = self.column(name)
            result[name] = column.values() if indices is None else column.take(indices)
        return result

    def to_rows(self, names: Sequence[str] | None = None) -> list[tuple]:
        """Materialise the table (or a projection) as row tuples."""
        names = list(names) if names is not None else self.column_names
        arrays = [self.values(name) for name in names]
        return list(zip(*[array.tolist() for array in arrays], strict=True)) if arrays else []
