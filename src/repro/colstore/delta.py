"""The writable delta tier over the sealed compressed segments.

The column store is loaded once and sealed; production traffic writes.
This module layers an update-friendly tier over each sealed table — the
HTAP split of Polynesia and the delta-store designs of C-Store/SAP HANA:

- **tail** — appended rows kept as plain (uncompressed) numpy arrays, in
  append order, one chunk per ``append`` call;
- **deletion bitmap** — a boolean array over the *logical* row space
  (sealed rows first, then tail rows in append order); logical row ids are
  stable until a compaction reseals the table;
- **version counter** — bumped by every write; readers use it to detect
  staleness (the synopsis cache keys on it).

Every piece of published state is immutable: a write builds a complete new
:class:`_TableState` and swaps one reference under the writer lock, so a
:class:`Snapshot` (one state reference, grabbed atomically) stays
internally consistent forever — readers never lock, never block writers,
and never observe a half-applied write.  ``compact()`` re-runs
``best_encoding`` over the surviving rows, seals a new segment generation
and publishes it the same way; live snapshots keep answering from the
state they captured.

Scans merge the two parts per operator instead of decoding the sealed
segment: :class:`MergedColumn` implements the
:class:`~repro.colstore.column.ColumnVector` surface by running the
compressed fast path on the sealed part and vectorised plain evaluation on
the tail — concatenated filter masks, unioned distinct sets, per-part
group-reduce partials merged by key, and mergeable HLL/t-digest sketches
(the sketch machinery already merges across cluster partitions; a tail is
just one more partition).
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.colstore.column import ColumnVector
from repro.colstore.compression import predicate_mask, reduce_by_inverse
from repro.colstore.query import ColumnQuery
from repro.colstore.sketches import HyperLogLog, TDigest
from repro.colstore.table import ColumnTable
from repro.plan.optimizer import ColumnStats


def merge_group_parts(
    parts: Sequence[tuple[np.ndarray, np.ndarray]], function: str,
    key_dtype: np.dtype,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-part ``(keys, aggregates)`` partials into one grouped result.

    Each part follows the :meth:`~repro.colstore.column.ColumnVector.group_reduce`
    contract (sorted unique keys, float64 aggregates).  ``sum``/``count``
    partials add; ``min``/``max`` partials combine element-wise.  ``mean``
    is *not* mergeable from per-part means — callers must merge ``sum`` and
    ``count`` partials and divide.
    """
    parts = [(keys, values) for keys, values in parts if len(keys)]
    if not parts:
        return np.empty(0, dtype=key_dtype), np.empty(0, dtype=np.float64)
    if len(parts) == 1:
        keys, values = parts[0]
        return keys, np.asarray(values, dtype=np.float64)
    keys = parts[0][0]
    for more, _ in parts[1:]:
        keys = np.union1d(keys, more)
    merged = np.zeros(len(keys), dtype=np.float64)
    seen = np.zeros(len(keys), dtype=bool)
    for part_keys, part_values in parts:
        at = np.searchsorted(keys, part_keys)
        part_values = np.asarray(part_values, dtype=np.float64)
        if function in ("sum", "count"):
            merged[at] += part_values
        elif function == "min":
            merged[at] = np.where(seen[at], np.minimum(merged[at], part_values),
                                  part_values)
        elif function == "max":
            merged[at] = np.where(seen[at], np.maximum(merged[at], part_values),
                                  part_values)
        else:
            raise ValueError(f"cannot merge partials for function {function!r}")
        seen[at] = True
    return keys, merged


class MergedColumn:
    """A sealed compressed column plus its plain tail, presented as one vector.

    Implements the :class:`~repro.colstore.column.ColumnVector` query
    surface over the concatenation ``[sealed rows..., tail rows...]``.
    Operators run the encoding's compressed fast path on the sealed part
    and vectorised plain evaluation on the tail, merging per operator —
    the sealed segment is never decoded just because a tail exists.

    Instances are per-snapshot views; their small caches (the decoded
    concatenation, merged stats) are idempotent, so racing readers at
    worst compute the same value twice.
    """

    def __init__(self, sealed: ColumnVector, tail: np.ndarray):
        self.name = sealed.name
        self.dtype = sealed.dtype
        self._sealed = sealed
        self._tail = tail
        self._split = len(sealed)  # logical position of the first tail row
        self._cache: np.ndarray | None = None
        self._stats: ColumnStats | None = None
        self._tail_distinct: tuple[np.ndarray, np.ndarray] | None = None

    def __len__(self) -> int:
        return self._split + len(self._tail)

    def __repr__(self) -> str:
        return (
            f"MergedColumn({self.name!r}, sealed={self._split}, "
            f"tail={len(self._tail)}, encoding={self.encoding_name})"
        )

    @property
    def encoding_name(self) -> str:
        return f"{self._sealed.encoding_name}+tail"

    @property
    def encoded_bytes(self) -> int:
        return self._sealed.encoded_bytes + self._tail.nbytes

    @property
    def supports_distinct_pushdown(self) -> bool:
        """The tail is plain; only the sealed part pushes predicates down."""
        return False

    # -- statistics ----------------------------------------------------------------

    def stats(self) -> ColumnStats:
        """Sealed stats widened by the tail's min/max (cached).

        Bounds are reported only when the sealed part knows its own —
        a tail-only bound would *narrow* the range and mislead the
        planner's selectivity estimates.  The distinct count is dropped:
        the tail may add unseen values.
        """
        if self._stats is None:
            base = self._sealed.stats()
            minimum, maximum = base.minimum, base.maximum
            if self._tail.size and minimum is not None and maximum is not None:
                tail_low = float(self._tail.min())
                tail_high = float(self._tail.max())
                if np.isfinite(tail_low) and np.isfinite(tail_high):
                    minimum = min(minimum, tail_low)
                    maximum = max(maximum, tail_high)
                else:
                    minimum = maximum = None
            self._stats = ColumnStats(len(self), None, minimum, maximum)
        return self._stats

    # -- materialisation -----------------------------------------------------------

    def values(self) -> np.ndarray:
        """Decode the sealed part and concatenate the tail (cached)."""
        if self._cache is None:
            if not self._tail.size:
                self._cache = self._sealed.values()  # decode-ok: explicit full-materialisation API
            else:
                self._cache = np.concatenate(
                    [self._sealed.values(), self._tail]  # decode-ok: explicit full-materialisation API
                )
        return self._cache

    def _split_point(self, indices: np.ndarray) -> int | None:
        """Length of the sealed prefix, or None when parts interleave.

        Selections out of the query layer are sorted (``flatnonzero``
        order), so in practice every sealed position precedes every tail
        position and a gather splits into two *contiguous* slices.
        Detecting that costs two cheap passes and skips the
        mask/flatnonzero/scatter fallback's several full-array round
        trips — the difference between a merged scan tracking the sealed
        one and costing multiples of it.
        """
        in_sealed = indices < self._split
        cut = int(np.count_nonzero(in_sealed))
        if bool(in_sealed[:cut].all()):
            return cut
        return None

    def take(self, indices: np.ndarray) -> np.ndarray:
        """Gather by logical position, split between sealed and tail parts."""
        indices = np.asarray(indices)
        if self._cache is not None:
            return self._cache[indices]
        if indices.size and indices.min() < 0:
            indices = np.where(indices < 0, indices + len(self), indices)
        cut = self._split_point(indices)
        if cut is not None:
            if cut == indices.size:
                return self._sealed.take(indices)
            tail_part = self._tail[indices[cut:] - self._split]
            if cut == 0:
                return tail_part
            return np.concatenate([self._sealed.take(indices[:cut]), tail_part])
        in_sealed = indices < self._split
        out = np.empty(indices.shape, dtype=self.dtype)
        sealed_at = np.flatnonzero(in_sealed)
        if sealed_at.size:
            out[sealed_at] = self._sealed.take(indices[sealed_at])
        tail_at = np.flatnonzero(~in_sealed)
        out[tail_at] = self._tail[indices[tail_at] - self._split]
        return out

    # -- filtering -----------------------------------------------------------------

    def filter_mask(self, predicate) -> np.ndarray:
        """Sealed pushdown mask concatenated with a plain tail mask."""
        sealed_mask = self._sealed.filter_mask(predicate)
        if not self._tail.size:
            return sealed_mask
        return np.concatenate([sealed_mask, predicate_mask(self._tail, predicate)])

    def isin(self, values: np.ndarray) -> np.ndarray:
        sealed_mask = self._sealed.isin(values)
        if not self._tail.size:
            return sealed_mask
        return np.concatenate([sealed_mask, np.isin(self._tail, values)])

    # -- grouping ------------------------------------------------------------------

    def _split_selection(
        self, selection: np.ndarray | None
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """``(sealed selection or None-for-all, gathered tail values)``."""
        if selection is None:
            return None, self._tail
        selection = np.asarray(selection)
        cut = self._split_point(selection)
        if cut is not None:
            return selection[:cut], self._tail[selection[cut:] - self._split]
        in_sealed = selection < self._split
        return selection[in_sealed], self._tail[selection[~in_sealed] - self._split]

    def distinct_inverse(
        self, selection: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Union the sealed distinct set with the tail's; remap both inverses."""
        if not self._tail.size:
            return self._sealed.distinct_inverse(selection)
        if selection is not None:
            return np.unique(self.take(selection), return_inverse=True)
        sealed_keys, sealed_inverse = self._sealed.distinct_inverse(None)
        tail_keys, tail_inverse = np.unique(self._tail, return_inverse=True)
        keys = np.union1d(sealed_keys, tail_keys)
        inverse = np.concatenate([
            np.searchsorted(keys, sealed_keys)[np.asarray(sealed_inverse)],
            np.searchsorted(keys, tail_keys)[np.asarray(tail_inverse)],
        ])
        return keys, inverse

    def distinct_values(self, selection: np.ndarray | None = None) -> np.ndarray:
        if not self._tail.size:
            return self._sealed.distinct_values(selection)
        if selection is not None:
            return np.unique(self.take(selection))
        return np.union1d(self._sealed.distinct_values(None), self._tail)

    def group_reduce(
        self,
        values: np.ndarray | None,
        function: str,
        selection: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compressed sealed partials + plain tail partials, merged by key.

        ``mean`` merges ``sum`` and ``count`` partials and divides — a
        per-part mean cannot be combined without its weights.
        """
        if not self._tail.size:
            return self._sealed.group_reduce(values, function, selection)
        if function == "mean":
            keys, sums = self.group_reduce(values, "sum", selection)
            _, counts = self.group_reduce(None, "count", selection)
            return keys, sums / counts
        if selection is None:
            sealed_selection = None
            sealed_values = None if values is None else values[:self._split]
            tail_values = None if values is None else values[self._split:]
            tail_keys_source = self._tail
        else:
            selection = np.asarray(selection)
            cut = self._split_point(selection)
            if cut is not None:
                sealed_selection = selection[:cut]
                tail_keys_source = self._tail[selection[cut:] - self._split]
                sealed_values = None if values is None else values[:cut]
                tail_values = None if values is None else values[cut:]
            else:
                in_sealed = selection < self._split
                sealed_selection = selection[in_sealed]
                tail_keys_source = self._tail[selection[~in_sealed] - self._split]
                sealed_values = None if values is None else values[in_sealed]
                tail_values = None if values is None else values[~in_sealed]
        parts = []
        if sealed_selection is None or sealed_selection.size:
            parts.append(
                self._sealed.group_reduce(sealed_values, function, sealed_selection)
            )
        if tail_keys_source.size:
            if tail_keys_source is self._tail:
                # Full-tail grouping: the tail is immutable per state, so
                # its dictionary decomposition is computed once and reused
                # by every scan of this version — the sort that would
                # otherwise dominate the merge overhead.
                if self._tail_distinct is None:
                    self._tail_distinct = np.unique(self._tail, return_inverse=True)
                tail_keys, tail_codes = self._tail_distinct
            else:
                tail_keys, tail_codes = np.unique(tail_keys_source, return_inverse=True)
            parts.append((
                tail_keys,
                reduce_by_inverse(tail_codes, len(tail_keys), tail_values, function),
            ))
        return merge_group_parts(parts, function, self.dtype)

    # -- sketches ------------------------------------------------------------------

    def hll_sketch(self, selection: np.ndarray | None = None,
                   p: int = 12) -> HyperLogLog:
        """Sealed compressed-stream sketch merged with a tail sketch."""
        sealed_selection, tail_values = self._split_selection(selection)
        sketch = HyperLogLog(p)
        if sealed_selection is None or sealed_selection.size:
            sketch = sketch.merge(self._sealed.hll_sketch(sealed_selection, p))
        if tail_values.size:
            sketch.add_array(tail_values)
        return sketch

    def tdigest_sketch(self, selection: np.ndarray | None = None,
                       compression: int = 256,
                       buffer_limit: int = 4096) -> TDigest:
        sealed_selection, tail_values = self._split_selection(selection)
        digest = TDigest(compression, buffer_limit)
        if sealed_selection is None or sealed_selection.size:
            digest = digest.merge(
                self._sealed.tdigest_sketch(sealed_selection, compression,
                                            buffer_limit)
            )
        if tail_values.size:
            digest.add_array(np.asarray(tail_values, dtype=np.float64))
        return digest


class SnapshotTable:
    """A :class:`~repro.colstore.table.ColumnTable` drop-in over one state.

    Presents the sealed segment plus the frozen tail as one logical table
    of ``sealed + tail`` rows; deletions are *not* applied here — they are
    a base selection the :class:`Snapshot` supplies to its queries, so the
    logical row-id space stays stable for delete targeting.
    """

    def __init__(self, state: "_TableState"):
        self._state = state
        self.name = state.sealed.name

    @property
    def column_names(self) -> list[str]:
        return self._state.sealed.column_names

    @property
    def row_count(self) -> int:
        return self._state.total_rows

    def __len__(self) -> int:
        return self.row_count

    @property
    def compressed_bytes(self) -> int:
        return sum(self.column(name).encoded_bytes for name in self.column_names)

    def encodings(self) -> dict[str, str]:
        return {name: self.column(name).encoding_name for name in self.column_names}

    def __repr__(self) -> str:
        return (
            f"SnapshotTable({self.name!r}, rows={self.row_count}, "
            f"tail={self._state.tail_rows}, version={self._state.version})"
        )

    def column(self, name: str) -> MergedColumn:
        return self._state.merged_column(name)

    def values(self, name: str) -> np.ndarray:
        return self.column(name).values()

    def gather(self, names: Sequence[str],
               indices: np.ndarray | None = None) -> dict[str, np.ndarray]:
        result = {}
        for name in names:
            column = self.column(name)
            result[name] = column.values() if indices is None else column.take(indices)
        return result

    def to_rows(self, names: Sequence[str] | None = None) -> list[tuple]:
        names = list(names) if names is not None else self.column_names
        arrays = [self.values(name) for name in names]
        return list(zip(*[array.tolist() for array in arrays], strict=True)) if arrays else []


class _TableState:
    """One immutable published version of a table.

    Never mutated after publication (the lazy tail/live caches are
    idempotent); a :class:`Snapshot` is one reference to one of these.
    ``deleted`` may be shorter than ``total_rows`` — rows appended after
    the last delete are implicitly live.
    """

    __slots__ = ("sealed", "generation", "version", "chunks", "tail_rows",
                 "deleted", "deleted_count", "_tails", "_merged", "_live")

    def __init__(self, sealed: ColumnTable, generation: int, version: int,
                 chunks: tuple, tail_rows: int,
                 deleted: np.ndarray | None, deleted_count: int):
        self.sealed = sealed
        self.generation = generation
        self.version = version
        self.chunks = chunks
        self.tail_rows = tail_rows
        self.deleted = deleted
        self.deleted_count = deleted_count
        self._tails: dict[str, np.ndarray] = {}
        self._merged: dict[str, MergedColumn] = {}
        self._live: np.ndarray | None = None

    @property
    def total_rows(self) -> int:
        return self.sealed.row_count + self.tail_rows

    @property
    def live_rows(self) -> int:
        return self.total_rows - self.deleted_count

    def tail(self, name: str) -> np.ndarray:
        """The concatenated tail for one column (lazy, cached per state)."""
        cached = self._tails.get(name)
        if cached is None:
            parts = [chunk[name] for chunk in self.chunks]
            if not parts:
                cached = np.empty(0, dtype=self.sealed.column(name).dtype)
            elif len(parts) == 1:
                cached = parts[0]
            else:
                cached = np.concatenate(parts)
            self._tails[name] = cached
        return cached

    def merged_column(self, name: str) -> MergedColumn:
        """The merged view of one column (lazy, cached per state).

        States are shared by every snapshot of one version, so caching the
        :class:`MergedColumn` here lets its idempotent decode/stats caches
        amortise across repeated scans instead of resetting per snapshot.
        """
        merged = self._merged.get(name)
        if merged is None:
            sealed = self.sealed.column(name)  # KeyError names the table
            merged = MergedColumn(sealed, self.tail(name))
            self._merged[name] = merged
        return merged

    def live_positions(self) -> np.ndarray | None:
        """Sorted logical positions of live rows; None when nothing is deleted."""
        if self.deleted is None:
            return None
        if self._live is None:
            mask = np.zeros(self.total_rows, dtype=bool)
            mask[:len(self.deleted)] = self.deleted
            self._live = np.flatnonzero(~mask).astype(np.int64)
        return self._live


class Snapshot:
    """A consistent, immutable view of one table version.

    Acquired with one atomic state-reference read; holding it costs
    nothing and never blocks writers.  All reads through :meth:`query`
    (and the plan executor, which scans through snapshots) see exactly the
    sealed segment, tail length and deletion bitmap frozen at acquisition
    — concurrent appends, deletes and even compactions are invisible.
    """

    def __init__(self, state: _TableState):
        self._state = state
        self._table: ColumnTable | SnapshotTable | None = None

    @property
    def version(self) -> int:
        return self._state.version

    @property
    def generation(self) -> int:
        return self._state.generation

    @property
    def row_count(self) -> int:
        """Total logical rows (sealed + tail), *including* deleted rows."""
        return self._state.total_rows

    @property
    def tail_rows(self) -> int:
        return self._state.tail_rows

    @property
    def deleted_count(self) -> int:
        return self._state.deleted_count

    @property
    def live_rows(self) -> int:
        return self._state.live_rows

    @property
    def table(self) -> ColumnTable | SnapshotTable:
        """This version as a (possibly merged) column table.

        With an empty tail the sealed :class:`ColumnTable` itself is
        returned — the pristine read path is exactly the sealed one.
        """
        if self._table is None:
            state = self._state
            self._table = state.sealed if state.tail_rows == 0 else SnapshotTable(state)
        return self._table

    def live_selection(self) -> np.ndarray | None:
        """Live logical positions as a query base; None when none deleted."""
        return self._state.live_positions()

    def query(self) -> ColumnQuery:
        """A query over this version's live rows (the scan entry point)."""
        return ColumnQuery(self.table, self.live_selection())

    def logical_arrays(self) -> dict[str, np.ndarray]:
        """The snapshot's logical content: live rows, logical order, plain arrays.

        Loading these into a fresh store must answer every (unsampled)
        query identically — the equivalence the property tests assert, and
        the content :meth:`DeltaStore.compact` reseals.
        """
        live = self.live_selection()
        out = {}
        for name in self._state.sealed.column_names:
            column = self.table.column(name)
            out[name] = column.values() if live is None else column.take(live)  # decode-ok: explicit full-materialisation API
        return out

    def __repr__(self) -> str:
        return (
            f"Snapshot({self._state.sealed.name!r}, version={self.version}, "
            f"generation={self.generation}, rows={self.live_rows})"
        )


class DeltaStore:
    """The writable tier over one sealed table: tail + bitmap + versions.

    Writers serialise on one lock and publish complete immutable
    :class:`_TableState` objects by a single reference swap; readers call
    :meth:`snapshot` (one reference read, no lock) and work off that state
    for as long as they like.  The version counter increases by exactly
    one per committed write, so observing versions ``v`` then ``v' > v``
    means every write in between is fully visible.
    """

    def __init__(self, sealed: ColumnTable,
                 on_write: Callable[[], None] | None = None):
        self._lock = threading.Lock()
        self._state = _TableState(sealed, generation=0, version=0, chunks=(),
                                  tail_rows=0, deleted=None, deleted_count=0)
        self._on_write = on_write

    # -- read side -----------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._state.sealed.name

    @property
    def version(self) -> int:
        return self._state.version

    @property
    def generation(self) -> int:
        return self._state.generation

    @property
    def sealed_table(self) -> ColumnTable:
        """The current sealed segment generation (tail/deletes not applied)."""
        return self._state.sealed

    @property
    def tail_rows(self) -> int:
        return self._state.tail_rows

    @property
    def deleted_count(self) -> int:
        return self._state.deleted_count

    def snapshot(self) -> Snapshot:
        """Freeze the current version — one atomic state-reference read."""
        return Snapshot(self._state)

    def __repr__(self) -> str:
        state = self._state
        return (
            f"DeltaStore({state.sealed.name!r}, version={state.version}, "
            f"generation={state.generation}, tail={state.tail_rows}, "
            f"deleted={state.deleted_count})"
        )

    # -- write side ----------------------------------------------------------------

    def _publish(self, state: _TableState) -> None:
        self._state = state

    def _notify(self) -> None:
        if self._on_write is not None:
            self._on_write()

    @staticmethod
    def _coerced_chunk(sealed: ColumnTable, rows: Mapping[str, np.ndarray]) -> tuple[dict, int]:
        """Validate and dtype-coerce one append's column arrays."""
        expected = set(sealed.column_names)
        given = set(rows)
        if given != expected:
            missing = sorted(expected - given)
            extra = sorted(given - expected)
            raise ValueError(
                f"append to {sealed.name!r} must supply exactly its columns; "
                f"missing {missing}, unexpected {extra}"
            )
        chunk: dict[str, np.ndarray] = {}
        length: int | None = None
        for name in sealed.column_names:
            coerced = sealed.column(name).coerce(rows[name])
            if length is None:
                length = len(coerced)
            elif len(coerced) != length:
                raise ValueError(
                    f"column {name!r}: {len(coerced)} values, expected {length}"
                )
            chunk[name] = coerced
        if not length:
            raise ValueError("append needs at least one row")
        return chunk, length

    def append(self, rows: Mapping[str, np.ndarray]) -> int:
        """Append rows (column name → array) to the tail; returns the new version.

        Values are cast to the sealed column dtypes with ``same_kind``
        casting (no silent float→int truncation; strings that do not fit
        the column width are rejected rather than clipped).
        """
        with self._lock:
            state = self._state
            chunk, length = self._coerced_chunk(state.sealed, rows)
            new = _TableState(state.sealed, state.generation, state.version + 1,
                              state.chunks + (chunk,), state.tail_rows + length,
                              state.deleted, state.deleted_count)
            self._publish(new)
        self._notify()
        return new.version

    def delete(self, row_ids) -> int:
        """Mark logical row ids deleted (idempotent); returns the new version."""
        ids = np.atleast_1d(np.asarray(row_ids, dtype=np.int64))
        with self._lock:
            state = self._state
            total = state.total_rows
            if ids.size and (int(ids.min()) < 0 or int(ids.max()) >= total):
                raise IndexError(
                    f"row id out of range [0, {total}) for table "
                    f"{state.sealed.name!r}"
                )
            deleted = np.zeros(total, dtype=bool)
            if state.deleted is not None:
                deleted[:len(state.deleted)] = state.deleted
            deleted[ids] = True
            new = _TableState(state.sealed, state.generation, state.version + 1,
                              state.chunks, state.tail_rows,
                              deleted, int(deleted.sum()))
            self._publish(new)
        self._notify()
        return new.version

    def delete_where(self, expression) -> int:
        """Delete every live row matching a plan expression; returns rows deleted."""
        matching = self.snapshot().query().where(expression).selection
        if matching.size:
            self.delete(matching)
        return int(matching.size)

    def update(self, row_ids, rows: Mapping[str, np.ndarray]) -> int:
        """Delete ``row_ids`` and append replacement ``rows`` as *one* version.

        Readers see either the old rows or the replacements, never the
        gap in between.
        """
        ids = np.atleast_1d(np.asarray(row_ids, dtype=np.int64))
        with self._lock:
            state = self._state
            total = state.total_rows
            if ids.size and (int(ids.min()) < 0 or int(ids.max()) >= total):
                raise IndexError(
                    f"row id out of range [0, {total}) for table "
                    f"{state.sealed.name!r}"
                )
            chunk, length = self._coerced_chunk(state.sealed, rows)
            deleted = np.zeros(total + length, dtype=bool)
            if state.deleted is not None:
                deleted[:len(state.deleted)] = state.deleted
            deleted[ids] = True
            new = _TableState(state.sealed, state.generation, state.version + 1,
                              state.chunks + (chunk,), state.tail_rows + length,
                              deleted, int(deleted.sum()))
            self._publish(new)
        self._notify()
        return new.version

    def compact(self) -> int:
        """Reseal the surviving rows as a new segment generation.

        Re-runs ``best_encoding`` over sealed + tail minus deletions and
        publishes a fresh state (empty tail, empty bitmap, generation + 1)
        with one atomic swap — snapshots acquired before the swap keep
        answering from their own generation.  Logical row ids are
        renumbered densely.
        """
        with self._lock:
            state = self._state
            arrays = Snapshot(state).logical_arrays()
            sealed = ColumnTable.from_arrays(state.sealed.name, arrays,
                                             compress=True)
            new = _TableState(sealed, state.generation + 1, state.version + 1,
                              chunks=(), tail_rows=0, deleted=None,
                              deleted_count=0)
            self._publish(new)
        self._notify()
        return new.version

    def should_compact(self, tail_fraction: float = 0.25) -> bool:
        """True when tail + deletions exceed ``tail_fraction`` of the table."""
        state = self._state
        pending = state.tail_rows + state.deleted_count
        return bool(pending) and pending >= tail_fraction * max(1, state.total_rows)

    def maybe_compact(self, tail_fraction: float = 0.25) -> bool:
        """Compact when :meth:`should_compact`; returns whether it did."""
        if self.should_compact(tail_fraction):
            self.compact()
            return True
        return False
