"""GenBase reproduction: a complex analytics genomics benchmark.

This package is a from-scratch Python reproduction of *GenBase: A Complex
Analytics Genomics Benchmark* (Taft, Vartak, Satish, Sundaram, Madden,
Stonebraker — SIGMOD 2014).  It contains:

* ``repro.datagen`` — the synthetic genomics data generators (microarray,
  patient metadata, gene metadata, gene-ontology membership).
* ``repro.linalg`` — the numerical kernels used by the benchmark queries
  (Householder QR regression, Lanczos SVD, covariance, biclustering,
  Wilcoxon rank-sum), each in "BLAS-backed" and deliberately naive variants.
* ``repro.relational`` — a row-store relational engine (Postgres analog).
* ``repro.colstore`` — a compressed, vectorised column-store engine.
* ``repro.arraydb`` — a chunked array DBMS (SciDB analog).
* ``repro.mapreduce`` — an in-process MapReduce stack with Hive-like and
  Mahout-like layers (Hadoop analog).
* ``repro.rlang`` — an R-like in-memory data-frame and statistics environment.
* ``repro.cluster`` — a multi-node execution simulator with partitioners,
  a network cost model and ScaLAPACK-style distributed linear algebra.
* ``repro.accelerator`` — a Xeon-Phi-style offload coprocessor model.
* ``repro.core`` — the benchmark itself: the five GenBase queries, engine
  adapters for every configuration the paper evaluates, and the runner /
  reporting code that regenerates every figure and table.

The heavyweight sub-packages are imported lazily (PEP 562) so that
``import repro`` stays cheap and utilities like the data generators can be
used without pulling in every engine.

Quickstart::

    from repro import GenBaseDataset, BenchmarkRunner

    dataset = GenBaseDataset.generate("tiny", seed=7)
    runner = BenchmarkRunner()
    result = runner.run("regression", "scidb", dataset)
    print(result.total_seconds, result.analytics_seconds)
"""

from __future__ import annotations

__version__ = "1.0.0"

#: Public names re-exported from sub-packages, resolved lazily on first use.
_LAZY_EXPORTS = {
    "GenBaseDataset": ("repro.datagen", "GenBaseDataset"),
    "SizeSpec": ("repro.datagen", "SizeSpec"),
    "SIZE_PRESETS": ("repro.datagen", "SIZE_PRESETS"),
    "BenchmarkRunner": ("repro.core", "BenchmarkRunner"),
    "QueryResult": ("repro.core", "QueryResult"),
    "QUERY_NAMES": ("repro.core", "QUERY_NAMES"),
    "list_engines": ("repro.core", "list_engines"),
    "make_engine": ("repro.core", "make_engine"),
}

__all__ = ["__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name: str):
    """Resolve the lazily exported public names on first access."""
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
