"""Lanczos iteration for truncated eigen/singular value decomposition.

GenBase Query 4 de-noises the expression matrix with a truncated SVD and the
paper specifies the Lanczos algorithm — "a power method that can iteratively
find the largest eigenvalues of symmetric positive semidefinite matrices"
(Section 3.2.4).  The benchmark asks for the 50 largest singular values and
their vectors.

This module implements Lanczos tridiagonalisation with full
reorthogonalisation on the symmetric operator ``AᵀA`` (or ``AAᵀ``, whichever
is smaller), then recovers the singular triplets of ``A``.  Full
reorthogonalisation costs extra GEMV work but keeps the Ritz values accurate
without the ghost-eigenvalue bookkeeping of selective schemes — the right
trade-off at benchmark matrix sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class LanczosResult:
    """Truncated SVD result ``A ≈ U diag(s) Vᵀ``.

    Attributes:
        singular_values: top-``k`` singular values, descending.
        left_vectors: ``(m, k)`` matrix ``U``.
        right_vectors: ``(n, k)`` matrix ``V``.
        iterations: number of Lanczos steps actually performed.
    """

    singular_values: np.ndarray
    left_vectors: np.ndarray
    right_vectors: np.ndarray
    iterations: int

    def reconstruct(self) -> np.ndarray:
        """Return the rank-``k`` approximation ``U diag(s) Vᵀ``."""
        return (self.left_vectors * self.singular_values) @ self.right_vectors.T


def lanczos_eigsh(
    operator,
    dimension: int,
    k: int,
    max_iterations: int | None = None,
    seed: int = 0,
    tolerance: float = 1e-10,
) -> tuple[np.ndarray, np.ndarray]:
    """Find the ``k`` largest eigenpairs of a symmetric PSD linear operator.

    Args:
        operator: a callable ``v -> A @ v`` for a symmetric PSD matrix ``A``.
        dimension: the dimension of the operator's domain.
        k: number of eigenpairs wanted.
        max_iterations: maximum Krylov dimension (default ``min(dim, 4k+20)``).
        seed: seed for the random start vector.
        tolerance: breakdown tolerance on the off-diagonal recurrence terms.

    Returns:
        ``(eigenvalues, eigenvectors)`` — the eigenvalues in descending order
        and the corresponding Ritz vectors as columns.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if dimension < 1:
        raise ValueError("operator dimension must be positive")
    k = min(k, dimension)
    if max_iterations is None:
        max_iterations = min(dimension, max(2 * k + 20, 4 * k))
    max_iterations = max(k, min(max_iterations, dimension))

    rng = np.random.default_rng(seed)
    q = rng.standard_normal(dimension)
    q /= np.linalg.norm(q)

    basis = np.zeros((max_iterations, dimension))
    alphas = np.zeros(max_iterations)
    betas = np.zeros(max_iterations)

    basis[0] = q
    steps = 0
    for j in range(max_iterations):
        w = operator(basis[j])
        alpha = float(basis[j] @ w)
        alphas[j] = alpha
        w = w - alpha * basis[j]
        if j > 0:
            w = w - betas[j - 1] * basis[j - 1]
        # Full reorthogonalisation against the existing Krylov basis.
        w = w - basis[: j + 1].T @ (basis[: j + 1] @ w)
        beta = float(np.linalg.norm(w))
        steps = j + 1
        if beta <= tolerance:
            break
        if j + 1 < max_iterations:
            betas[j] = beta
            basis[j + 1] = w / beta

    # Eigen-decompose the small tridiagonal matrix.
    tri = np.diag(alphas[:steps])
    for i in range(steps - 1):
        tri[i, i + 1] = betas[i]
        tri[i + 1, i] = betas[i]
    eigenvalues, eigenvectors = np.linalg.eigh(tri)
    order = np.argsort(eigenvalues)[::-1][:k]
    ritz_values = eigenvalues[order]
    ritz_vectors = basis[:steps].T @ eigenvectors[:, order]
    # Normalise the Ritz vectors (reorthogonalisation keeps them close already).
    norms = np.linalg.norm(ritz_vectors, axis=0)
    norms[norms == 0] = 1.0
    ritz_vectors = ritz_vectors / norms
    return ritz_values, ritz_vectors


def lanczos_svd(
    matrix: np.ndarray,
    k: int = 50,
    max_iterations: int | None = None,
    seed: int = 0,
) -> LanczosResult:
    """Compute the top-``k`` singular triplets of ``matrix`` via Lanczos.

    The Lanczos recurrence runs on whichever Gram operator (``AᵀA`` or
    ``AAᵀ``) has the smaller dimension; the other side's singular vectors are
    recovered by one extra multiplication with ``A``.

    Args:
        matrix: ``(m, n)`` dense matrix.
        k: number of singular values/vectors to compute (clipped to
            ``min(m, n)``).
        max_iterations: Krylov dimension cap forwarded to
            :func:`lanczos_eigsh`.
        seed: start-vector seed.
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("lanczos_svd expects a 2-D matrix")
    m, n = a.shape
    if m == 0 or n == 0:
        raise ValueError("cannot compute the SVD of an empty matrix")
    k = max(1, min(k, m, n))

    use_gram_of_columns = n <= m  # operate on A^T A (n x n) when it is smaller

    if use_gram_of_columns:
        def operator(v: np.ndarray) -> np.ndarray:
            return a.T @ (a @ v)

        eigenvalues, right = lanczos_eigsh(
            operator, dimension=n, k=k, max_iterations=max_iterations, seed=seed
        )
        singular_values = np.sqrt(np.clip(eigenvalues, 0.0, None))
        left = a @ right
        scale = np.where(singular_values > 0, singular_values, 1.0)
        left = left / scale
    else:
        def operator(v: np.ndarray) -> np.ndarray:
            return a @ (a.T @ v)

        eigenvalues, left = lanczos_eigsh(
            operator, dimension=m, k=k, max_iterations=max_iterations, seed=seed
        )
        singular_values = np.sqrt(np.clip(eigenvalues, 0.0, None))
        right = a.T @ left
        scale = np.where(singular_values > 0, singular_values, 1.0)
        right = right / scale

    # Normalise the derived side's vectors to unit length.
    left_norms = np.linalg.norm(left, axis=0)
    left_norms[left_norms == 0] = 1.0
    left = left / left_norms
    right_norms = np.linalg.norm(right, axis=0)
    right_norms[right_norms == 0] = 1.0
    right = right / right_norms

    return LanczosResult(
        singular_values=singular_values,
        left_vectors=left,
        right_vectors=right,
        iterations=int(min(k, min(m, n))),
    )
