"""Wilcoxon rank-sum test and GO-term enrichment (GenBase Query 5).

Query 5 replicates gene-set enrichment: rank all genes by expression for a
patient subset, then for each GO term test whether the genes belonging to
that term sit unusually high or low in the ranking.  The paper specifies the
Wilcoxon rank-sum (Mann–Whitney U) statistical test (Section 3.2.5).

The implementation uses the normal approximation with tie correction and a
continuity correction — the same default as R's ``wilcox.test`` for sample
sizes beyond the exact-distribution range, which all benchmark sizes are.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import erfc, sqrt

import numpy as np


@dataclass
class WilcoxonResult:
    """Result of one two-sample Wilcoxon rank-sum test.

    Attributes:
        statistic: the Mann–Whitney U statistic for the *first* sample.
        z_score: the (tie- and continuity-corrected) normal approximation.
        p_value: two-sided p-value.
        n_first: size of the first sample.
        n_second: size of the second sample.
    """

    statistic: float
    z_score: float
    p_value: float
    n_first: int
    n_second: int


@dataclass
class EnrichmentResult:
    """Per-GO-term enrichment results for one query run.

    Attributes:
        go_ids: GO term identifiers tested.
        p_values: two-sided p-values, aligned with ``go_ids``.
        z_scores: signed z-scores (positive: members rank high).
        significant: boolean mask of terms below the significance level.
        alpha: the significance level used.
    """

    go_ids: np.ndarray
    p_values: np.ndarray
    z_scores: np.ndarray
    significant: np.ndarray
    alpha: float

    def significant_terms(self) -> np.ndarray:
        """Return the GO ids deemed significant."""
        return self.go_ids[self.significant]

    def as_rows(self) -> list[tuple[int, float, float, bool]]:
        """Return ``(go_id, p_value, z_score, significant)`` tuples."""
        return [
            (int(g), float(p), float(z), bool(s))
            for g, p, z, s in zip(self.go_ids, self.p_values, self.z_scores, self.significant, strict=True)
        ]


def _rank_with_ties(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return midranks of ``values`` and the sizes of each tie group."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=np.float64)
    sorted_values = values[order]
    tie_sizes = []
    i = 0
    n = len(values)
    while i < n:
        j = i
        while j + 1 < n and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        # midrank for the tie group spanning positions i..j (0-based)
        midrank = (i + j) / 2.0 + 1.0
        ranks[order[i:j + 1]] = midrank
        tie_sizes.append(j - i + 1)
        i = j + 1
    return ranks, np.asarray(tie_sizes, dtype=np.float64)


def rank_sum_test(first: np.ndarray, second: np.ndarray) -> WilcoxonResult:
    """Two-sided Wilcoxon rank-sum (Mann–Whitney U) test.

    Args:
        first: sample of values for the group of interest (e.g. the genes in
            a GO term, scored by expression).
        second: sample for the complement group.

    Returns:
        A :class:`WilcoxonResult`.  With an empty sample the test is
        undefined and a ``ValueError`` is raised.
    """
    first = np.asarray(first, dtype=np.float64).ravel()
    second = np.asarray(second, dtype=np.float64).ravel()
    n1, n2 = len(first), len(second)
    if n1 == 0 or n2 == 0:
        raise ValueError("both samples must be non-empty for the rank-sum test")

    combined = np.concatenate([first, second])
    ranks, tie_sizes = _rank_with_ties(combined)
    rank_sum_first = float(ranks[:n1].sum())

    u_statistic = rank_sum_first - n1 * (n1 + 1) / 2.0
    mean_u = n1 * n2 / 2.0

    n = n1 + n2
    tie_term = float(np.sum(tie_sizes ** 3 - tie_sizes))
    variance = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1))) if n > 1 else 0.0

    if variance <= 0:
        # All values identical: no evidence of a shift.
        return WilcoxonResult(
            statistic=u_statistic, z_score=0.0, p_value=1.0, n_first=n1, n_second=n2
        )

    # Continuity correction toward the mean.
    delta = u_statistic - mean_u
    correction = 0.5 if delta > 0 else (-0.5 if delta < 0 else 0.0)
    z = (delta - correction) / sqrt(variance)
    p_value = erfc(abs(z) / sqrt(2.0))  # two-sided normal tail
    return WilcoxonResult(
        statistic=u_statistic,
        z_score=z,
        p_value=min(1.0, p_value),
        n_first=n1,
        n_second=n2,
    )


def enrichment_analysis(
    gene_scores: np.ndarray,
    membership: np.ndarray,
    go_ids: np.ndarray | None = None,
    alpha: float = 0.05,
) -> EnrichmentResult:
    """Run the Query-5 enrichment test for every GO term.

    Args:
        gene_scores: length-``n_genes`` array of per-gene scores (the paper
            ranks genes by their expression over the sampled patients; the
            mean expression per gene is the score used here).
        membership: ``(n_genes, n_terms)`` 0/1 membership matrix.
        go_ids: optional explicit GO ids (defaults to ``0..n_terms-1``).
        alpha: significance level for the ``significant`` mask.

    Returns:
        An :class:`EnrichmentResult` over all testable terms.  Terms where
        every gene (or no gene) is a member are reported with p-value 1.0.
    """
    gene_scores = np.asarray(gene_scores, dtype=np.float64).ravel()
    membership = np.asarray(membership)
    if membership.ndim != 2:
        raise ValueError("membership must be a 2-D gene x GO-term matrix")
    if membership.shape[0] != len(gene_scores):
        raise ValueError(
            f"membership has {membership.shape[0]} genes but scores has {len(gene_scores)}"
        )
    n_terms = membership.shape[1]
    if go_ids is None:
        go_ids = np.arange(n_terms)
    go_ids = np.asarray(go_ids)
    if len(go_ids) != n_terms:
        raise ValueError("go_ids length must match the number of membership columns")

    p_values = np.ones(n_terms, dtype=np.float64)
    z_scores = np.zeros(n_terms, dtype=np.float64)
    for term_index in range(n_terms):
        members = membership[:, term_index] != 0
        n_members = int(members.sum())
        if n_members == 0 or n_members == len(gene_scores):
            continue
        inside = gene_scores[members]
        outside = gene_scores[~members]
        result = rank_sum_test(inside, outside)
        p_values[term_index] = result.p_value
        z_scores[term_index] = result.z_score

    significant = p_values < alpha
    return EnrichmentResult(
        go_ids=go_ids,
        p_values=p_values,
        z_scores=z_scores,
        significant=significant,
        alpha=alpha,
    )
