"""Householder QR decomposition and QR-based linear regression.

Query 1 of the GenBase benchmark builds a linear model predicting patient
drug response from gene expression values and explicitly calls for a QR
decomposition technique (paper Section 3.2.1).  This module implements:

* :func:`householder_qr` — a from-scratch Householder-reflection QR,
* :func:`lstsq_qr` — least squares via QR with back substitution,
* :func:`linear_regression` — the full regression fit (intercept, R²,
  residuals) used by the engine adapters.

The from-scratch QR is the reference implementation; engines that model a
BLAS-backed system may pass ``method="lapack"`` to use numpy's LAPACK QR,
which produces the same coefficients to numerical precision but runs much
faster — exactly the gap the paper attributes to tuned linear algebra
packages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class RegressionResult:
    """Result of fitting ``y ≈ X @ coefficients (+ intercept)``.

    Attributes:
        coefficients: per-feature weights (excludes the intercept).
        intercept: fitted intercept, 0.0 when ``fit_intercept=False``.
        residuals: ``y - predictions``.
        r_squared: coefficient of determination on the training data.
        rank: numerical rank of the design matrix used.
        method: "householder" or "lapack".
    """

    coefficients: np.ndarray
    intercept: float
    residuals: np.ndarray
    r_squared: float
    rank: int
    method: str

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Apply the fitted model to a new feature matrix."""
        features = np.asarray(features, dtype=np.float64)
        return features @ self.coefficients + self.intercept


def householder_qr(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Compute the thin QR decomposition using Householder reflections.

    Args:
        matrix: an ``(m, n)`` array with ``m >= n``.

    Returns:
        ``(Q, R)`` where ``Q`` is ``(m, n)`` with orthonormal columns and
        ``R`` is ``(n, n)`` upper triangular, such that ``Q @ R == matrix``
        to numerical precision.

    Raises:
        ValueError: if the matrix has more columns than rows.
    """
    a = np.array(matrix, dtype=np.float64, copy=True)
    if a.ndim != 2:
        raise ValueError("householder_qr expects a 2-D matrix")
    m, n = a.shape
    if m < n:
        raise ValueError(f"need m >= n for thin QR, got shape {a.shape}")

    # Accumulate the Householder vectors in-place below the diagonal of `a`
    # and apply them to an identity to build the thin Q at the end.
    q_full = np.eye(m, dtype=np.float64)
    for k in range(n):
        column = a[k:, k]
        norm = np.linalg.norm(column)
        if norm == 0.0:
            continue
        # Choose the sign that avoids cancellation.
        alpha = -np.sign(column[0]) * norm if column[0] != 0 else -norm
        v = column.copy()
        v[0] -= alpha
        v_norm = np.linalg.norm(v)
        if v_norm == 0.0:
            continue
        v /= v_norm
        # Apply the reflector H = I - 2 v v^T to the trailing submatrix.
        a[k:, k:] -= 2.0 * np.outer(v, v @ a[k:, k:])
        # Accumulate into Q (apply H on the right of the growing product).
        q_full[:, k:] -= 2.0 * np.outer(q_full[:, k:] @ v, v)

    r = np.triu(a[:n, :])
    q = q_full[:, :n]
    return q, r


def _back_substitute(r: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve the upper-triangular system ``r @ x = rhs``.

    Numerically zero diagonal entries produce zero coefficients so the solve
    never divides by ~0.  This keeps rank-deficient systems finite, but the
    result is only the true least-squares minimiser for full-column-rank
    designs (GenBase's expression matrices always are); a column-pivoted QR
    would be needed for exact rank-deficient handling.
    """
    n = r.shape[0]
    x = np.zeros(n, dtype=np.float64)
    tolerance = max(r.shape) * np.finfo(np.float64).eps * (np.abs(np.diag(r)).max() or 1.0)
    for i in range(n - 1, -1, -1):
        pivot = r[i, i]
        if abs(pivot) <= tolerance:
            x[i] = 0.0
            continue
        x[i] = (rhs[i] - r[i, i + 1:] @ x[i + 1:]) / pivot
    return x


def _forward_substitute(lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve the lower-triangular system ``lower @ x = rhs``."""
    n = lower.shape[0]
    x = np.zeros(n, dtype=np.float64)
    diag = np.abs(np.diag(lower))
    tolerance = max(lower.shape) * np.finfo(np.float64).eps * (diag.max() if diag.size else 1.0)
    for i in range(n):
        pivot = lower[i, i]
        if abs(pivot) <= tolerance:
            x[i] = 0.0
            continue
        x[i] = (rhs[i] - lower[i, :i] @ x[:i]) / pivot
    return x


def lstsq_qr(
    design: np.ndarray,
    target: np.ndarray,
    method: str = "householder",
) -> tuple[np.ndarray, int]:
    """Solve ``min ||design @ beta - target||`` via QR decomposition.

    Overdetermined systems (``m >= n``) use the thin QR of the design
    matrix; underdetermined systems (``m < n``) return the minimum-norm
    solution via the QR of the transposed design — the same convention
    LAPACK's ``gelsy``/``gelsd`` follow, which matters for GenBase Query 1
    when a heavily filtered gene set leaves more genes than patients.

    Args:
        design: ``(m, n)`` design matrix.
        target: length-``m`` response vector.
        method: ``"householder"`` (from-scratch) or ``"lapack"`` (numpy QR).

    Returns:
        ``(beta, rank)`` — the coefficient vector and the numerical rank of
        the design matrix.
    """
    design = np.asarray(design, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64).ravel()
    if design.ndim != 2:
        raise ValueError("design must be 2-D")
    if design.shape[0] != target.shape[0]:
        raise ValueError(
            f"design has {design.shape[0]} rows but target has {target.shape[0]} entries"
        )
    if method not in ("householder", "lapack"):
        raise ValueError(f"unknown QR method {method!r}")

    def factorize(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if method == "householder":
            return householder_qr(matrix)
        return np.linalg.qr(matrix, mode="reduced")

    m, n = design.shape
    if m >= n:
        q, r = factorize(design)
        diag = np.abs(np.diag(r))
        tolerance = max(design.shape) * np.finfo(np.float64).eps * (diag.max() if diag.size else 0.0)
        rank = int(np.sum(diag > tolerance))
        beta = _back_substitute(r, q.T @ target)
        return beta, rank

    # Underdetermined: minimum-norm solution via QR of the transpose.
    q, r = factorize(design.T)
    diag = np.abs(np.diag(r))
    tolerance = max(design.shape) * np.finfo(np.float64).eps * (diag.max() if diag.size else 0.0)
    rank = int(np.sum(diag > tolerance))
    z = _forward_substitute(r.T, target)
    beta = q @ z
    return beta, rank


def linear_regression(
    features: np.ndarray,
    target: np.ndarray,
    fit_intercept: bool = True,
    method: str = "householder",
) -> RegressionResult:
    """Fit an ordinary-least-squares model via QR decomposition.

    This is the analytics kernel of GenBase Query 1: ``features`` is the
    patients × selected-genes expression sub-matrix and ``target`` is the
    drug-response column from the patient metadata.

    Args:
        features: ``(n_samples, n_features)`` matrix.
        target: length ``n_samples`` response vector.
        fit_intercept: prepend a constant column when True.
        method: ``"householder"`` or ``"lapack"`` (see :func:`lstsq_qr`).
    """
    features = np.asarray(features, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64).ravel()
    if features.ndim == 1:
        features = features.reshape(-1, 1)
    n_samples = features.shape[0]
    if n_samples != target.shape[0]:
        raise ValueError("features and target disagree on sample count")
    if n_samples == 0:
        raise ValueError("cannot fit a regression on zero samples")

    if fit_intercept:
        design = np.column_stack([np.ones(n_samples), features])
    else:
        design = features

    beta, rank = lstsq_qr(design, target, method=method)

    if fit_intercept:
        intercept = float(beta[0])
        coefficients = beta[1:]
    else:
        intercept = 0.0
        coefficients = beta

    predictions = features @ coefficients + intercept
    residuals = target - predictions
    total_ss = float(np.sum((target - target.mean()) ** 2))
    residual_ss = float(np.sum(residuals ** 2))
    r_squared = 1.0 - residual_ss / total_ss if total_ss > 0 else 1.0

    return RegressionResult(
        coefficients=coefficients,
        intercept=intercept,
        residuals=residuals,
        r_squared=r_squared,
        rank=rank,
        method=method,
    )
