"""BLAS/LAPACK-tier kernels (numpy/scipy backed).

These wrappers stand in for the tuned packages the paper's fast
configurations lean on — R's BLAS/LAPACK, Madlib's C++ UDFs, SciDB's
ScaLAPACK bindings and Intel MKL.  They use numpy's vendored BLAS/LAPACK, so
on any modern machine they exhibit the same qualitative behaviour the paper
describes: dense kernels that are orders of magnitude faster than the
interpreted tier in :mod:`repro.linalg.naive`.

The functions return the same shapes as the reference implementations so
engine adapters can switch tiers with a single argument.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.qr import RegressionResult


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense GEMM."""
    return np.asarray(a, dtype=np.float64) @ np.asarray(b, dtype=np.float64)


def covariance_matrix(matrix: np.ndarray, ddof: int = 1) -> np.ndarray:
    """Column covariance via a single centred GEMM (same as the reference)."""
    from repro.linalg.covariance import covariance_matrix as reference

    return reference(matrix, ddof=ddof)


def linear_regression(features: np.ndarray, target: np.ndarray,
                      fit_intercept: bool = True) -> RegressionResult:
    """OLS via LAPACK's QR (``numpy.linalg.qr``), the fast path for Q1."""
    from repro.linalg.qr import linear_regression as reference

    return reference(features, target, fit_intercept=fit_intercept, method="lapack")


def truncated_svd(matrix: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Top-``k`` singular triplets via LAPACK's full SVD, then truncation.

    For the benchmark's matrix shapes the full ``gesdd`` decomposition is
    fast enough that this is the realistic "just call LAPACK" baseline the
    Lanczos implementation is compared against in the ablation benches.
    """
    a = np.asarray(matrix, dtype=np.float64)
    u, s, vt = np.linalg.svd(a, full_matrices=False)
    k = max(1, min(k, len(s)))
    return u[:, :k], s[:k], vt[:k, :].T


def gram_eigsh(matrix: np.ndarray, k: int) -> np.ndarray:
    """Top-``k`` eigenvalues of ``AᵀA`` via LAPACK ``eigh`` (utility for tests)."""
    a = np.asarray(matrix, dtype=np.float64)
    gram = a.T @ a
    eigenvalues = np.linalg.eigvalsh(gram)
    k = max(1, min(k, len(eigenvalues)))
    return np.sort(eigenvalues)[::-1][:k]
