"""Covariance and correlation kernels (GenBase Query 2).

Query 2 computes the covariance between the expression time series of all
pairs of genes for a selected patient subset, thresholds it, and joins the
surviving pairs back to the gene metadata (paper Section 3.2.2).  The heavy
step is the ``genes × genes`` covariance matrix — the ``S × Sᵀ``-style
computation the paper's Wall Street example motivates.

The implementation centres the columns and uses a single GEMM, which is the
"do it with BLAS" strategy; the deliberately slow per-pair loop lives in
:mod:`repro.linalg.naive`.
"""

from __future__ import annotations

import numpy as np


def covariance_matrix(matrix: np.ndarray, ddof: int = 1) -> np.ndarray:
    """Compute the column-by-column covariance matrix of ``matrix``.

    Args:
        matrix: ``(n_samples, n_features)`` array; covariance is computed
            between *columns* (genes).
        ddof: delta degrees of freedom (1 gives the unbiased estimator).

    Returns:
        ``(n_features, n_features)`` symmetric covariance matrix.

    Raises:
        ValueError: on empty input or when ``n_samples - ddof <= 0``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("covariance_matrix expects a 2-D matrix")
    n_samples = matrix.shape[0]
    if n_samples == 0:
        raise ValueError("cannot compute covariance of zero samples")
    denominator = n_samples - ddof
    if denominator <= 0:
        raise ValueError(
            f"need more than {ddof} samples for ddof={ddof}, got {n_samples}"
        )
    centered = matrix - matrix.mean(axis=0, keepdims=True)
    cov = centered.T @ centered / denominator
    # Enforce exact symmetry (GEMM rounding can leave ~1e-17 asymmetry).
    return (cov + cov.T) / 2.0


def correlation_matrix(matrix: np.ndarray) -> np.ndarray:
    """Compute the Pearson correlation matrix between columns.

    Columns with zero variance produce zero correlation with everything
    (rather than NaN), which keeps downstream thresholding well defined.
    """
    cov = covariance_matrix(matrix, ddof=1)
    std = np.sqrt(np.diag(cov))
    with np.errstate(divide="ignore", invalid="ignore"):
        outer = np.outer(std, std)
        corr = np.where(outer > 0, cov / outer, 0.0)
    np.fill_diagonal(corr, np.where(std > 0, 1.0, 0.0))
    return corr


def top_covariant_pairs(
    cov: np.ndarray,
    fraction: float = 0.10,
    absolute: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Select the top fraction of off-diagonal gene pairs by covariance.

    This is the thresholding step of Query 2 ("covariance greater than a
    threshold, e.g. top 10%").

    Args:
        cov: square covariance matrix.
        fraction: fraction of (unordered) off-diagonal pairs to keep.
        absolute: rank by absolute covariance when True (the biological
            motivation counts strong negative covariance as interesting too).

    Returns:
        ``(gene_a, gene_b, value)`` arrays for the selected pairs, sorted by
        decreasing ranking score; ``gene_a < gene_b`` for every pair.
    """
    cov = np.asarray(cov, dtype=np.float64)
    if cov.ndim != 2 or cov.shape[0] != cov.shape[1]:
        raise ValueError("top_covariant_pairs expects a square matrix")
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    n = cov.shape[0]
    if n < 2:
        return (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp), np.empty(0))

    row_idx, col_idx = np.triu_indices(n, k=1)
    values = cov[row_idx, col_idx]
    scores = np.abs(values) if absolute else values
    n_keep = max(1, int(np.ceil(fraction * len(values))))
    order = np.argsort(scores)[::-1][:n_keep]
    return row_idx[order], col_idx[order], values[order]
