"""Deliberately naive (interpreter-bound) analytics kernels.

The paper attributes much of Hadoop/Mahout's poor showing — and part of the
gap between Madlib's C++ UDFs and its SQL/plpython ones — to analytics code
that does not go through a tuned linear algebra package: "matrix operations
are not done through a high performance linear algebra package"
(Section 4.3) and "simulating linear algebra operations in SQL … will result
in code that is largely interpreted" (Section 1).

This module is that code path, built honestly: the kernels below are
straightforward pure-Python loops over lists/element indexing, with no numpy
vectorisation in the inner loops.  The Mahout-style and SQL-simulation
engine adapters call these, so the orders-of-magnitude gap measured by the
benchmark is produced by real interpreted execution rather than a fudge
factor.

The functions intentionally mirror the signatures of their fast counterparts
in the rest of :mod:`repro.linalg` so engines can swap tiers.
"""

from __future__ import annotations

import math

import numpy as np


def matmul(a, b) -> list[list[float]]:
    """Triple-loop matrix multiply over Python lists."""
    a = [list(map(float, row)) for row in np.asarray(a)]
    b = [list(map(float, row)) for row in np.asarray(b)]
    if not a or not b:
        return []
    inner = len(b)
    if len(a[0]) != inner:
        raise ValueError("inner dimensions do not match")
    n_cols = len(b[0])
    result = [[0.0] * n_cols for _ in range(len(a))]
    for i, row in enumerate(a):
        out_row = result[i]
        for k in range(inner):
            a_ik = row[k]
            if a_ik == 0.0:
                continue
            b_row = b[k]
            for j in range(n_cols):
                out_row[j] += a_ik * b_row[j]
    return result


def transpose(a) -> list[list[float]]:
    """Transpose a list-of-lists matrix."""
    a = [list(map(float, row)) for row in np.asarray(a)]
    if not a:
        return []
    return [[a[i][j] for i in range(len(a))] for j in range(len(a[0]))]


def covariance_matrix(matrix) -> np.ndarray:
    """Per-pair covariance computed with explicit loops (no GEMM).

    Matches :func:`repro.linalg.covariance.covariance_matrix` with
    ``ddof=1`` but runs in O(samples x genes^2) interpreted Python.
    """
    data = np.asarray(matrix, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("covariance_matrix expects a 2-D matrix")
    n_samples, n_features = data.shape
    if n_samples < 2:
        raise ValueError("need at least two samples for covariance with ddof=1")
    columns = [list(data[:, j]) for j in range(n_features)]
    means = [sum(col) / n_samples for col in columns]
    centered = [
        [value - means[j] for value in columns[j]] for j in range(n_features)
    ]
    cov = np.zeros((n_features, n_features), dtype=np.float64)
    for i in range(n_features):
        col_i = centered[i]
        for j in range(i, n_features):
            col_j = centered[j]
            total = 0.0
            for k in range(n_samples):
                total += col_i[k] * col_j[k]
            value = total / (n_samples - 1)
            cov[i, j] = value
            cov[j, i] = value
    return cov


def _gaussian_solve(a: list[list[float]], b: list[float]) -> list[float]:
    """Solve a dense linear system with partial-pivot Gaussian elimination."""
    n = len(a)
    # Augmented matrix, copied.
    aug = [list(a[i]) + [b[i]] for i in range(n)]
    for col in range(n):
        # Partial pivoting.
        pivot_row = max(range(col, n), key=lambda r, c=col: abs(aug[r][c]))
        if abs(aug[pivot_row][col]) < 1e-12:
            continue
        aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        for row in range(col + 1, n):
            factor = aug[row][col] / pivot
            if factor == 0.0:
                continue
            for k in range(col, n + 1):
                aug[row][k] -= factor * aug[col][k]
    x = [0.0] * n
    for row in range(n - 1, -1, -1):
        pivot = aug[row][row]
        if abs(pivot) < 1e-12:
            x[row] = 0.0
            continue
        total = aug[row][n]
        for k in range(row + 1, n):
            total -= aug[row][k] * x[k]
        x[row] = total / pivot
    return x


def linear_regression(features, target, fit_intercept: bool = True) -> np.ndarray:
    """OLS via normal equations solved with Gaussian elimination, all loops.

    Returns the coefficient vector (intercept first when requested), matching
    what the Mahout-style engines need for Query 1.
    """
    x = np.asarray(features, dtype=np.float64)
    y = list(np.asarray(target, dtype=np.float64).ravel())
    if x.ndim == 1:
        x = x.reshape(-1, 1)
    rows = [list(map(float, row)) for row in x]
    if fit_intercept:
        rows = [[1.0] + row for row in rows]
    n_features = len(rows[0]) if rows else 0
    # Normal equations X^T X beta = X^T y with explicit loops.
    xtx = [[0.0] * n_features for _ in range(n_features)]
    xty = [0.0] * n_features
    for row, y_value in zip(rows, y, strict=True):
        for i in range(n_features):
            r_i = row[i]
            xty[i] += r_i * y_value
            for j in range(i, n_features):
                xtx[i][j] += r_i * row[j]
    for i in range(n_features):
        for j in range(i + 1, n_features):
            xtx[j][i] = xtx[i][j]
    beta = _gaussian_solve(xtx, xty)
    return np.asarray(beta, dtype=np.float64)


def power_iteration_svd(matrix, k: int, n_iterations: int = 30, seed: int = 0) -> np.ndarray:
    """Top-``k`` singular values via repeated power iteration with deflation.

    This is the kind of simple iterative method a MapReduce analytics layer
    implements; it converges slowly and touches the matrix many times.
    Only the singular values are returned (that is all the benchmark's
    correctness checks need from this tier).
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("power_iteration_svd expects a 2-D matrix")
    m, n = a.shape
    k = max(1, min(k, m, n))
    rng = np.random.default_rng(seed)
    # Work on the Gram matrix as nested lists to stay interpreter-bound.
    gram = matmul(transpose(a), a) if n <= m else matmul(a, transpose(a))
    dim = len(gram)
    singular_values = []
    for _ in range(k):
        vector = list(rng.standard_normal(dim))
        eigenvalue = 0.0
        for _ in range(n_iterations):
            next_vector = [0.0] * dim
            for i in range(dim):
                row = gram[i]
                total = 0.0
                for j in range(dim):
                    total += row[j] * vector[j]
                next_vector[i] = total
            norm = math.sqrt(sum(value * value for value in next_vector))
            if norm == 0.0:
                break
            vector = [value / norm for value in next_vector]
            eigenvalue = norm
        singular_values.append(math.sqrt(max(eigenvalue, 0.0)))
        # Deflate: gram -= eigenvalue * v v^T
        for i in range(dim):
            v_i = vector[i]
            if v_i == 0.0:
                continue
            row = gram[i]
            for j in range(dim):
                row[j] -= eigenvalue * v_i * vector[j]
    return np.asarray(singular_values, dtype=np.float64)


def wilcoxon_rank_sum(first, second) -> float:
    """Two-sided rank-sum p-value computed with plain Python loops."""
    first = [float(v) for v in np.asarray(first).ravel()]
    second = [float(v) for v in np.asarray(second).ravel()]
    n1, n2 = len(first), len(second)
    if n1 == 0 or n2 == 0:
        raise ValueError("both samples must be non-empty")
    combined = [(value, 0) for value in first] + [(value, 1) for value in second]
    combined.sort(key=lambda pair: pair[0])
    # Midranks with ties.
    ranks = [0.0] * len(combined)
    tie_correction = 0.0
    i = 0
    n = len(combined)
    while i < n:
        j = i
        while j + 1 < n and combined[j + 1][0] == combined[i][0]:
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for idx in range(i, j + 1):
            ranks[idx] = midrank
        group = j - i + 1
        tie_correction += group ** 3 - group
        i = j + 1
    rank_sum_first = sum(rank for rank, (_, label) in zip(ranks, combined, strict=True) if label == 0)
    u_statistic = rank_sum_first - n1 * (n1 + 1) / 2.0
    mean_u = n1 * n2 / 2.0
    variance = n1 * n2 / 12.0 * ((n + 1) - tie_correction / (n * (n - 1))) if n > 1 else 0.0
    if variance <= 0:
        return 1.0
    delta = u_statistic - mean_u
    correction = 0.5 if delta > 0 else (-0.5 if delta < 0 else 0.0)
    z = (delta - correction) / math.sqrt(variance)
    return min(1.0, math.erfc(abs(z) / math.sqrt(2.0)))
