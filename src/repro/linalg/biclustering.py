"""Cheng–Church biclustering (GenBase Query 3).

Query 3 clusters rows (patients) and columns (genes) of the expression
matrix simultaneously to find sub-matrices with similar patterns (paper
Section 3.2.3) — e.g. a block of patients and genes that are jointly
under-expressed.

The paper does not pin a specific algorithm, so we implement the classic
Cheng & Church (2000) δ-bicluster procedure: repeatedly find a sub-matrix
whose *mean squared residue* (MSR) is below a threshold δ by greedy node
deletion, then grow it back with node addition, mask the found bicluster
with noise and repeat.  This is the algorithm most biclustering packages
(including the R ``biclust`` package the original GenBase scripts use)
implement as their reference method.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Bicluster:
    """One discovered bicluster.

    Attributes:
        rows: indices of the member rows (patients).
        columns: indices of the member columns (genes).
        msr: the mean squared residue of the final block.
    """

    rows: np.ndarray
    columns: np.ndarray
    msr: float

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.rows), len(self.columns))

    def submatrix(self, matrix: np.ndarray) -> np.ndarray:
        """Extract this bicluster's block from the original matrix."""
        return matrix[np.ix_(self.rows, self.columns)]


@dataclass
class BiclusteringResult:
    """All biclusters found in one run."""

    biclusters: list[Bicluster] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.biclusters)

    def __iter__(self):
        return iter(self.biclusters)

    def membership_matrix(self, shape: tuple[int, int]) -> np.ndarray:
        """Return an int matrix labelling each cell with a bicluster id (+1).

        Cells not covered by any bicluster are 0; overlapping cells keep the
        label of the earliest (largest) bicluster.
        """
        labels = np.zeros(shape, dtype=np.int32)
        for index, bicluster in enumerate(reversed(self.biclusters)):
            value = len(self.biclusters) - index
            labels[np.ix_(bicluster.rows, bicluster.columns)] = value
        return labels


def mean_squared_residue(block: np.ndarray) -> float:
    """Compute the Cheng–Church mean squared residue of a matrix block.

    The residue of cell (i, j) is
    ``a_ij - row_mean_i - col_mean_j + block_mean``; the MSR is the mean of
    its square.  An MSR of 0 means the block is perfectly "additive"
    (all rows shift by a constant relative to each other).
    """
    block = np.asarray(block, dtype=np.float64)
    if block.size == 0:
        return 0.0
    row_means = block.mean(axis=1, keepdims=True)
    col_means = block.mean(axis=0, keepdims=True)
    overall = block.mean()
    residue = block - row_means - col_means + overall
    return float(np.mean(residue ** 2))


def _row_col_residues(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-row and per-column mean squared residue contributions."""
    row_means = block.mean(axis=1, keepdims=True)
    col_means = block.mean(axis=0, keepdims=True)
    overall = block.mean()
    residue = (block - row_means - col_means + overall) ** 2
    return residue.mean(axis=1), residue.mean(axis=0)


def _single_node_deletion(
    matrix: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    delta: float,
    min_rows: int,
    min_cols: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Greedily delete the worst row/column until the MSR drops below delta."""
    rows = rows.copy()
    cols = cols.copy()
    while len(rows) > min_rows and len(cols) > min_cols:
        block = matrix[np.ix_(rows, cols)]
        if mean_squared_residue(block) <= delta:
            break
        row_res, col_res = _row_col_residues(block)
        worst_row = int(np.argmax(row_res))
        worst_col = int(np.argmax(col_res))
        if row_res[worst_row] >= col_res[worst_col] and len(rows) > min_rows:
            rows = np.delete(rows, worst_row)
        elif len(cols) > min_cols:
            cols = np.delete(cols, worst_col)
        else:
            rows = np.delete(rows, worst_row)
    return rows, cols


def _multiple_node_deletion(
    matrix: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    delta: float,
    alpha: float,
    min_rows: int,
    min_cols: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Delete all rows/columns whose residue exceeds ``alpha * MSR`` at once.

    This is the speed-up phase Cheng & Church use for large matrices; it
    converges much faster than single deletion and the benchmark matrices
    are large enough for it to matter.
    """
    rows = rows.copy()
    cols = cols.copy()
    changed = True
    while changed and len(rows) > min_rows and len(cols) > min_cols:
        changed = False
        block = matrix[np.ix_(rows, cols)]
        msr = mean_squared_residue(block)
        if msr <= delta:
            break
        row_res, col_res = _row_col_residues(block)
        keep_rows = row_res <= alpha * msr
        if keep_rows.sum() >= min_rows and not keep_rows.all():
            rows = rows[keep_rows]
            changed = True
        block = matrix[np.ix_(rows, cols)]
        msr = mean_squared_residue(block)
        if msr <= delta:
            break
        _, col_res = _row_col_residues(block)
        keep_cols = col_res <= alpha * msr
        if keep_cols.sum() >= min_cols and not keep_cols.all():
            cols = cols[keep_cols]
            changed = True
    return rows, cols


def _node_addition(
    matrix: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Add back rows/columns whose residue is below the block MSR."""
    all_rows = np.arange(matrix.shape[0])
    all_cols = np.arange(matrix.shape[1])

    block = matrix[np.ix_(rows, cols)]
    msr = mean_squared_residue(block)

    # Column addition.
    col_candidates = np.setdiff1d(all_cols, cols, assume_unique=False)
    if len(col_candidates):
        sub = matrix[np.ix_(rows, col_candidates)]
        row_means = matrix[np.ix_(rows, cols)].mean(axis=1, keepdims=True)
        col_means = sub.mean(axis=0, keepdims=True)
        overall = matrix[np.ix_(rows, cols)].mean()
        residues = ((sub - row_means - col_means + overall) ** 2).mean(axis=0)
        additions = col_candidates[residues <= msr]
        if len(additions):
            cols = np.sort(np.concatenate([cols, additions]))

    block = matrix[np.ix_(rows, cols)]
    msr = mean_squared_residue(block)

    # Row addition.
    row_candidates = np.setdiff1d(all_rows, rows, assume_unique=False)
    if len(row_candidates):
        sub = matrix[np.ix_(row_candidates, cols)]
        col_means = matrix[np.ix_(rows, cols)].mean(axis=0, keepdims=True)
        row_means = sub.mean(axis=1, keepdims=True)
        overall = matrix[np.ix_(rows, cols)].mean()
        residues = ((sub - row_means - col_means + overall) ** 2).mean(axis=1)
        additions = row_candidates[residues <= msr]
        if len(additions):
            rows = np.sort(np.concatenate([rows, additions]))

    return rows, cols


def cheng_church(
    matrix: np.ndarray,
    n_biclusters: int = 3,
    delta: float | None = None,
    alpha: float = 1.2,
    min_rows: int = 2,
    min_cols: int = 2,
    seed: int = 0,
) -> BiclusteringResult:
    """Run the Cheng–Church δ-biclustering algorithm.

    Args:
        matrix: ``(n_rows, n_cols)`` expression (sub-)matrix.
        n_biclusters: how many biclusters to extract.
        delta: MSR threshold; defaults to 10% of the whole-matrix MSR, which
            adapts the threshold to the data's noise level.
        alpha: multiple-node-deletion aggressiveness (>1).
        min_rows: smallest number of rows a bicluster may shrink to.
        min_cols: smallest number of columns a bicluster may shrink to.
        seed: seed for the noise used to mask found biclusters.

    Returns:
        A :class:`BiclusteringResult`; biclusters are returned in discovery
        order and each has at least ``min_rows`` × ``min_cols`` cells.
    """
    working = np.array(matrix, dtype=np.float64, copy=True)
    if working.ndim != 2:
        raise ValueError("cheng_church expects a 2-D matrix")
    n_rows, n_cols = working.shape
    if n_rows < min_rows or n_cols < min_cols:
        return BiclusteringResult(biclusters=[])
    if alpha <= 1.0:
        raise ValueError("alpha must be greater than 1")

    rng = np.random.default_rng(seed)
    if delta is None:
        delta = 0.1 * mean_squared_residue(working)
        if delta <= 0:
            delta = 1e-12

    value_min = float(working.min())
    value_max = float(working.max())
    if value_max <= value_min:
        value_max = value_min + 1.0

    result = BiclusteringResult()
    for _ in range(n_biclusters):
        rows = np.arange(n_rows)
        cols = np.arange(n_cols)
        rows, cols = _multiple_node_deletion(
            working, rows, cols, delta=delta, alpha=alpha,
            min_rows=min_rows, min_cols=min_cols,
        )
        rows, cols = _single_node_deletion(
            working, rows, cols, delta=delta, min_rows=min_rows, min_cols=min_cols,
        )
        rows, cols = _node_addition(working, rows, cols)
        block = working[np.ix_(rows, cols)]
        result.biclusters.append(
            Bicluster(rows=rows.copy(), columns=cols.copy(), msr=mean_squared_residue(block))
        )
        # Mask the discovered bicluster with uniform noise so later rounds
        # find different structure (the standard Cheng–Church masking step).
        noise = rng.uniform(value_min, value_max, size=block.shape)
        working[np.ix_(rows, cols)] = noise

    return result
