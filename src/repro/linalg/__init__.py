"""Numerical kernels for the GenBase analytics.

Every benchmark query's analytics step is backed by a kernel in this package.
Each kernel exists in (at least) two tiers, mirroring the performance spread
the paper observes between systems:

* **BLAS tier** (:mod:`repro.linalg.blas` and the default implementations
  here) — vectorised numpy/LAPACK-backed code, standing in for
  R/BLAS/ScaLAPACK/MKL.
* **Naive tier** (:mod:`repro.linalg.naive`) — deliberately loop-based,
  interpreter-bound implementations, standing in for Mahout-style code that
  "does not benefit from a sophisticated linear algebra package" and for
  analytics simulated in SQL/plpython.

Kernels:

* :func:`repro.linalg.qr.householder_qr`, :func:`repro.linalg.qr.lstsq_qr`,
  :func:`repro.linalg.qr.linear_regression` — Q1 (predictive modelling).
* :func:`repro.linalg.covariance.covariance_matrix` — Q2.
* :func:`repro.linalg.biclustering.cheng_church` — Q3.
* :func:`repro.linalg.lanczos.lanczos_svd` — Q4.
* :func:`repro.linalg.wilcoxon.rank_sum_test`,
  :func:`repro.linalg.wilcoxon.enrichment_analysis` — Q5.
"""

from repro.linalg.qr import (
    householder_qr,
    lstsq_qr,
    linear_regression,
    RegressionResult,
)
from repro.linalg.covariance import covariance_matrix, correlation_matrix, top_covariant_pairs
from repro.linalg.lanczos import lanczos_svd, lanczos_eigsh, LanczosResult
from repro.linalg.biclustering import cheng_church, Bicluster, BiclusteringResult
from repro.linalg.wilcoxon import (
    rank_sum_test,
    enrichment_analysis,
    WilcoxonResult,
    EnrichmentResult,
)

__all__ = [
    "householder_qr",
    "lstsq_qr",
    "linear_regression",
    "RegressionResult",
    "covariance_matrix",
    "correlation_matrix",
    "top_covariant_pairs",
    "lanczos_svd",
    "lanczos_eigsh",
    "LanczosResult",
    "cheng_church",
    "Bicluster",
    "BiclusteringResult",
    "rank_sum_test",
    "enrichment_analysis",
    "WilcoxonResult",
    "EnrichmentResult",
]
