"""The MapReduce execution engine.

A :class:`MapReduceJob` bundles a mapper, an optional combiner and a
reducer.  The :class:`MapReduceEngine` executes jobs the way Hadoop does,
with every phase's cost actually paid:

1. the input is cut into splits,
2. each split is mapped, producing ``(key, value)`` pairs,
3. map output is *serialised* (pickled) per split — the spill-to-disk step,
4. optional combiners run per split on the deserialised pairs,
5. all pairs are shuffled: merged, sorted by key, grouped,
6. the reducer runs per key group.

Chaining jobs therefore re-serialises data between every stage, which is the
structural reason the Hadoop configuration trails every other engine in the
benchmark results.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence


#: A mapper takes one input record and yields (key, value) pairs.
Mapper = Callable[[object], Iterable[tuple[object, object]]]
#: A combiner/reducer takes (key, values) and yields (key, value) pairs.
Reducer = Callable[[object, list], Iterable[tuple[object, object]]]


@dataclass
class JobCounters:
    """Hadoop-style job counters, filled in by the engine."""

    map_input_records: int = 0
    map_output_records: int = 0
    combine_output_records: int = 0
    shuffle_bytes: int = 0
    reduce_input_groups: int = 0
    reduce_output_records: int = 0
    splits: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for reports and job history dumps)."""
        return {
            "map_input_records": self.map_input_records,
            "map_output_records": self.map_output_records,
            "combine_output_records": self.combine_output_records,
            "shuffle_bytes": self.shuffle_bytes,
            "reduce_input_groups": self.reduce_input_groups,
            "reduce_output_records": self.reduce_output_records,
            "splits": self.splits,
        }


@dataclass
class MapReduceJob:
    """One MapReduce job specification.

    Attributes:
        name: job name (shows up in the engine's job history).
        mapper: record → iterable of (key, value).
        reducer: (key, [values]) → iterable of (key, value).
        combiner: optional per-split pre-aggregation with reducer semantics.
    """

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Reducer | None = None


@dataclass
class JobResult:
    """The materialised output of one job plus its counters."""

    name: str
    output: list[tuple[object, object]]
    counters: JobCounters


class MapReduceEngine:
    """Runs MapReduce jobs over in-memory input records."""

    def __init__(self, n_splits: int = 4, sort_shuffle: bool = True):
        if n_splits < 1:
            raise ValueError("need at least one split")
        self.n_splits = n_splits
        self.sort_shuffle = sort_shuffle
        self.history: list[JobResult] = []

    # -- split handling -----------------------------------------------------------

    def _make_splits(self, records: Sequence) -> list[list]:
        """Cut the input into ``n_splits`` contiguous splits."""
        records = list(records)
        if not records:
            return [[]]
        n_splits = min(self.n_splits, len(records))
        split_size = (len(records) + n_splits - 1) // n_splits
        return [records[i:i + split_size] for i in range(0, len(records), split_size)]

    # -- execution -----------------------------------------------------------------

    def run(self, job: MapReduceJob, records: Sequence) -> list[tuple[object, object]]:
        """Execute a job and return the reducer output pairs."""
        counters = JobCounters()
        splits = self._make_splits(records)
        counters.splits = len(splits)

        # Map + spill (serialise) per split.
        spilled_splits: list[bytes] = []
        for split in splits:
            pairs: list[tuple[object, object]] = []
            for record in split:
                counters.map_input_records += 1
                for pair in job.mapper(record):
                    pairs.append(pair)
                    counters.map_output_records += 1
            if job.combiner is not None:
                pairs = self._combine(job.combiner, pairs)
                counters.combine_output_records += len(pairs)
            spill = pickle.dumps(pairs)
            counters.shuffle_bytes += len(spill)
            spilled_splits.append(spill)

        # Shuffle: merge all spills, sort by key, group.
        merged: list[tuple[object, object]] = []
        for spill in spilled_splits:
            merged.extend(pickle.loads(spill))
        if self.sort_shuffle:
            merged.sort(key=lambda pair: _sort_key(pair[0]))
        groups = self._group(merged)
        counters.reduce_input_groups = len(groups)

        # Reduce.
        output: list[tuple[object, object]] = []
        for key, values in groups:
            for pair in job.reducer(key, values):
                output.append(pair)
                counters.reduce_output_records += 1

        self.history.append(JobResult(name=job.name, output=output, counters=counters))
        return output

    def run_chain(self, jobs: Sequence[MapReduceJob], records: Sequence) -> list[tuple[object, object]]:
        """Run jobs back to back; each job consumes the previous job's output pairs."""
        current: Sequence = list(records)
        output: list[tuple[object, object]] = []
        for job in jobs:
            output = self.run(job, current)
            current = output
        return output

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _combine(combiner: Reducer, pairs: list[tuple[object, object]]) -> list[tuple[object, object]]:
        grouped = MapReduceEngine._group(sorted(pairs, key=lambda pair: _sort_key(pair[0])))
        combined: list[tuple[object, object]] = []
        for key, values in grouped:
            combined.extend(combiner(key, values))
        return combined

    @staticmethod
    def _group(sorted_pairs: Iterable[tuple[object, object]]) -> list[tuple[object, list]]:
        groups: list[tuple[object, list]] = []
        current_key: object = _SENTINEL
        current_values: list = []
        for key, value in sorted_pairs:
            if key != current_key:
                if current_key is not _SENTINEL:
                    groups.append((current_key, current_values))
                current_key = key
                current_values = []
            current_values.append(value)
        if current_key is not _SENTINEL:
            groups.append((current_key, current_values))
        return groups

    # -- stats ----------------------------------------------------------------------

    @property
    def total_shuffle_bytes(self) -> int:
        """Serialised spill bytes across every job this engine has run."""
        return sum(result.counters.shuffle_bytes for result in self.history)

    @property
    def jobs_run(self) -> int:
        """Number of jobs executed (the Hadoop adapter's job-count metric)."""
        return len(self.history)


class _Sentinel:
    def __repr__(self) -> str:
        return "<no-key>"


_SENTINEL = _Sentinel()


def _sort_key(key: object) -> tuple:
    """Total ordering for heterogeneous shuffle keys (type name, then value)."""
    if isinstance(key, tuple):
        return (1, tuple(_sort_key(part) for part in key))
    return (0, (type(key).__name__, key))
