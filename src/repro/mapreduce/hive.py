"""A Hive-like relational layer on top of the MapReduce engine.

Tables are lists of tuples with named columns; every relational verb
compiles to (at least) one MapReduce job, so even a simple filter pays the
map → spill → shuffle → reduce round trip.  That is precisely the cost
structure the paper blames for Hive's slow data management ("Hive has only
rudimentary query optimization").

Predicates are shared-AST expressions (:mod:`repro.plan.expressions`),
compiled to per-row-tuple callables with ``Expression.bind`` — a
:class:`HiveTable` is itself a bindable schema (it has ``index_of``).
Because the predicate is inspectable, :mod:`repro.mapreduce.bridge` can
fuse it into the *map side* of the consuming join job so filtered-out
rows are never serialised into the shuffle.  Raw dict-record callables
are still accepted by :meth:`HiveSession.select` but deprecated.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.plan.expressions import Expression


@dataclass
class HiveTable:
    """A named table: column names plus row tuples."""

    name: str
    columns: tuple[str, ...]
    rows: list[tuple]

    def __post_init__(self) -> None:
        self.columns = tuple(self.columns)
        if len(set(self.columns)) != len(self.columns):
            raise ValueError("duplicate column names")

    def __len__(self) -> int:
        return len(self.rows)

    def index_of(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise KeyError(
                f"no column {column!r} in table {self.name!r}; has {list(self.columns)}"
            ) from None

    def column_values(self, column: str) -> list:
        index = self.index_of(column)
        return [row[index] for row in self.rows]

    def to_array(self, columns: Sequence[str] | None = None) -> np.ndarray:
        """Materialise (a projection of) the table as a float matrix."""
        names = list(columns) if columns is not None else list(self.columns)
        indices = [self.index_of(name) for name in names]
        if not self.rows:
            return np.empty((0, len(indices)))
        return np.asarray([[row[i] for i in indices] for row in self.rows], dtype=np.float64)

    @classmethod
    def from_array(cls, name: str, columns: Sequence[str], array: np.ndarray) -> "HiveTable":
        """Build a table from a 2-D numpy array."""
        array = np.asarray(array)
        if array.ndim != 2 or array.shape[1] != len(columns):
            raise ValueError("array shape does not match the column list")
        return cls(name=name, columns=tuple(columns), rows=list(map(tuple, array.tolist())))


class HiveSession:
    """Executes relational operations as MapReduce jobs."""

    def __init__(self, engine: MapReduceEngine | None = None):
        self.engine = engine or MapReduceEngine()

    # -- relational verbs ---------------------------------------------------------

    def select(self, table: HiveTable,
               predicate: Expression | Callable[[dict], bool],
               result_name: str | None = None) -> HiveTable:
        """Filter rows with a shared-AST expression (one MapReduce job).

        The expression is compiled against the table's schema with
        ``Expression.bind`` and evaluated per row tuple in the map phase.
        A raw callable over a dict view of each row is still accepted but
        **deprecated** — the planner can't see inside it, so none of the
        shared optimizer's rewrites (map-side join fusion above all) can
        reach it.
        """
        columns = table.columns

        if isinstance(predicate, Expression):
            bound = predicate.bind(table)

            def mapper(row):
                if bound(row):
                    yield (None, row)
        else:
            warnings.warn(
                "HiveSession.select(table, <callable>) is deprecated; pass an "
                "expression built with repro.plan.col instead",
                DeprecationWarning,
                stacklevel=2,
            )

            def mapper(row):
                record = dict(zip(columns, row, strict=True))
                if predicate(record):
                    yield (None, row)

        def reducer(_key, values):
            for row in values:
                yield (None, row)

        output = self.engine.run(
            MapReduceJob(name=f"select({table.name})", mapper=mapper, reducer=reducer),
            table.rows,
        )
        return HiveTable(
            name=result_name or f"select_{table.name}",
            columns=columns,
            rows=[value for _, value in output],
        )

    def project(self, table: HiveTable, columns: Sequence[str],
                result_name: str | None = None) -> HiveTable:
        """Keep only the named columns."""
        indices = [table.index_of(name) for name in columns]

        def mapper(row):
            yield (None, tuple(row[i] for i in indices))

        def reducer(_key, values):
            for row in values:
                yield (None, row)

        output = self.engine.run(
            MapReduceJob(name=f"project({table.name})", mapper=mapper, reducer=reducer),
            table.rows,
        )
        return HiveTable(
            name=result_name or f"project_{table.name}",
            columns=tuple(columns),
            rows=[value for _, value in output],
        )

    def join(self, left: HiveTable, right: HiveTable, left_key: str, right_key: str,
             result_name: str | None = None) -> HiveTable:
        """Reduce-side equi-join: both inputs are tagged, shuffled on the key,
        and the cartesian product within each key group is emitted."""
        left_index = left.index_of(left_key)
        right_index = right.index_of(right_key)

        def mapper(tagged_row):
            tag, row = tagged_row
            key = row[left_index] if tag == "L" else row[right_index]
            yield (key, (tag, row))

        def reducer(_key, values):
            left_rows = [row for tag, row in values if tag == "L"]
            right_rows = [row for tag, row in values if tag == "R"]
            for left_row in left_rows:
                for right_row in right_rows:
                    yield (None, left_row + right_row)

        tagged_input = [("L", row) for row in left.rows] + [("R", row) for row in right.rows]
        output = self.engine.run(
            MapReduceJob(name=f"join({left.name},{right.name})", mapper=mapper, reducer=reducer),
            tagged_input,
        )

        right_columns = []
        used = set(left.columns)
        for column in right.columns:
            name = column if column not in used else f"{column}_right"
            right_columns.append(name)
            used.add(name)
        return HiveTable(
            name=result_name or f"join_{left.name}_{right.name}",
            columns=left.columns + tuple(right_columns),
            rows=[value for _, value in output],
        )

    def group_by(self, table: HiveTable, key_column: str, value_column: str,
                 aggregate: str = "avg", result_name: str | None = None) -> HiveTable:
        """Group-by aggregation (count/sum/avg/min/max) as one MR job."""
        if aggregate not in ("count", "sum", "avg", "min", "max"):
            raise ValueError(f"unsupported aggregate {aggregate!r}")
        key_index = table.index_of(key_column)
        value_index = table.index_of(value_column)

        def mapper(row):
            yield (row[key_index], float(row[value_index]))

        def combiner(key, values):
            # Pre-aggregate to (sum, count, min, max) partials.
            partials = [value if isinstance(value, tuple) else (value, 1, value, value)
                        for value in values]
            total = sum(p[0] for p in partials)
            count = sum(p[1] for p in partials)
            minimum = min(p[2] for p in partials)
            maximum = max(p[3] for p in partials)
            yield (key, (total, count, minimum, maximum))

        def reducer(key, values):
            partials = [value if isinstance(value, tuple) else (value, 1, value, value)
                        for value in values]
            total = sum(p[0] for p in partials)
            count = sum(p[1] for p in partials)
            minimum = min(p[2] for p in partials)
            maximum = max(p[3] for p in partials)
            if aggregate == "count":
                result = count
            elif aggregate == "sum":
                result = total
            elif aggregate == "avg":
                result = total / count if count else float("nan")
            elif aggregate == "min":
                result = minimum
            else:
                result = maximum
            yield (key, result)

        output = self.engine.run(
            MapReduceJob(
                name=f"groupby({table.name})", mapper=mapper, reducer=reducer, combiner=combiner
            ),
            table.rows,
        )
        return HiveTable(
            name=result_name or f"groupby_{table.name}",
            columns=(key_column, f"{aggregate}_{value_column}"),
            rows=[(key, value) for key, value in output],
        )

    def sample(self, table: HiveTable, fraction: float, seed: int = 0,
               result_name: str | None = None) -> HiveTable:
        """Deterministic Bernoulli-style sample implemented as a map-only filter."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        keep = set(np.flatnonzero(rng.random(len(table.rows)) < fraction).tolist())
        if not keep and table.rows:
            keep = {0}
        indexed_rows = list(enumerate(table.rows))

        def mapper(indexed_row):
            position, row = indexed_row
            if position in keep:
                yield (None, row)

        def reducer(_key, values):
            for row in values:
                yield (None, row)

        output = self.engine.run(
            MapReduceJob(name=f"sample({table.name})", mapper=mapper, reducer=reducer),
            indexed_rows,
        )
        return HiveTable(
            name=result_name or f"sample_{table.name}",
            columns=table.columns,
            rows=[value for _, value in output],
        )
