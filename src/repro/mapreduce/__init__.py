"""An in-process MapReduce stack (the benchmark's Hadoop analog).

The paper's Hadoop configuration runs the GenBase data management in Hive
and the analytics in Mahout, and lands one to two orders of magnitude behind
the best systems because every step is a materialised MapReduce job and the
analytics never touch a tuned linear algebra library.  This package rebuilds
that stack faithfully, in miniature:

* :mod:`repro.mapreduce.engine` — a single-node MapReduce engine with input
  splits, map, combine, sort-based shuffle (with real serialisation of the
  intermediate key/value pairs), and reduce; every job reports counters.
* :mod:`repro.mapreduce.hive` — a Hive-like relational layer: tables are
  line-oriented records, and ``select`` / ``project`` / ``join`` /
  ``group_by`` each compile to one MapReduce job (joins are reduce-side).
* :mod:`repro.mapreduce.mahout` — a Mahout-like analytics layer: linear
  regression, covariance and a power-iteration SVD expressed as MapReduce
  jobs over the naive kernels in :mod:`repro.linalg.naive`; biclustering is
  (as in Mahout) simply not provided.
* :mod:`repro.mapreduce.bridge` — the shared-plan executor: lowers the
  engine-agnostic logical plans of :mod:`repro.plan` onto MapReduce jobs,
  fusing pushed-down predicates and pruned projections into the map phase
  of the join job (filter-before-shuffle).
"""

from repro.mapreduce.engine import JobCounters, MapReduceEngine, MapReduceJob
from repro.mapreduce.hive import HiveSession, HiveTable
from repro.mapreduce.mahout import Mahout
from repro.mapreduce import bridge

__all__ = [
    "MapReduceEngine",
    "MapReduceJob",
    "JobCounters",
    "HiveTable",
    "HiveSession",
    "Mahout",
    "bridge",
]
