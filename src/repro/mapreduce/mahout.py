"""A Mahout-like analytics layer on top of the MapReduce engine.

Mahout expresses its linear algebra as MapReduce jobs over row vectors and
"does not benefit from a sophisticated linear algebra package, such as BLAS
or ScaLAPACK" (paper Section 4.1).  The kernels here follow that model:

* matrices are lists of ``(row_index, row_values)`` records,
* each analytic is one or more MapReduce jobs whose per-record work is plain
  Python arithmetic (via :mod:`repro.linalg.naive` helpers where convenient),
* there is no biclustering — as in Mahout — so the benchmark marks that
  query "not supported" for the Hadoop configuration.

The results are numerically correct; only the *route* taken to compute them
is deliberately the slow, job-structured one.
"""

from __future__ import annotations

import numpy as np

from repro.linalg import naive
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob


class Mahout:
    """MapReduce-structured analytics kernels."""

    def __init__(self, engine: MapReduceEngine | None = None):
        self.engine = engine or MapReduceEngine()

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _matrix_records(matrix: np.ndarray) -> list[tuple[int, list[float]]]:
        """Represent a dense matrix as Mahout-style (row index, row vector) records."""
        matrix = np.asarray(matrix, dtype=np.float64)
        return [(i, row) for i, row in enumerate(matrix.tolist())]

    # -- covariance ------------------------------------------------------------------

    def covariance(self, matrix: np.ndarray) -> np.ndarray:
        """Column covariance as two MR jobs: column means, then outer products."""
        matrix = np.asarray(matrix, dtype=np.float64)
        n_samples, n_features = matrix.shape
        if n_samples < 2:
            raise ValueError("need at least two samples")
        records = self._matrix_records(matrix)

        # Job 1: column sums -> means.
        def mean_mapper(record):
            _, row = record
            for column, value in enumerate(row):
                yield (column, value)

        def mean_combiner(key, values):
            yield (key, (sum(values_or_partials(values)), count_of(values)))

        def mean_reducer(key, values):
            partials = [value if isinstance(value, tuple) else (value, 1) for value in values]
            total = sum(p[0] for p in partials)
            count = sum(p[1] for p in partials)
            yield (key, total / count)

        def values_or_partials(values):
            return [value[0] if isinstance(value, tuple) else value for value in values]

        def count_of(values):
            return sum(value[1] if isinstance(value, tuple) else 1 for value in values)

        mean_pairs = self.engine.run(
            MapReduceJob("mahout-colmeans", mean_mapper, mean_reducer, mean_combiner),
            records,
        )
        means = [0.0] * n_features
        for column, mean in mean_pairs:
            means[column] = mean

        # Job 2: accumulate centred outer products per (i, j) pair.
        def outer_mapper(record):
            _, row = record
            centred = [value - means[column] for column, value in enumerate(row)]
            for i in range(n_features):
                c_i = centred[i]
                for j in range(i, n_features):
                    yield ((i, j), c_i * centred[j])

        def outer_combiner(key, values):
            yield (key, sum(values))

        def outer_reducer(key, values):
            yield (key, sum(values) / (n_samples - 1))

        pairs = self.engine.run(
            MapReduceJob("mahout-covariance", outer_mapper, outer_reducer, outer_combiner),
            records,
        )
        cov = np.zeros((n_features, n_features))
        for (i, j), value in pairs:
            cov[i, j] = value
            cov[j, i] = value
        return cov

    # -- linear regression ---------------------------------------------------------------

    def linear_regression(self, features: np.ndarray, target: np.ndarray) -> np.ndarray:
        """OLS via MR-assembled normal equations; returns [intercept, coefficients...].

        One job accumulates ``XᵀX`` and ``Xᵀy`` entries; the (small) system is
        then solved on the "driver" with naive Gaussian elimination, which is
        how Mahout-era pipelines handled the final dense solve.
        """
        features = np.asarray(features, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64).ravel()
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.shape[0] != len(target):
            raise ValueError("features and target disagree on sample count")
        n_features = features.shape[1] + 1  # plus intercept
        records = [
            (i, ([1.0] + row, float(y)))
            for i, (row, y) in enumerate(zip(features.tolist(), target.tolist(), strict=True))
        ]

        def mapper(record):
            _, (row, y) = record
            for i in range(n_features):
                yield (("xty", i), row[i] * y)
                for j in range(i, n_features):
                    yield (("xtx", i, j), row[i] * row[j])

        def combiner(key, values):
            yield (key, sum(values))

        def reducer(key, values):
            yield (key, sum(values))

        pairs = self.engine.run(
            MapReduceJob("mahout-normal-equations", mapper, reducer, combiner), records
        )
        xtx = [[0.0] * n_features for _ in range(n_features)]
        xty = [0.0] * n_features
        for key, value in pairs:
            if key[0] == "xty":
                xty[key[1]] = value
            else:
                _, i, j = key
                xtx[i][j] = value
                xtx[j][i] = value
        beta = naive._gaussian_solve(xtx, xty)
        return np.asarray(beta, dtype=np.float64)

    # -- SVD ---------------------------------------------------------------------------------

    def truncated_svd(self, matrix: np.ndarray, k: int, n_iterations: int = 60,
                      seed: int = 0) -> np.ndarray:
        """Top-``k`` singular values via MR-structured power iteration.

        Each iteration is one MapReduce job computing ``Gram @ v`` row by row;
        deflation happens on the driver.  Only singular values are returned.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        m, n = matrix.shape
        k = max(1, min(k, m, n))
        gram = (matrix.T @ matrix) if n <= m else (matrix @ matrix.T)
        gram_records = self._matrix_records(gram)
        dimension = gram.shape[0]
        rng = np.random.default_rng(seed)

        singular_values = []
        for _ in range(k):
            vector = rng.standard_normal(dimension)
            vector /= np.linalg.norm(vector)
            eigenvalue = 0.0
            for _ in range(n_iterations):
                current = vector.tolist()

                def mapper(record, current=current):
                    row_index, row = record
                    total = 0.0
                    for value, v in zip(row, current, strict=True):
                        total += value * v
                    yield (row_index, total)

                def reducer(key, values):
                    yield (key, sum(values))

                pairs = self.engine.run(
                    MapReduceJob("mahout-poweriter", mapper, reducer), gram_records
                )
                next_vector = np.zeros(dimension)
                for row_index, value in pairs:
                    next_vector[row_index] = value
                norm = float(np.linalg.norm(next_vector))
                if norm == 0.0:
                    break
                vector = next_vector / norm
                eigenvalue = norm
            singular_values.append(float(np.sqrt(max(eigenvalue, 0.0))))
            # Deflate on the driver and rebuild the job input.
            gram = gram - eigenvalue * np.outer(vector, vector)
            gram_records = self._matrix_records(gram)
        return np.asarray(singular_values)

    # -- statistics ------------------------------------------------------------------------------

    def wilcoxon_enrichment(self, gene_scores: np.ndarray, membership: np.ndarray) -> np.ndarray:
        """Per-GO-term rank-sum p-values, one reduce group per GO term."""
        gene_scores = np.asarray(gene_scores, dtype=np.float64).ravel()
        membership = np.asarray(membership)
        n_genes, n_terms = membership.shape
        if n_genes != len(gene_scores):
            raise ValueError("scores and membership disagree on gene count")
        records = [
            (gene, (float(gene_scores[gene]), membership[gene].tolist()))
            for gene in range(n_genes)
        ]

        def mapper(record):
            _, (score, memberships) = record
            for term, belongs in enumerate(memberships):
                yield (term, (score, int(belongs)))

        def reducer(term, values):
            inside = [score for score, belongs in values if belongs]
            outside = [score for score, belongs in values if not belongs]
            if not inside or not outside:
                yield (term, 1.0)
                return
            yield (term, naive.wilcoxon_rank_sum(inside, outside))

        pairs = self.engine.run(MapReduceJob("mahout-wilcoxon", mapper, reducer), records)
        p_values = np.ones(n_terms)
        for term, p_value in pairs:
            p_values[term] = p_value
        return p_values

    # -- unsupported -----------------------------------------------------------------------------

    def biclustering(self, *_args, **_kwargs):
        """Mahout provides no biclustering algorithm."""
        raise NotImplementedError(
            "the Mahout analytics library provides no biclustering implementation"
        )
