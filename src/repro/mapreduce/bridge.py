"""Execute shared logical plans (:mod:`repro.plan`) on the MapReduce stack.

This is the Hadoop-family counterpart of
:func:`repro.colstore.planner.run_plan` and
:func:`repro.relational.bridge.run_shared_plan`: the *same* plan objects
built in :mod:`repro.core.queries` lower onto Hive tables and MapReduce
jobs.

The payoff of declarative predicates here is **filter-before-shuffle**.
The legacy callable pipeline ran ``select`` → ``project`` → ``join`` as
three MapReduce jobs, re-serialising the whole table between each; an
expression, by contrast, is compiled to a row-tuple callable
(``Expression.bind`` against the :class:`~repro.mapreduce.hive.HiveTable`
schema) and fused into the **map phase of the join job itself**, together
with the pruned projection.  Rows that fail the predicate — and columns
the plan never reads — are dropped *before* the spill, so they cross
neither the serialisation boundary nor the shuffle.  One job replaces
three, and the shuffled bytes track the plan's selectivity instead of the
base table size.

The optimizer runs with :data:`HIVE_CAPABILITIES`: predicate pushdown and
projection pruning (what makes the map-side fusion possible) but no
statistics-based filter reordering and no join build-side choice — the
reduce-side join treats both inputs symmetrically, matching the paper's
"Hive has only rudimentary query optimization".

>>> import numpy as np
>>> from repro.mapreduce import HiveSession, HiveTable
>>> from repro.plan import Filter, Join, Project, Scan, col
>>> session = HiveSession()
>>> tables = {
...     "genes": HiveTable("genes", ("gene_id", "function"),
...                        [(0, 9.0), (1, 42.0), (2, 7.0)]),
...     "micro": HiveTable("micro", ("gene_id", "value"),
...                        [(0, 1.5), (1, 2.5), (2, 3.5)]),
... }
>>> plan = Project(Filter(Join(Scan("genes"), Scan("micro"),
...                            "gene_id", "gene_id"),
...                       col("function") < 10),
...                ("gene_id", "value"))
>>> run_shared_plan(plan, tables, session).rows
[(0, 1.5), (2, 3.5)]
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np

from repro.mapreduce.engine import MapReduceJob
from repro.mapreduce.hive import HiveSession, HiveTable
from repro.plan import logical
from repro.plan.expressions import BoundExpression, literal_dtype
from repro.plan.observe import PlanObservation
from repro.plan.optimizer import (
    ColumnStats,
    OptimizerCapabilities,
    PlanCatalog,
    estimate_output_rows,
    optimize,
)
from repro.plan.verify import maybe_verify_rewrite

#: The optimizer profile the MapReduce executor honours: pushdown and
#: pruning feed the map-side fusion; reordering and build-side costing are
#: beyond Hive's "rudimentary query optimization" and stay off.
HIVE_CAPABILITIES = OptimizerCapabilities(
    filter_reordering=False, join_build_side=False
)

#: Shared Aggregate function names → Hive group-by aggregate names.
_AGGREGATE_NAMES = {"mean": "avg"}


class HivePlanCatalog(PlanCatalog):
    """Expose the Hive tables' schemas (and row counts) to the optimizer."""

    def __init__(self, tables: dict[str, HiveTable]):
        self.tables = dict(tables)

    def columns_of(self, table: str) -> list[str] | None:
        found = self.tables.get(table)
        return None if found is None else list(found.columns)

    def stats_of(self, table: str, column: str) -> ColumnStats | None:
        found = self.tables.get(table)
        if found is None or column not in found.columns:
            return None
        return ColumnStats(row_count=len(found))

    def dtype_of(self, table: str, column: str) -> np.dtype | None:
        # Hive tables carry untyped row tuples; sample the first row's
        # value.  Int/float drift across rows is harmless — the verifier
        # only distinguishes dtype *families* (numeric vs string).
        found = self.tables.get(table)
        if found is None or column not in found.columns or not found.rows:
            return None
        return literal_dtype(found.rows[0][found.index_of(column)])


@dataclass
class _ScanStage:
    """A Filter*/Project* chain over one Scan, ready for map-side fusion.

    ``predicates`` are bound against the *base* table's schema and applied
    to the raw row before ``columns`` (the pruned output) is projected —
    both inside the mapper of whichever job consumes the stage.
    """

    table: HiveTable
    predicates: list[BoundExpression]
    columns: tuple[str, ...]

    def indices(self) -> list[int]:
        return [self.table.index_of(name) for name in self.columns]

    def admit(self, row: tuple) -> bool:
        return all(bound(row) for bound in self.predicates)


def _stage(node: logical.PlanNode, tables: dict[str, HiveTable]) -> _ScanStage | None:
    """Collapse a Filter/Project chain over a Scan; None if differently shaped."""
    predicates = []
    projection: tuple[str, ...] | None = None
    while True:
        if isinstance(node, logical.Filter):
            predicates.append(node.predicate)
            node = node.child
        elif isinstance(node, logical.Project):
            if projection is None:  # the outermost projection is the output
                projection = node.columns
            node = node.child
        elif isinstance(node, logical.Scan):
            table = tables.get(node.table)
            if table is None:
                raise KeyError(
                    f"no table named {node.table!r}; have {sorted(tables)}"
                )
            bound = [predicate.bind(table) for predicate in predicates]
            return _ScanStage(table, bound, projection or table.columns)
        else:
            return None


def optimize_shared_plan(plan: logical.PlanNode,
                         tables: dict[str, HiveTable]) -> logical.PlanNode:
    """Run the shared optimizer with the Hive tables' schemas."""
    return optimize(plan, HivePlanCatalog(tables), HIVE_CAPABILITIES)


def run_shared_plan(plan: logical.PlanNode, tables: dict[str, HiveTable],
                    session: HiveSession, optimized: bool = True,
                    observation: PlanObservation | None = None):
    """Execute a shared logical plan as MapReduce jobs.

    Relational-algebra plans return a materialised :class:`HiveTable`;
    :class:`~repro.plan.logical.Aggregate` returns ``(group_keys,
    aggregates)`` as numpy arrays sorted by key and
    :class:`~repro.plan.logical.Pivot` returns ``(matrix, row_labels,
    column_labels)`` with sorted labels — the shared executor contract.
    The pivot itself runs driver-side (as the benchmark's Hadoop
    configuration does): the long-format join output is gathered and
    scattered into the dense matrix outside MapReduce.

    Args:
        plan: the shared logical plan tree.
        tables: scan name → :class:`HiveTable`.
        session: the Hive session whose engine runs (and counts) the jobs.
        optimized: run the shared optimizer first (pass False to lower the
            plan exactly as written).
        observation: optional :class:`~repro.plan.observe.PlanObservation`
            filled with the observed output cardinality plus the shuffle
            record/byte counters summed over the jobs this plan ran (the
            calibration counterpart of :func:`estimate_shuffle_bytes`).

    With the ``REPRO_VERIFY_PLANS`` debug flag set, the optimizer rewrite
    is checked by the static verifier (:mod:`repro.plan.verify`).
    """
    if optimized:
        written = plan
        plan = optimize_shared_plan(plan, tables)
        maybe_verify_rewrite(written, plan, HivePlanCatalog(tables))
    if observation is not None:
        observation.engine = "hadoop"
    jobs_before = len(session.engine.history)
    try:
        if isinstance(plan, logical.Aggregate):
            table = _lower(plan.child, tables, session)
            function = _AGGREGATE_NAMES.get(plan.function, plan.function)
            result = session.group_by(table, plan.group_by, plan.value, function)
            keys = np.asarray(result.column_values(plan.group_by))
            values = np.asarray(
                result.column_values(f"{function}_{plan.value}"), dtype=np.float64
            )
            order = np.argsort(keys, kind="stable")
            if observation is not None:
                observation.output_rows = int(len(keys))
            return keys[order], values[order]
        if isinstance(plan, logical.Pivot):
            table = _lower(plan.child, tables, session)
            matrix, row_labels, column_labels = driver_pivot(
                table, plan.row_key, plan.column_key, plan.value
            )
            if observation is not None:
                observation.output_rows = int(len(row_labels))
                observation.output_cells = int(matrix.size)
            return matrix, row_labels, column_labels
        table = _lower(plan, tables, session)
        if observation is not None:
            observation.output_rows = int(len(table))
        return table
    finally:
        if observation is not None:
            ran = session.engine.history[jobs_before:]
            observation.shuffle_records = sum(
                result.counters.map_output_records for result in ran
            )
            observation.shuffle_bytes = sum(
                result.counters.shuffle_bytes for result in ran
            )


#: How many base-table rows to serialise when measuring bytes-per-record
#: for the shuffle-byte estimate.
_BYTES_SAMPLE = 32


def _bytes_per_record(pairs: list) -> float:
    """Measured serialised size of one shuffled pair, amortising framing.

    The engine spills each partition with ``pickle.dumps(list_of_pairs)``,
    so the honest per-record figure divides a *batch* pickle by its length
    rather than pickling records one at a time.
    """
    if not pairs:
        return 0.0
    return len(pickle.dumps(pairs)) / len(pairs)


def _stage_pair_bytes(stage: _ScanStage, key_index: int | None,
                      tag: str | None) -> float:
    """Bytes per shuffled pair for a scan stage's mapper output.

    Builds the exact pair shape the mapper emits — ``(key, payload)`` with
    the payload pruned to the stage's columns (and tagged for join sides) —
    from the first :data:`_BYTES_SAMPLE` raw rows, *without* evaluating
    predicates: the estimator prices a representative record, while
    :func:`repro.plan.optimizer.estimate_output_rows` prices how many
    survive.
    """
    indices = stage.indices()
    pairs = []
    for row in stage.table.rows[:_BYTES_SAMPLE]:
        key = None if key_index is None else row[key_index]
        payload = tuple(row[i] for i in indices)
        pairs.append((key, (tag, payload) if tag is not None else payload))
    return _bytes_per_record(pairs)


def estimate_shuffle_bytes(plan: logical.PlanNode,
                           tables: dict[str, HiveTable],
                           n_splits: int = 4) -> float | None:
    """Predict the shuffled bytes for a shared plan's MapReduce jobs.

    Mirrors the lowering in :func:`run_shared_plan` job for job: a fused
    join shuffles each side's surviving rows (estimated by the shared
    :func:`~repro.plan.optimizer.estimate_output_rows`) at the measured
    per-pair pickle cost; a stand-alone scan stage shuffles its surviving
    projected rows (zero when it is a no-op pass-through); an ``Aggregate``
    terminal adds one group-by job whose combiner caps the shuffle at
    ``n_splits × estimated groups`` partial pairs; a ``Pivot`` terminal
    runs driver-side and shuffles nothing.  Returns ``None`` when the
    plan's cardinality cannot be estimated.
    """
    plan = optimize_shared_plan(plan, tables)
    catalog = HivePlanCatalog(tables)
    total = 0.0

    def stage_rows(node: logical.PlanNode) -> float | None:
        return estimate_output_rows(node, catalog)

    def add_subtree(node: logical.PlanNode) -> bool:
        nonlocal total
        stage = _stage(node, tables)
        if stage is not None:
            if not stage.predicates and stage.columns == stage.table.columns:
                return True  # pass-through: no job, no shuffle
            rows = stage_rows(node)
            if rows is None:
                return False
            total += rows * _stage_pair_bytes(stage, key_index=None, tag=None)
            return True
        join = node
        if isinstance(node, logical.Project) and isinstance(node.child, logical.Join):
            join = node.child
        if isinstance(join, logical.Join):
            for side, key, tag in ((join.left, join.left_key, "L"),
                                   (join.right, join.right_key, "R")):
                side_stage = _stage(side, tables)
                if side_stage is None:
                    return False  # nested non-stage input: not estimable
                rows = stage_rows(side)
                if rows is None:
                    return False
                total += rows * _stage_pair_bytes(
                    side_stage, key_index=side_stage.table.index_of(key), tag=tag
                )
            return True
        return False

    if isinstance(plan, (logical.Aggregate, logical.Pivot)):
        if not add_subtree(plan.child):
            return None
        if isinstance(plan, logical.Aggregate):
            rows = stage_rows(plan.child)
            groups = stage_rows(plan)
            if rows is None or groups is None:
                return None
            # The group-by mapper emits one (key, value) pair per input
            # row, but the combiner folds each split down to one
            # (key, (sum, count, min, max)) partial per group before the
            # spill — so the shuffle carries at most splits × groups
            # partials (and never more than the input rows).
            pairs = min(rows, n_splits * groups)
            sample = [(float(i), (float(i), 1, float(i), float(i)))
                      for i in range(_BYTES_SAMPLE)]
            total += pairs * _bytes_per_record(sample)
        return total
    if not add_subtree(plan):
        return None
    return total


def _lower(node: logical.PlanNode, tables: dict[str, HiveTable],
           session: HiveSession) -> HiveTable:
    """Lower a relational-algebra subtree, fusing scan stages map-side."""
    stage = _stage(node, tables)
    if stage is not None:
        return _materialise_stage(stage, session)
    if isinstance(node, logical.Project):
        child = node.child
        if isinstance(child, logical.Join):
            return _join(child, tables, session, output_columns=node.columns)
        return session.project(_lower(child, tables, session), list(node.columns))
    if isinstance(node, logical.Filter):
        return session.select(_lower(node.child, tables, session), node.predicate)
    if isinstance(node, logical.Join):
        return _join(node, tables, session)
    raise TypeError(
        f"cannot execute plan node {type(node).__name__} on the MapReduce stack"
    )


def _materialise_stage(stage: _ScanStage, session: HiveSession) -> HiveTable:
    """Run a stand-alone scan stage (filter + project fused into one job)."""
    if not stage.predicates and stage.columns == stage.table.columns:
        return stage.table
    indices = stage.indices()

    def mapper(row):
        if stage.admit(row):
            yield (None, tuple(row[i] for i in indices))

    def reducer(_key, values):
        for row in values:
            yield (None, row)

    output = session.engine.run(
        MapReduceJob(name=f"scan({stage.table.name})", mapper=mapper, reducer=reducer),
        stage.table.rows,
    )
    return HiveTable(
        name=f"scan_{stage.table.name}",
        columns=stage.columns,
        rows=[value for _, value in output],
    )


def _join(node: logical.Join, tables: dict[str, HiveTable],
          session: HiveSession,
          output_columns: tuple[str, ...] | None = None) -> HiveTable:
    """One reduce-side join job with both inputs' filters fused map-side.

    The mapper applies each side's bound predicates to the raw row and
    emits only the side's pruned columns, so dropped rows and columns
    never reach the spill/shuffle.  The reducer emits the shared output
    convention — left columns, then right columns minus the right key —
    reordered to ``output_columns`` when a projection sits directly above
    the join (the final SELECT list is fused too, sparing a fourth job).
    """
    left = _stage(node.left, tables) or _as_stage(_lower(node.left, tables, session))
    right = _stage(node.right, tables) or _as_stage(_lower(node.right, tables, session))

    left_key = left.table.index_of(node.left_key)
    right_key = right.table.index_of(node.right_key)
    left_indices, right_indices = left.indices(), right.indices()
    joined_columns = list(left.columns) + [
        name for name in right.columns if name != node.right_key
    ]
    if len(set(joined_columns)) != len(joined_columns):
        raise ValueError(
            f"join output columns collide: {joined_columns}; project the "
            "inputs apart first"
        )
    if output_columns is None:
        output_columns = tuple(joined_columns)
    missing = set(output_columns) - set(joined_columns)
    if missing:
        raise KeyError(
            f"no column {sorted(missing)[0]!r} in join output {joined_columns}"
        )
    positions = [joined_columns.index(name) for name in output_columns]
    right_kept = [i for i, name in zip(right_indices, right.columns, strict=True)
                  if name != node.right_key]

    def mapper(tagged_row):
        tag, row = tagged_row
        if tag == "L":
            if left.admit(row):
                yield (row[left_key], (tag, tuple(row[i] for i in left_indices)))
        elif right.admit(row):
            yield (row[right_key], (tag, tuple(row[i] for i in right_kept)))

    def reducer(_key, values):
        left_rows = [row for tag, row in values if tag == "L"]
        right_rows = [row for tag, row in values if tag == "R"]
        for left_row in left_rows:
            for right_row in right_rows:
                combined = left_row + right_row
                yield (None, tuple(combined[p] for p in positions))

    tagged = ([("L", row) for row in left.table.rows]
              + [("R", row) for row in right.table.rows])
    output = session.engine.run(
        MapReduceJob(
            name=f"shared_join({left.table.name},{right.table.name})",
            mapper=mapper,
            reducer=reducer,
        ),
        tagged,
    )
    return HiveTable(
        name=node.result_name,
        columns=tuple(output_columns),
        rows=[value for _, value in output],
    )


def _as_stage(table: HiveTable) -> _ScanStage:
    """Wrap an already-materialised table as a pass-through stage."""
    return _ScanStage(table, [], table.columns)


def driver_pivot(table: HiveTable, row_key: str, column_key: str,
                 value: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scatter a long-format table into a dense matrix on the driver.

    Labels are the sorted distinct keys (the shared pivot convention);
    duplicate ``(row, column)`` cells are last-write-wins.  Used by the
    ``Pivot`` terminal here and by the multi-node Hadoop engine after it
    gathers the per-node join outputs.
    """
    rows = np.asarray(table.column_values(row_key), dtype=np.int64)
    cols = np.asarray(table.column_values(column_key), dtype=np.int64)
    values = np.asarray(table.column_values(value), dtype=np.float64)
    row_labels, row_positions = np.unique(rows, return_inverse=True)
    column_labels, column_positions = np.unique(cols, return_inverse=True)
    matrix = np.zeros((len(row_labels), len(column_labels)))
    matrix[row_positions, column_positions] = values
    return matrix, row_labels, column_labels
