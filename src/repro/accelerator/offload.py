"""The offload runtime: which GenBase kernels go to the device, and how.

The paper's accelerated configuration offloads covariance, SVD and the
statistics kernels (linear regression offload was "not fully supported" in
the MKL release they used, so it is excluded — Section 5.2), and notes that
biclustering "takes very little computation time and cannot be expected to
show significant speedup on any accelerator".

:class:`OffloadRuntime` encodes exactly that policy: a per-kernel
offloadable fraction (biclustering's is small, the dense kernels' are
large), a list of kernels that are never offloaded, and a convenience
``run`` method the SciDB+Phi engine adapter calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.accelerator.device import Coprocessor, OffloadResult


#: Per-analytic offloadable fractions.  Dense factorizations are almost all
#: parallel FLOPs; the rank-sum statistics are about half ranking/bookkeeping;
#: Cheng–Church biclustering is dominated by control flow.
DEFAULT_OFFLOAD_FRACTIONS: dict[str, float] = {
    "covariance": 0.92,
    "svd": 0.95,
    "statistics": 0.55,
    "biclustering": 0.15,
    "regression": 0.90,
}

#: Kernels the runtime refuses to offload (runs them on the host), mirroring
#: the unsupported automatic offload of the regression path in the paper.
DEFAULT_HOST_ONLY: frozenset[str] = frozenset({"regression"})


@dataclass
class OffloadRuntime:
    """Decides per kernel whether to offload, and runs it either way."""

    device: Coprocessor = field(default_factory=Coprocessor)
    fractions: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_OFFLOAD_FRACTIONS))
    host_only: frozenset = DEFAULT_HOST_ONLY

    def should_offload(self, kernel_name: str) -> bool:
        """Whether this kernel is eligible for the device."""
        return kernel_name not in self.host_only

    def run(self, kernel_name: str, kernel: Callable, *arrays: np.ndarray,
            **kwargs) -> OffloadResult:
        """Run a kernel, offloading it if the policy allows.

        Returns an :class:`OffloadResult` either way; for host-only kernels
        the device time equals the host time and no transfer is charged.
        """
        if not self.should_offload(kernel_name):
            import time

            started = time.perf_counter()
            value = kernel(*arrays, **kwargs)
            host_seconds = time.perf_counter() - started
            result = OffloadResult(
                value=value,
                host_kernel_seconds=host_seconds,
                device_kernel_seconds=host_seconds,
                transfer_seconds=0.0,
                device_total_seconds=host_seconds,
                bytes_transferred=0,
                fits_in_device_memory=True,
            )
            self.device.offloads.append(result)
            return result
        fraction = self.fractions.get(kernel_name, 0.9)
        return self.device.offload(
            kernel, *arrays, offloadable_fraction=fraction, **kwargs
        )
