"""Coprocessor offload model (the benchmark's Intel Xeon Phi analog).

Section 5 of the paper offloads the analytics of the SciDB configuration to
a Xeon Phi 5110P: 60 cores, 8 GB of on-board memory, connected over PCIe.
The observed behaviour is entirely explained by three mechanisms, all of
which this package models explicitly:

1. data must be copied to the device before compute and back afterwards, so
   small problems are dominated by transfer overhead;
2. the device's dense-compute throughput is a problem-specific 1.4–2.9×
   better than the host, so only analytics-heavy queries benefit;
3. the device memory is limited, so data sets that do not fit pay extra
   streaming cost (and the paper only reports up to the large dataset for
   this reason).

:class:`~repro.accelerator.device.Coprocessor` executes the actual kernel on
the host (there is no real accelerator in this reproduction) and reports a
*modelled* device time built from the measured host kernel time and the
transfer model — the substitution is documented in DESIGN.md.
"""

from repro.accelerator.device import Coprocessor, DeviceSpec, OffloadResult, XEON_PHI_5110P
from repro.accelerator.offload import OffloadRuntime

__all__ = [
    "Coprocessor",
    "DeviceSpec",
    "OffloadResult",
    "OffloadRuntime",
    "XEON_PHI_5110P",
]
