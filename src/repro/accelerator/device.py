"""The coprocessor device model.

The model is Amdahl-style: each offloaded kernel declares what fraction of
its work is dense, massively parallel computation (the part a many-core
device accelerates); the rest stays at host speed.  Device time for one
offloaded call is::

    transfer_in + host_time * (1 - f) + host_time * f / compute_speedup + transfer_out

where ``f`` is the kernel's offloadable fraction and the transfers are
charged from the real byte sizes of the arrays moved.  The kernel itself
executes on the host — the acceleration is modelled, the data movement and
kernel timing are measured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class DeviceSpec:
    """Static characteristics of an offload device.

    Attributes:
        name: device name for reports.
        memory_bytes: on-device memory; working sets beyond this pay the
            ``oversubscription_penalty`` on their compute time.
        transfer_bandwidth_bytes_per_second: host↔device copy bandwidth
            (PCIe gen2 x16 for the Phi 5110P ≈ 6 GB/s effective).
        transfer_latency_seconds: per-offload fixed setup cost.
        compute_speedup: dense-compute advantage over the host for the
            fraction of a kernel that is offloadable.
        oversubscription_penalty: multiplier applied to device compute when
            the working set exceeds device memory.
    """

    name: str
    memory_bytes: int
    transfer_bandwidth_bytes_per_second: float
    transfer_latency_seconds: float
    compute_speedup: float
    oversubscription_penalty: float = 2.5


#: The device evaluated in the paper (Section 5.1), with its 8 GB memory.
XEON_PHI_5110P = DeviceSpec(
    name="Intel Xeon Phi 5110P (modelled)",
    memory_bytes=8 * 1024**3,
    transfer_bandwidth_bytes_per_second=6e9,
    transfer_latency_seconds=0.004,
    compute_speedup=3.2,
    oversubscription_penalty=2.5,
)


@dataclass
class OffloadResult:
    """Timing breakdown of one offloaded kernel call.

    Attributes:
        value: the kernel's return value.
        host_kernel_seconds: measured host execution time of the kernel.
        device_kernel_seconds: modelled device execution time.
        transfer_seconds: modelled host↔device copy time.
        device_total_seconds: transfer + device kernel time.
        bytes_transferred: total bytes copied to and from the device.
        fits_in_device_memory: whether the working set fit on the device.
    """

    value: object
    host_kernel_seconds: float
    device_kernel_seconds: float
    transfer_seconds: float
    device_total_seconds: float
    bytes_transferred: int
    fits_in_device_memory: bool

    @property
    def speedup(self) -> float:
        """Host kernel time divided by total device time (≥/< 1)."""
        if self.device_total_seconds <= 0:
            return float("inf")
        return self.host_kernel_seconds / self.device_total_seconds


@dataclass
class Coprocessor:
    """An offload device instance with accumulated usage statistics."""

    spec: DeviceSpec = field(default_factory=lambda: XEON_PHI_5110P)
    offloads: list[OffloadResult] = field(default_factory=list)

    def transfer_seconds(self, n_bytes: int) -> float:
        """Modelled time to copy ``n_bytes`` across the host↔device bus."""
        return self.spec.transfer_latency_seconds + n_bytes / self.spec.transfer_bandwidth_bytes_per_second

    def offload(
        self,
        kernel: Callable,
        *arrays: np.ndarray,
        offloadable_fraction: float = 0.9,
        output_bytes: int | None = None,
        **kwargs,
    ) -> OffloadResult:
        """Run ``kernel(*arrays, **kwargs)`` and model its offloaded execution.

        Args:
            kernel: the analytics kernel to execute.
            arrays: numpy array arguments; their sizes determine transfer cost
                and device-memory fit.
            offloadable_fraction: fraction of the kernel's work that is dense
                parallel computation (Amdahl's ``f``).
            output_bytes: bytes copied back to the host; defaults to the size
                of the returned ndarray(s), or 0 for non-array results.
            kwargs: forwarded to the kernel.
        """
        if not 0.0 <= offloadable_fraction <= 1.0:
            raise ValueError("offloadable_fraction must be in [0, 1]")

        input_bytes = sum(a.nbytes for a in arrays if isinstance(a, np.ndarray))

        started = time.perf_counter()
        value = kernel(*arrays, **kwargs)
        host_seconds = time.perf_counter() - started

        if output_bytes is None:
            output_bytes = _result_bytes(value)
        total_bytes = input_bytes + output_bytes
        transfer = self.transfer_seconds(input_bytes) + self.transfer_seconds(output_bytes)

        fits = total_bytes <= self.spec.memory_bytes
        accelerated = host_seconds * offloadable_fraction / self.spec.compute_speedup
        unaccelerated = host_seconds * (1.0 - offloadable_fraction)
        device_kernel = accelerated + unaccelerated
        if not fits:
            device_kernel *= self.spec.oversubscription_penalty

        result = OffloadResult(
            value=value,
            host_kernel_seconds=host_seconds,
            device_kernel_seconds=device_kernel,
            transfer_seconds=transfer,
            device_total_seconds=transfer + device_kernel,
            bytes_transferred=total_bytes,
            fits_in_device_memory=fits,
        )
        self.offloads.append(result)
        return result

    # -- accounting ---------------------------------------------------------------

    @property
    def total_device_seconds(self) -> float:
        return sum(result.device_total_seconds for result in self.offloads)

    @property
    def total_host_seconds(self) -> float:
        return sum(result.host_kernel_seconds for result in self.offloads)

    def reset(self) -> None:
        self.offloads.clear()


def _result_bytes(value) -> int:
    """Best-effort byte size of a kernel's return value."""
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, (tuple, list)):
        return sum(_result_bytes(item) for item in value)
    for attribute in ("singular_values", "left_vectors", "right_vectors",
                      "coefficients", "residuals", "p_values", "z_scores"):
        if hasattr(value, attribute):
            return sum(
                getattr(value, name).nbytes
                for name in (attribute,)
                if isinstance(getattr(value, name), np.ndarray)
            )
    return 0
