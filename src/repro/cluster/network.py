"""The interconnect model for the simulated cluster.

Every transfer between simulated nodes goes through
:meth:`NetworkModel.transfer`, which pickles the payload (so the byte count
is the real serialised size, not an estimate) and charges

    time = latency + bytes / bandwidth

to the simulated clock.  Defaults approximate the gigabit-Ethernet cluster
the paper used (latency 0.5 ms, ~110 MB/s effective bandwidth).  Broadcast
and all-reduce helpers express their cost in terms of point-to-point
transfers the way MPI implementations do.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field


@dataclass
class TransferRecord:
    """One recorded transfer between two nodes."""

    source: int
    destination: int
    n_bytes: int
    seconds: float
    label: str = ""


@dataclass
class NetworkModel:
    """Tracks bytes moved between nodes and converts them to simulated time.

    Attributes:
        latency_seconds: per-message fixed cost.
        bandwidth_bytes_per_second: sustained point-to-point bandwidth.
    """

    latency_seconds: float = 0.0005
    bandwidth_bytes_per_second: float = 110e6
    transfers: list[TransferRecord] = field(default_factory=list)

    def cost_of(self, n_bytes: int) -> float:
        """Simulated seconds to move ``n_bytes`` point to point."""
        return self.latency_seconds + n_bytes / self.bandwidth_bytes_per_second

    def transfer(self, payload, source: int, destination: int, label: str = "") -> tuple[object, float]:
        """Move ``payload`` from one node to another.

        The payload is serialised and deserialised (a real copy, like MPI
        send/recv of a Python object), the transfer is recorded, and the
        deserialised object plus the simulated seconds are returned.
        """
        if source == destination:
            return payload, 0.0
        wire = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        seconds = self.cost_of(len(wire))
        self.transfers.append(
            TransferRecord(source=source, destination=destination,
                           n_bytes=len(wire), seconds=seconds, label=label)
        )
        return pickle.loads(wire), seconds

    def broadcast(self, payload, source: int, destinations: list[int], label: str = "") -> tuple[list, float]:
        """Send the same payload to several nodes; returns copies and total seconds."""
        copies = []
        total = 0.0
        for destination in destinations:
            copy, seconds = self.transfer(payload, source, destination, label=label or "broadcast")
            copies.append(copy)
            total += seconds
        return copies, total

    def gather(self, payloads: list, sources: list[int], destination: int, label: str = "") -> tuple[list, float]:
        """Collect one payload from each source node at ``destination``."""
        gathered = []
        total = 0.0
        for payload, source in zip(payloads, sources, strict=True):
            copy, seconds = self.transfer(payload, source, destination, label=label or "gather")
            gathered.append(copy)
            total += seconds
        return gathered, total

    def all_reduce_cost(self, n_bytes: int, n_nodes: int) -> float:
        """Simulated seconds for a ring all-reduce of ``n_bytes`` per node."""
        if n_nodes <= 1:
            return 0.0
        # Ring all-reduce: 2 (n-1) steps, each moving n_bytes / n.
        steps = 2 * (n_nodes - 1)
        return steps * self.cost_of(max(1, n_bytes // n_nodes))

    # -- accounting -------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(record.n_bytes for record in self.transfers)

    @property
    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.transfers)

    def reset(self) -> None:
        self.transfers.clear()
