"""The simulated cluster: per-node execution plus a parallel time model.

How the simulation works (the substrate's design notes):

* every node's work runs for real, in this process, and is timed per node;
* the *simulated parallel elapsed time* of a phase is the maximum per-node
  compute time (the nodes would have run concurrently) plus the network
  time charged by the :class:`~repro.cluster.network.NetworkModel`;
* per-node data really is partitioned — a node only sees its partition — so
  algorithms that need data from other nodes must move it through the
  network model and pay for it.

That reproduces the paper's multi-node behaviour: more nodes reduce the
max-per-node compute term but grow the communication term, which is why no
system shows linear speedup and some regress from one node to two.

Executor choice and timing semantics
------------------------------------

:meth:`Cluster.run_on_nodes` supports two executors:

* ``"threads"`` (the default) dispatches the per-node work items to a
  ``ThreadPoolExecutor``.  The heavy per-node work is numpy, which releases
  the GIL, so fragments genuinely overlap and the *real* wall clock of a
  phase approaches the slowest fragment on multi-core hosts.  Per-node
  compute is measured with :func:`time.thread_time` (per-thread CPU
  seconds), so scheduler interference between concurrently running
  fragments does not inflate any node's measurement — the simulated
  max-per-node + network model is unchanged by the executor choice.
* ``"sequential"`` is the deterministic fallback: nodes run one after
  another and are wall-clock timed (:func:`time.perf_counter`), exactly
  the pre-threading behaviour.  Use it when profiling per-node work or
  when thread-CPU clocks are unreliable (e.g. under some profilers).

Caveat recorded deliberately: ``thread_time`` counts only the submitting
thread, so per-node kernels that fan out into their *own* thread pools
(multi-threaded BLAS) would be under-counted on the threaded path; the
per-node work the engines submit is single-threaded numpy.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cluster.network import NetworkModel

#: Valid values for :attr:`Cluster.executor`.
EXECUTORS = ("threads", "sequential")


@dataclass
class NodeTiming:
    """Accumulated compute seconds for one simulated node."""

    node_id: int
    compute_seconds: float = 0.0


@dataclass
class ParallelRunResult:
    """Result of one parallel phase.

    Attributes:
        outputs: per-node outputs, in node order.
        elapsed_seconds: simulated parallel elapsed time of the phase
            (max per-node compute + network seconds charged during it).
        per_node_seconds: measured compute seconds per node (thread-CPU
            seconds on the threaded executor, wall clock sequentially).
        network_seconds: network seconds charged during the phase.
        wall_seconds: real (non-simulated) wall clock of the whole
            dispatch — what the driver process actually waited.  On the
            threaded executor this approaches the slowest fragment;
            sequentially it is the sum of all fragments.
    """

    outputs: list
    elapsed_seconds: float
    per_node_seconds: list[float]
    network_seconds: float
    wall_seconds: float = 0.0


@dataclass
class Cluster:
    """A fixed-size simulated cluster.

    Attributes:
        n_nodes: number of nodes.
        network: the interconnect model shared by all phases.
        executor: ``"threads"`` (concurrent fragments, per-thread CPU
            timing) or ``"sequential"`` (the deterministic fallback) —
            see the module docstring for the timing semantics.
    """

    n_nodes: int
    network: NetworkModel = field(default_factory=NetworkModel)
    executor: str = "threads"

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if self.executor not in EXECUTORS:
            raise ValueError(f"unknown executor {self.executor!r}; expected one of {EXECUTORS}")
        self.node_timings = [NodeTiming(node_id=i) for i in range(self.n_nodes)]
        self._simulated_elapsed = 0.0

    # -- execution ----------------------------------------------------------------

    def run_on_nodes(self, per_node_work: Sequence[Callable[[int], object]]) -> ParallelRunResult:
        """Run one callable per node "in parallel".

        Args:
            per_node_work: one zero/one-argument callable per node; each is
                invoked with its node id.

        Returns:
            A :class:`ParallelRunResult`; the phase's elapsed time is also
            added to the cluster's running simulated clock.
        """
        if len(per_node_work) != self.n_nodes:
            raise ValueError(
                f"expected {self.n_nodes} work items, got {len(per_node_work)}"
            )
        network_before = self.network.total_seconds
        wall_started = time.perf_counter()
        if self.executor == "threads" and self.n_nodes > 1:
            outputs, per_node_seconds = self._run_threaded(per_node_work)
        else:
            outputs, per_node_seconds = self._run_sequential(per_node_work)
        wall_seconds = time.perf_counter() - wall_started
        for node_id, seconds in enumerate(per_node_seconds):
            self.node_timings[node_id].compute_seconds += seconds
        network_seconds = self.network.total_seconds - network_before
        phase_elapsed = (max(per_node_seconds) if per_node_seconds else 0.0) + network_seconds
        self._simulated_elapsed += phase_elapsed
        return ParallelRunResult(
            outputs=outputs,
            elapsed_seconds=phase_elapsed,
            per_node_seconds=per_node_seconds,
            network_seconds=network_seconds,
            wall_seconds=wall_seconds,
        )

    @staticmethod
    def _run_sequential(per_node_work: Sequence[Callable[[int], object]]) -> tuple[list, list[float]]:
        outputs, per_node_seconds = [], []
        for node_id, work in enumerate(per_node_work):
            started = time.perf_counter()
            outputs.append(work(node_id))
            per_node_seconds.append(time.perf_counter() - started)
        return outputs, per_node_seconds

    def _run_threaded(self, per_node_work: Sequence[Callable[[int], object]]) -> tuple[list, list[float]]:
        # Per-node work must not touch shared driver state: the engines'
        # fragments are pure compute over their own partition (network
        # transfers happen between phases, on the driver).  Timing uses the
        # per-thread CPU clock so concurrent fragments do not inflate each
        # other's measurement; the pool is per-call, so no idle threads
        # outlive the phase.
        def run_one(node_id: int, work: Callable[[int], object]) -> tuple[object, float]:
            started = time.thread_time()
            output = work(node_id)
            return output, time.thread_time() - started

        max_workers = min(self.n_nodes, os.cpu_count() or 1)
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(run_one, node_id, work)
                for node_id, work in enumerate(per_node_work)
            ]
            paired = [future.result() for future in futures]
        outputs = [output for output, _seconds in paired]
        per_node_seconds = [seconds for _output, seconds in paired]
        return outputs, per_node_seconds

    def map_partitions(self, partitions: Sequence, function: Callable[[object, int], object]) -> ParallelRunResult:
        """Apply ``function(partition, node_id)`` to each node's partition."""
        if len(partitions) != self.n_nodes:
            raise ValueError(
                f"expected {self.n_nodes} partitions, got {len(partitions)}"
            )
        work = [
            (lambda node_id, part=part: function(part, node_id))
            for part in partitions
        ]
        return self.run_on_nodes(work)

    # -- data movement ----------------------------------------------------------------

    def scatter(self, partitions: Sequence, source: int = 0, label: str = "scatter") -> ParallelRunResult:
        """Distribute partitions from a source node to every node.

        The source's own partition is free; the others pay network cost.
        """
        if len(partitions) != self.n_nodes:
            raise ValueError("need one partition per node")
        network_before = self.network.total_seconds
        outputs = []
        for node_id, partition in enumerate(partitions):
            copy, _ = self.network.transfer(partition, source, node_id, label=label)
            outputs.append(copy)
        network_seconds = self.network.total_seconds - network_before
        self._simulated_elapsed += network_seconds
        return ParallelRunResult(
            outputs=outputs,
            elapsed_seconds=network_seconds,
            per_node_seconds=[0.0] * self.n_nodes,
            network_seconds=network_seconds,
        )

    def gather(self, per_node_values: Sequence, destination: int = 0, label: str = "gather") -> ParallelRunResult:
        """Collect one value from every node at the destination node."""
        if len(per_node_values) != self.n_nodes:
            raise ValueError("need one value per node")
        network_before = self.network.total_seconds
        gathered, _ = self.network.gather(
            list(per_node_values), sources=list(range(self.n_nodes)),
            destination=destination, label=label,
        )
        network_seconds = self.network.total_seconds - network_before
        self._simulated_elapsed += network_seconds
        return ParallelRunResult(
            outputs=gathered,
            elapsed_seconds=network_seconds,
            per_node_seconds=[0.0] * self.n_nodes,
            network_seconds=network_seconds,
        )

    # -- accounting ---------------------------------------------------------------------

    @property
    def simulated_elapsed_seconds(self) -> float:
        """Total simulated parallel elapsed time across all phases so far."""
        return self._simulated_elapsed

    def reset_clock(self) -> None:
        """Zero the simulated clock and per-node compute counters."""
        self._simulated_elapsed = 0.0
        self.network.reset()
        for timing in self.node_timings:
            timing.compute_seconds = 0.0
