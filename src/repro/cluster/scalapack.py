"""Distributed dense linear algebra (the ScaLAPACK / pbdR analog).

pbdR partitions matrices across nodes and calls ScaLAPACK, whose routines
work on block-distributed data and communicate partial results.  The
:class:`DistributedMatrix` here is row-block distributed across a
:class:`~repro.cluster.cluster.Cluster`; the :class:`ScaLAPACK` facade
implements the operations the GenBase queries need:

* ``covariance`` — per-node centred Gram matrices, reduced at the driver,
* ``linear_regression`` — per-node ``XᵀX`` / ``Xᵀy`` partials, reduced, then
  solved at the driver (the standard distributed normal-equations path),
* ``lanczos_svd`` — Lanczos where each matrix–vector product is computed as
  per-node partials plus an all-reduce,
* ``gemm`` — distributed ``A @ B`` with ``B`` broadcast to all nodes.

Per-node work is real compute; every cross-node movement of partials goes
through the cluster's network model and is charged to the simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.partitioner import Partitioner, RangePartitioner
from repro.linalg.qr import RegressionResult
from repro.linalg.lanczos import LanczosResult


@dataclass
class DistributedMatrix:
    """A dense matrix row-partitioned across cluster nodes.

    Attributes:
        cluster: the owning cluster.
        partitions: one row-block per node (node ``i`` holds ``partitions[i]``).
        n_columns: the (shared) number of columns.
    """

    cluster: Cluster
    partitions: list[np.ndarray]
    n_columns: int

    @classmethod
    def from_dense(cls, cluster: Cluster, matrix: np.ndarray,
                   partitioner: Partitioner | None = None,
                   scatter_from: int | None = 0) -> "DistributedMatrix":
        """Partition a dense matrix across the cluster's nodes.

        Args:
            cluster: target cluster.
            matrix: the full matrix (lives on the driver before distribution).
            partitioner: row partitioner; defaults to contiguous range blocks
                (pbdR's default layout for data frames).  Use
                :class:`BlockCyclicPartitioner` for the ScaLAPACK layout.
            scatter_from: if not None, charge the network for scattering the
                partitions from this node (the load step); None means the
                data was generated in place on each node.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("DistributedMatrix needs a 2-D matrix")
        partitioner = partitioner or RangePartitioner(cluster.n_nodes)
        indices = np.arange(matrix.shape[0])
        parts = [matrix[idx] for idx in partitioner.split_indices(indices)]
        if scatter_from is not None and cluster.n_nodes > 1:
            result = cluster.scatter(parts, source=scatter_from, label="distribute-matrix")
            parts = list(result.outputs)
        return cls(cluster=cluster, partitions=parts, n_columns=matrix.shape[1])

    @property
    def n_rows(self) -> int:
        return sum(part.shape[0] for part in self.partitions)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_columns)

    def collect(self, destination: int = 0) -> np.ndarray:
        """Gather all row blocks to one node and stack them (order: node 0..n)."""
        gathered = self.cluster.gather(self.partitions, destination=destination,
                                       label="collect-matrix")
        blocks = [np.asarray(block) for block in gathered.outputs if np.asarray(block).size]
        if not blocks:
            return np.empty((0, self.n_columns))
        return np.vstack(blocks)


class ScaLAPACK:
    """Distributed dense kernels over :class:`DistributedMatrix` operands."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    # -- building blocks ------------------------------------------------------------

    def _all_reduce_sum(self, per_node_arrays: list[np.ndarray], label: str) -> np.ndarray:
        """Sum per-node arrays, charging a ring all-reduce to the clock."""
        total = np.zeros_like(per_node_arrays[0])
        for array in per_node_arrays:
            total = total + array
        n_bytes = per_node_arrays[0].nbytes
        seconds = self.cluster.network.all_reduce_cost(n_bytes, self.cluster.n_nodes)
        # Charge the simulated clock through a zero-byte marker transfer is
        # not possible, so account it directly.
        self.cluster._simulated_elapsed += seconds
        return total

    # -- kernels -----------------------------------------------------------------------

    def column_means(self, matrix: DistributedMatrix) -> np.ndarray:
        """Distributed column means."""
        result = self.cluster.map_partitions(
            matrix.partitions,
            lambda part, _node: (part.sum(axis=0) if part.size else np.zeros(matrix.n_columns),
                                 part.shape[0]),
        )
        sums = self._all_reduce_sum([np.asarray(s) for s, _ in result.outputs], "means")
        count = sum(c for _, c in result.outputs)
        return sums / max(count, 1)

    def covariance(self, matrix: DistributedMatrix, ddof: int = 1) -> np.ndarray:
        """Distributed column covariance (pdgemm-style partial Gram reduce)."""
        n_rows = matrix.n_rows
        if n_rows - ddof <= 0:
            raise ValueError("not enough rows for the requested ddof")
        means = self.column_means(matrix)
        result = self.cluster.map_partitions(
            matrix.partitions,
            lambda part, _node: ((part - means).T @ (part - means)
                                 if part.size else np.zeros((matrix.n_columns, matrix.n_columns))),
        )
        gram = self._all_reduce_sum([np.asarray(g) for g in result.outputs], "covariance")
        cov = gram / (n_rows - ddof)
        return (cov + cov.T) / 2.0

    def linear_regression(self, features: DistributedMatrix, target: DistributedMatrix) -> RegressionResult:
        """Distributed OLS via reduced normal equations.

        ``target`` must be distributed with the same partitioner as
        ``features`` (one column).
        """
        if target.n_columns != 1:
            raise ValueError("target must be a single-column distributed matrix")
        n_features = features.n_columns

        def partial(node_data, _node):
            x_part, y_part = node_data
            if x_part.size == 0:
                return (np.zeros((n_features + 1, n_features + 1)), np.zeros(n_features + 1))
            design = np.column_stack([np.ones(x_part.shape[0]), x_part])
            return (design.T @ design, design.T @ y_part.ravel())

        paired = list(zip(features.partitions, target.partitions, strict=True))
        result = self.cluster.map_partitions(paired, partial)
        xtx = self._all_reduce_sum([np.asarray(a) for a, _ in result.outputs], "xtx")
        xty = self._all_reduce_sum([np.asarray(b) for _, b in result.outputs], "xty")
        beta = np.linalg.solve(xtx + 1e-12 * np.eye(n_features + 1), xty)

        intercept = float(beta[0])
        coefficients = beta[1:]

        # Residuals / R² need one more distributed pass.
        def residual_stats(node_data, _node):
            x_part, y_part = node_data
            if x_part.size == 0:
                return (0.0, 0.0, 0.0, 0)
            predictions = x_part @ coefficients + intercept
            residuals = y_part.ravel() - predictions
            return (float(np.sum(residuals ** 2)), float(np.sum(y_part)), float(np.sum(y_part ** 2)), len(residuals))

        stats = self.cluster.map_partitions(paired, residual_stats)
        residual_ss = sum(s[0] for s in stats.outputs)
        y_sum = sum(s[1] for s in stats.outputs)
        y_sq_sum = sum(s[2] for s in stats.outputs)
        count = sum(s[3] for s in stats.outputs)
        total_ss = y_sq_sum - (y_sum ** 2) / count if count else 0.0
        r_squared = 1.0 - residual_ss / total_ss if total_ss > 0 else 1.0

        residuals = np.empty(0)
        return RegressionResult(
            coefficients=coefficients,
            intercept=intercept,
            residuals=residuals,
            r_squared=r_squared,
            rank=n_features + 1,
            method="scalapack",
        )

    def matvec(self, matrix: DistributedMatrix, vector: np.ndarray,
               transpose: bool = False) -> np.ndarray:
        """Distributed ``A @ x`` or ``Aᵀ @ x``.

        The vector is broadcast to all nodes; partial results are reduced.
        """
        vector = np.asarray(vector, dtype=np.float64)
        if self.cluster.n_nodes > 1:
            self.cluster.network.broadcast(
                vector, source=0, destinations=list(range(1, self.cluster.n_nodes)),
                label="broadcast-vector",
            )
        if not transpose:
            result = self.cluster.map_partitions(
                matrix.partitions,
                lambda part, _node: part @ vector if part.size else np.zeros(0),
            )
            return np.concatenate([np.asarray(block).ravel() for block in result.outputs])

        # Aᵀ x: x is partitioned like the rows; reduce per-node partials.
        offsets = np.cumsum([0] + [part.shape[0] for part in matrix.partitions])
        paired = [
            (part, vector[offsets[i]:offsets[i + 1]])
            for i, part in enumerate(matrix.partitions)
        ]
        result = self.cluster.map_partitions(
            paired,
            lambda data, _node: (data[0].T @ data[1]
                                 if data[0].size else np.zeros(matrix.n_columns)),
        )
        return self._all_reduce_sum([np.asarray(block) for block in result.outputs], "matvec-T")

    def lanczos_svd(self, matrix: DistributedMatrix, k: int = 50, seed: int = 0) -> LanczosResult:
        """Distributed truncated SVD: Lanczos with distributed matvecs."""
        from repro.linalg.lanczos import lanczos_eigsh

        n_rows, n_cols = matrix.shape
        k = max(1, min(k, n_rows, n_cols))

        def operator(vector: np.ndarray) -> np.ndarray:
            return self.matvec(matrix, self.matvec(matrix, vector), transpose=True)

        eigenvalues, right_vectors = lanczos_eigsh(operator, dimension=n_cols, k=k, seed=seed)
        singular_values = np.sqrt(np.clip(eigenvalues, 0.0, None))
        left_vectors = np.column_stack([
            self.matvec(matrix, right_vectors[:, i]) for i in range(k)
        ])
        scale = np.where(singular_values > 0, singular_values, 1.0)
        left_vectors = left_vectors / scale
        norms = np.linalg.norm(left_vectors, axis=0)
        norms[norms == 0] = 1.0
        left_vectors = left_vectors / norms
        return LanczosResult(
            singular_values=singular_values,
            left_vectors=left_vectors,
            right_vectors=right_vectors,
            iterations=k,
        )

    def gemm(self, matrix: DistributedMatrix, dense_right: np.ndarray) -> DistributedMatrix:
        """Distributed ``A @ B`` with ``B`` broadcast (pdgemm's simple case)."""
        dense_right = np.asarray(dense_right, dtype=np.float64)
        if dense_right.shape[0] != matrix.n_columns:
            raise ValueError("inner dimensions do not match")
        if self.cluster.n_nodes > 1:
            self.cluster.network.broadcast(
                dense_right, source=0, destinations=list(range(1, self.cluster.n_nodes)),
                label="broadcast-gemm-rhs",
            )
        result = self.cluster.map_partitions(
            matrix.partitions,
            lambda part, _node: part @ dense_right if part.size else np.zeros((0, dense_right.shape[1])),
        )
        return DistributedMatrix(
            cluster=self.cluster,
            partitions=[np.asarray(block) for block in result.outputs],
            n_columns=dense_right.shape[1],
        )
