"""Partitioners: how data is split across the simulated cluster nodes.

Three families cover everything the paper's multi-node systems use:

* hash partitioning (SciDB attribute/dimension hashing, Hive bucketing),
* range partitioning (SciDB chunk ranges, ordered splits),
* block-cyclic partitioning (ScaLAPACK's layout, used by pbdR).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class Partitioner:
    """Assigns each of ``n_items`` items to one of ``n_partitions`` partitions."""

    def __init__(self, n_partitions: int):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions

    def assign(self, keys: np.ndarray) -> np.ndarray:
        """Return the partition id for every key."""
        raise NotImplementedError

    def split_indices(self, keys: np.ndarray) -> list[np.ndarray]:
        """Return, per partition, the positions of the items assigned to it."""
        assignment = self.assign(np.asarray(keys))
        return [np.flatnonzero(assignment == p) for p in range(self.n_partitions)]


def _stable_string_hash(keys: np.ndarray) -> np.ndarray:
    """Vectorised FNV-1a over each key's UCS-4 code points.

    Python's builtin ``hash()`` on str/bytes is salted by ``PYTHONHASHSEED``
    and therefore differs between processes — a hash partitioner built on
    it would scatter the same keys differently on every run.  This hash
    depends only on the characters themselves.
    """
    as_str = keys.astype(np.str_)
    if as_str.dtype.itemsize == 0:  # every key is the empty string
        return np.zeros(len(as_str), dtype=np.int64)
    # A numpy unicode array is fixed-width UCS-4: viewing it as uint32
    # exposes the (zero-padded) code points as a dense matrix.
    codes = as_str.view(np.uint32).reshape(len(as_str), -1).astype(np.uint64)
    hashed = np.full(len(as_str), np.uint64(14695981039346656037))
    prime = np.uint64(1099511628211)
    for column in codes.T:
        hashed = (hashed ^ column) * prime
    return hashed.view(np.int64)


@dataclass
class HashPartitioner(Partitioner):
    """Partition by a deterministic integer hash of the key."""

    def __init__(self, n_partitions: int, seed: int = 0):
        super().__init__(n_partitions)
        self.seed = seed

    def assign(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys)
        # Knuth-style multiplicative hash on the integer representation;
        # non-numeric keys get a PYTHONHASHSEED-free string hash first.
        as_int = keys.astype(np.int64, copy=False) if np.issubdtype(keys.dtype, np.number) else _stable_string_hash(keys)
        mixed = (as_int * np.int64(2654435761) + np.int64(self.seed)) & np.int64(0x7FFFFFFF)
        return (mixed % self.n_partitions).astype(np.int64)


class RangePartitioner(Partitioner):
    """Partition by contiguous key ranges (equi-depth over the observed keys).

    Integer keys are partitioned in integer space: boundaries are actual
    observed keys picked at equi-depth positions of the sorted key array.
    (A float64 round-trip would corrupt int64 keys above 2**53 — adjacent
    patient ids collapse onto one float and boundary keys land in the
    wrong partition.)  Float keys keep the quantile-based boundaries.
    """

    def assign(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys)
        if len(keys) == 0:
            return np.empty(0, dtype=np.int64)
        if np.issubdtype(keys.dtype, np.integer) or keys.dtype == np.bool_:
            working = keys.astype(np.int64, copy=False)
            if self.n_partitions > 1:
                ordered = np.sort(working)
                positions = (np.arange(1, self.n_partitions) * len(ordered)) // self.n_partitions
                boundaries = ordered[positions]
            else:
                boundaries = np.empty(0, dtype=np.int64)
            return np.searchsorted(boundaries, working, side="right").astype(np.int64)
        working = keys.astype(np.float64)
        quantiles = np.quantile(working, np.linspace(0, 1, self.n_partitions + 1)[1:-1]) if self.n_partitions > 1 else np.empty(0)
        return np.searchsorted(quantiles, working, side="right").astype(np.int64)


class BlockCyclicPartitioner(Partitioner):
    """ScaLAPACK-style block-cyclic assignment of row indices."""

    def __init__(self, n_partitions: int, block_size: int = 32):
        super().__init__(n_partitions)
        if block_size < 1:
            raise ValueError("block size must be positive")
        self.block_size = block_size

    def assign(self, keys: np.ndarray) -> np.ndarray:
        indices = np.asarray(keys, dtype=np.int64)
        return (indices // self.block_size) % self.n_partitions


def partition_rows(matrix: np.ndarray, partitioner: Partitioner) -> list[np.ndarray]:
    """Split a matrix's rows into per-partition sub-matrices.

    Row indices are used as the partitioning key, so a
    :class:`BlockCyclicPartitioner` yields the ScaLAPACK layout and a
    :class:`RangePartitioner` yields contiguous row blocks.
    """
    matrix = np.asarray(matrix)
    indices = np.arange(matrix.shape[0])
    return [matrix[part] for part in partitioner.split_indices(indices)]
