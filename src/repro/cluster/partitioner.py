"""Partitioners: how data is split across the simulated cluster nodes.

Three families cover everything the paper's multi-node systems use:

* hash partitioning (SciDB attribute/dimension hashing, Hive bucketing),
* range partitioning (SciDB chunk ranges, ordered splits),
* block-cyclic partitioning (ScaLAPACK's layout, used by pbdR).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class Partitioner:
    """Assigns each of ``n_items`` items to one of ``n_partitions`` partitions."""

    def __init__(self, n_partitions: int):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions

    def assign(self, keys: np.ndarray) -> np.ndarray:
        """Return the partition id for every key."""
        raise NotImplementedError

    def split_indices(self, keys: np.ndarray) -> list[np.ndarray]:
        """Return, per partition, the positions of the items assigned to it."""
        assignment = self.assign(np.asarray(keys))
        return [np.flatnonzero(assignment == p) for p in range(self.n_partitions)]


@dataclass
class HashPartitioner(Partitioner):
    """Partition by a deterministic integer hash of the key."""

    def __init__(self, n_partitions: int, seed: int = 0):
        super().__init__(n_partitions)
        self.seed = seed

    def assign(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys)
        # Knuth-style multiplicative hash on the integer representation.
        as_int = keys.astype(np.int64, copy=False) if np.issubdtype(keys.dtype, np.number) else np.asarray(
            [hash(k) for k in keys.tolist()], dtype=np.int64
        )
        mixed = (as_int * np.int64(2654435761) + np.int64(self.seed)) & np.int64(0x7FFFFFFF)
        return (mixed % self.n_partitions).astype(np.int64)


class RangePartitioner(Partitioner):
    """Partition by contiguous key ranges (equi-depth over the observed keys)."""

    def assign(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.float64)
        if len(keys) == 0:
            return np.empty(0, dtype=np.int64)
        quantiles = np.quantile(keys, np.linspace(0, 1, self.n_partitions + 1)[1:-1]) if self.n_partitions > 1 else np.empty(0)
        return np.searchsorted(quantiles, keys, side="right").astype(np.int64)


class BlockCyclicPartitioner(Partitioner):
    """ScaLAPACK-style block-cyclic assignment of row indices."""

    def __init__(self, n_partitions: int, block_size: int = 32):
        super().__init__(n_partitions)
        if block_size < 1:
            raise ValueError("block size must be positive")
        self.block_size = block_size

    def assign(self, keys: np.ndarray) -> np.ndarray:
        indices = np.asarray(keys, dtype=np.int64)
        return (indices // self.block_size) % self.n_partitions


def partition_rows(matrix: np.ndarray, partitioner: Partitioner) -> list[np.ndarray]:
    """Split a matrix's rows into per-partition sub-matrices.

    Row indices are used as the partitioning key, so a
    :class:`BlockCyclicPartitioner` yields the ScaLAPACK layout and a
    :class:`RangePartitioner` yields contiguous row blocks.
    """
    matrix = np.asarray(matrix)
    indices = np.arange(matrix.shape[0])
    return [matrix[part] for part in partitioner.split_indices(indices)]
