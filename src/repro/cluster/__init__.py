"""Multi-node execution simulator.

The paper's multi-node experiments (Figures 3 and 4) run SciDB, Hadoop, the
column store and pbdR on clusters of 1, 2 and 4 machines and find that
"the scalability of all systems is less than ideal": per-node compute drops
with more nodes but data movement grows, and SciDB is sometimes *slower* on
two nodes than on one.

This package provides the substrate those experiments need without real
hardware:

* :mod:`repro.cluster.partitioner` — hash, range and block-cyclic
  partitioners that split tables/matrices across nodes,
* :mod:`repro.cluster.network` — an interconnect model that *actually
  serialises* every transferred object to count bytes, then converts bytes
  to time with a configurable latency + bandwidth model,
* :mod:`repro.cluster.cluster` — the cluster itself: executes per-partition
  work (really, sequentially in-process, with per-partition wall-clock
  measurement) and combines per-node compute with network time into a
  simulated parallel elapsed time,
* :mod:`repro.cluster.scalapack` — a ScaLAPACK/pbdR-style distributed dense
  linear algebra layer (distributed GEMM, covariance, least squares and
  Lanczos) over block row-partitioned matrices.

The substitution is documented in DESIGN.md: per-node computation is real
measured work; only the interconnect is modelled.
"""

from repro.cluster.partitioner import (
    BlockCyclicPartitioner,
    HashPartitioner,
    RangePartitioner,
    partition_rows,
)
from repro.cluster.network import NetworkModel, TransferRecord
from repro.cluster.cluster import Cluster, NodeTiming, ParallelRunResult
from repro.cluster.scalapack import DistributedMatrix, ScaLAPACK
from repro.cluster.bridge import (
    ColumnSynopsis,
    PartitionedTable,
    PartitionStats,
    PartitionSynopsis,
    expression_skips_partition,
    merge_gathered,
    reduce_partial_sums,
    run_shared_plan,
)

__all__ = [
    "HashPartitioner",
    "RangePartitioner",
    "BlockCyclicPartitioner",
    "partition_rows",
    "NetworkModel",
    "TransferRecord",
    "Cluster",
    "NodeTiming",
    "ParallelRunResult",
    "DistributedMatrix",
    "ScaLAPACK",
    "ColumnSynopsis",
    "PartitionedTable",
    "PartitionStats",
    "PartitionSynopsis",
    "expression_skips_partition",
    "merge_gathered",
    "reduce_partial_sums",
    "run_shared_plan",
]
