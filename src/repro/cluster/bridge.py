"""Shared logical plans on the simulated cluster: prune, lower, merge.

This is the distributed counterpart of :mod:`repro.arraydb.bridge` and
:mod:`repro.mapreduce.bridge`: one logical plan from the shared surface
(:mod:`repro.plan` / :mod:`repro.core.queries`) is executed against data
that is row-partitioned across the simulated nodes.

The execution pipeline:

1. **Classify** — the plan's filter predicate is split into conjuncts with
   the shared range/equality/membership machinery
   (:func:`repro.plan.optimizer.ordered_conjuncts`).
2. **Prune** — each partition carries a :class:`PartitionSynopsis` (per
   partition-column min/max plus a small distinct set — the cluster-level
   analogue of ``Chunk.attribute_range()`` in the array engine).  A
   conjunct whose constant range or key set cannot intersect a partition's
   synopsis eliminates that partition *on the driver, before dispatch*;
   :attr:`PartitionStats.partitions_skipped` counts them, mirroring
   ``FilterStats.chunks_skipped``.
3. **Lower** — surviving fragments are dispatched together through
   :meth:`repro.cluster.cluster.Cluster.run_on_nodes` (concurrently on the
   threaded executor); each node evaluates the conjuncts vectorised over
   its own partition only.
4. **Merge** — partial results come back to the driver: aggregate plans
   are reduced per group key (partial sums/counts), and the helpers
   :func:`reduce_partial_sums` / :func:`merge_gathered` implement the two
   driver-side merge shapes the GenBase engines need (partial-sum reduce
   for the statistics query, vstack for gathered matrix blocks).

Pruned partitions still yield a (trivially empty) fragment so downstream
distributed kernels keep their one-block-per-node layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.arraydb.operators import expression_skips_chunk
from repro.plan.expressions import (
    ColumnRef,
    Comparison,
    BooleanOp,
    Expression,
    InList,
    Literal,
)
from repro.colstore.sketches import HyperLogLog, TDigest
from repro.plan.logical import (
    SKETCH_APPROX_KINDS,
    Aggregate,
    ApproxAggregate,
    Filter,
    PlanNode,
    Scan,
)
from repro.plan.optimizer import ColumnStats, ordered_conjuncts
from repro.plan.verify import maybe_verify_plan

#: Distinct sets beyond this cardinality are dropped from the synopsis —
#: min/max still prunes, the set test just becomes unavailable (same
#: trade-off as any real zone map / small-materialized-aggregate store).
DISTINCT_SYNOPSIS_LIMIT = 64


@dataclass
class PartitionStats:
    """Partition-level accounting for one plan execution.

    ``partitions_skipped`` counts partitions eliminated purely from their
    synopsis — no node ever evaluated a predicate over their rows.  The
    cluster-level mirror of ``FilterStats.chunks_skipped``.
    """

    partitions_scanned: int = 0
    partitions_skipped: int = 0
    rows_kept: int = 0


@dataclass(frozen=True)
class ColumnSynopsis:
    """Min/max (and optionally the full distinct set) of one column."""

    minimum: float
    maximum: float
    values: frozenset | None = None


@dataclass(frozen=True)
class PartitionSynopsis:
    """Per-partition column synopses: what the driver knows without a scan."""

    columns: Mapping[str, ColumnSynopsis]
    n_rows: int

    @classmethod
    def from_columns(cls, columns: Mapping[str, np.ndarray],
                     distinct_limit: int = DISTINCT_SYNOPSIS_LIMIT) -> PartitionSynopsis:
        """Summarise one partition's columns (empty partitions carry none)."""
        synopses: dict[str, ColumnSynopsis] = {}
        n_rows = 0
        for name, array in columns.items():
            array = np.asarray(array)
            n_rows = len(array)
            if n_rows == 0 or not np.issubdtype(array.dtype, np.number):
                continue
            distinct = np.unique(array)
            values = frozenset(distinct.tolist()) if len(distinct) <= distinct_limit else None
            synopses[name] = ColumnSynopsis(
                minimum=float(distinct[0]), maximum=float(distinct[-1]), values=values
            )
        return cls(columns=synopses, n_rows=n_rows)


def _skips_by_distinct(expression: Expression, values: frozenset) -> bool:
    """True when the distinct set alone proves the predicate empty."""
    if isinstance(expression, Comparison) and type(expression) is Comparison:
        if expression.symbol != "=":
            return False
        left, right = expression.left, expression.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            constant = right.value
        elif isinstance(left, Literal) and isinstance(right, ColumnRef):
            constant = left.value
        else:
            return False
        return constant not in values
    if isinstance(expression, InList) and isinstance(expression.operand, ColumnRef):
        try:
            keys = expression.key_array()
        except (TypeError, ValueError):
            return False
        return values.isdisjoint(keys.tolist())
    return False


def expression_skips_partition(expression: Expression, synopsis: PartitionSynopsis) -> bool:
    """True when no row of the partition can satisfy the predicate.

    Exact about ``<`` vs ``<=`` strictness (delegated to the array
    engine's :func:`~repro.arraydb.operators.expression_skips_chunk`) and
    answers ``False`` — never skip — for shapes it cannot reason about.
    Empty partitions are always skippable.
    """
    if synopsis.n_rows == 0:
        return True
    if isinstance(expression, BooleanOp):
        if expression.conjunction:
            return any(expression_skips_partition(op, synopsis)
                       for op in expression.operands)
        return all(expression_skips_partition(op, synopsis)
                   for op in expression.operands)
    referenced = expression.columns_referenced()
    if len(referenced) != 1:
        return False
    column = synopsis.columns.get(next(iter(referenced)))
    if column is None:
        return False
    if expression_skips_chunk(expression, column.minimum, column.maximum):
        return True
    return column.values is not None and _skips_by_distinct(expression, column.values)


@dataclass
class PartitionedTable:
    """One logical table, row-partitioned across the cluster nodes.

    ``partitions[i]`` maps column name → that node's slice of the column;
    ``synopses[i]`` is the driver-resident summary used for pruning.
    """

    name: str
    partitions: list[Mapping[str, np.ndarray]]
    synopses: list[PartitionSynopsis]

    @classmethod
    def from_partitions(cls, name: str, partitions: Sequence[Mapping[str, np.ndarray]],
                        distinct_limit: int = DISTINCT_SYNOPSIS_LIMIT) -> PartitionedTable:
        return cls(
            name=name,
            partitions=list(partitions),
            synopses=[PartitionSynopsis.from_columns(p, distinct_limit) for p in partitions],
        )

    def global_stats(self, column: str) -> ColumnStats | None:
        """Merge the per-partition synopses into whole-table column stats."""
        spans = [s.columns[column] for s in self.synopses if column in s.columns]
        if not spans:
            return None
        merged: set | None = set()
        for span in spans:
            if span.values is None:
                merged = None
                break
            merged |= span.values
        return ColumnStats(
            row_count=sum(s.n_rows for s in self.synopses),
            distinct=len(merged) if merged is not None else 0,
            minimum=min(span.minimum for span in spans),
            maximum=max(span.maximum for span in spans),
        )


def _parse_plan(
    plan: PlanNode, table: PartitionedTable
) -> tuple[Aggregate | ApproxAggregate | None, list[Expression]]:
    """Unpack (Aggregate|ApproxAggregate)? → Filter* → Scan over the table.

    Only *sketch-backed* approximate kinds are admitted: their partials
    (HLL registers, t-digest centroids) merge losslessly driver-side.
    Sampled kinds need one global sample over the whole table — route
    those through the column-store planner instead.
    """
    aggregate = None
    if isinstance(plan, ApproxAggregate):
        if plan.kind not in SKETCH_APPROX_KINDS:
            raise ValueError(
                f"cluster bridge merges sketch partials only "
                f"({list(SKETCH_APPROX_KINDS)}); sampled kind {plan.kind!r} "
                "needs a global sample — run it through the column-store planner"
            )
        aggregate, plan = plan, plan.child
    elif isinstance(plan, Aggregate):
        aggregate, plan = plan, plan.child
    predicates: list[Expression] = []
    while isinstance(plan, Filter):
        predicates.insert(0, plan.predicate)
        plan = plan.child
    if not isinstance(plan, Scan) or plan.table != table.name:
        raise ValueError(
            f"cluster bridge lowers Aggregate?/Filter*/Scan({table.name!r}) plans, got {plan!r}"
        )
    return aggregate, predicates


def run_shared_plan(
    plan: PlanNode,
    table: PartitionedTable,
    cluster,
    *,
    stats: PartitionStats | None = None,
    on_fragment: Callable[[int, np.ndarray], object] | None = None,
    optimized: bool = True,
):
    """Execute one shared logical plan over the partitioned table.

    Filter plans return the per-node fragment results in node order: the
    local row positions satisfying the predicate, or — when
    ``on_fragment(node_id, local_rows)`` is given — whatever that consumer
    computes *on the node* from them (it runs inside the dispatched work,
    so its cost is charged to the node, not the driver).  Aggregate plans
    are reduced on the driver and return ``(group_keys, values)``.

    With ``optimized=False`` the synopsis pruning is disabled (every
    partition is scanned) — the fragments then reproduce the seed's
    evaluate-everywhere behaviour, which the benchmarks use as baseline.
    With the ``REPRO_VERIFY_PLANS`` debug flag set, the plan is statically
    typechecked against the partitions' dtypes before dispatch
    (:mod:`repro.plan.verify`).
    """
    if table.partitions:
        maybe_verify_plan(plan, {
            table.name: {name: column.dtype
                         for name, column in table.partitions[0].items()}
        })
    aggregate, predicates = _parse_plan(plan, table)
    ordered = ordered_conjuncts(predicates, table.global_stats)
    conjuncts = [expression for expression, _class, _selectivity in ordered]
    keep = [
        not (optimized and conjuncts
             and any(expression_skips_partition(c, synopsis) for c in conjuncts))
        for synopsis in table.synopses
    ]

    def make_work(node_id: int):
        partition = table.partitions[node_id]
        scan = keep[node_id]

        def work(_node: int):
            if not scan:
                local_rows = np.empty(0, dtype=np.int64)
            elif not conjuncts:
                local_rows = np.arange(len(next(iter(partition.values()))), dtype=np.int64)
            else:
                mask = None
                for conjunct in conjuncts:
                    verdict = np.asarray(conjunct.evaluate(partition), dtype=bool)
                    mask = verdict if mask is None else mask & verdict
                    if not mask.any():
                        break
                local_rows = np.flatnonzero(mask)
            if isinstance(aggregate, ApproxAggregate):
                return _partial_sketch(partition, aggregate, local_rows), len(local_rows)
            if aggregate is not None:
                return _partial_aggregate(partition, aggregate, local_rows), len(local_rows)
            if on_fragment is not None:
                return on_fragment(_node, local_rows), len(local_rows)
            return local_rows, len(local_rows)

        return work

    result = cluster.run_on_nodes([make_work(node_id) for node_id in range(len(keep))])
    if stats is not None:
        stats.partitions_scanned += sum(1 for flag in keep if flag)
        stats.partitions_skipped += sum(1 for flag in keep if not flag)
        stats.rows_kept += sum(kept for _output, kept in result.outputs)
    outputs = [output for output, _kept in result.outputs]
    if isinstance(aggregate, ApproxAggregate):
        return _reduce_sketches(outputs, aggregate)
    if aggregate is not None:
        return _reduce_aggregate(outputs, aggregate.function)
    return outputs


# --------------------------------------------------------------------------- #
# Driver-side merge / reduce
# --------------------------------------------------------------------------- #

def _partial_aggregate(partition: Mapping[str, np.ndarray], aggregate: Aggregate,
                       local_rows: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One node's (group keys, partial sums, partial counts)."""
    keys = np.asarray(partition[aggregate.group_by])[local_rows]
    values = np.asarray(partition[aggregate.value])[local_rows]
    unique, inverse = np.unique(keys, return_inverse=True)
    sums = np.bincount(inverse, weights=values, minlength=len(unique))
    counts = np.bincount(inverse, minlength=len(unique))
    return unique, sums, counts


def _partial_sketch(partition: Mapping[str, np.ndarray], approx: ApproxAggregate,
                    local_rows: np.ndarray):
    """One node's mergeable sketch state over its surviving rows.

    Runs inside the dispatched ``work()`` closure, so sketch construction
    is charged to the node; only the fixed-size state (HLL register array
    or t-digest centroid arrays) travels back to the driver.
    """
    values = np.asarray(partition[approx.value])[local_rows]
    if approx.kind == "approx_distinct":
        return HyperLogLog().add_array(values).registers
    digest = TDigest().add_array(values)
    return digest.means, digest.weights


def _reduce_sketches(partials: Sequence, approx: ApproxAggregate):
    """Merge per-node sketch partials driver-side → :class:`ApproxResult`.

    HLL merges by elementwise register maximum and the t-digest by
    centroid pooling, so the reduced sketch is identical to one built in
    a single pass over the concatenated partitions — regardless of node
    count or arrival order.
    """
    if approx.kind == "approx_distinct":
        merged = HyperLogLog()
        for registers in partials:
            merged = merged.merge(HyperLogLog(registers=registers))
        return merged.result(approx.confidence)
    merged = TDigest()
    for means, weights in partials:
        merged = merged.merge(TDigest(means=means, weights=weights))
    return merged.result(approx.quantile, approx.confidence)


def _reduce_aggregate(partials: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
                      function: str) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-node partial aggregates into the final (keys, values)."""
    keys = np.concatenate([unique for unique, _s, _c in partials]) if partials else np.empty(0)
    if len(keys) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    merged, positions = np.unique(keys, return_inverse=True)
    sums = np.zeros(len(merged))
    counts = np.zeros(len(merged), dtype=np.int64)
    offset = 0
    for unique, partial_sums, partial_counts in partials:
        span = positions[offset:offset + len(unique)]
        np.add.at(sums, span, partial_sums)
        np.add.at(counts, span, partial_counts)
        offset += len(unique)
    if function == "sum":
        return merged, sums
    if function == "count":
        return merged, counts.astype(np.float64)
    if function == "mean":
        return merged, sums / np.maximum(counts, 1)
    raise ValueError(f"unsupported aggregate function {function!r}")


def reduce_partial_sums(partials: Sequence[tuple[np.ndarray, int]]) -> tuple[np.ndarray, int]:
    """Reduce per-node ``(vector_sum, row_count)`` partials on the driver.

    The statistics query's merge stage: per-node sums of the sampled
    expression rows become one total vector plus the global row count.
    """
    totals = np.sum([np.asarray(sums) for sums, _count in partials], axis=0)
    count = sum(int(c) for _sums, c in partials)
    return totals, count


def merge_gathered(blocks: Sequence[np.ndarray], n_columns: int) -> np.ndarray:
    """Vstack gathered per-node blocks, tolerating empty fragments."""
    stackable = [np.asarray(block) for block in blocks if np.asarray(block).size]
    if not stackable:
        return np.empty((0, n_columns))
    return np.vstack(stackable)
