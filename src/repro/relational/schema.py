"""Typed schemas for the row-store engine.

A :class:`Schema` is an ordered list of named, typed :class:`Column` objects.
Schemas validate and coerce incoming tuples, resolve column names to
positions for the operators, and know how to combine themselves for joins
and projections.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence


class ColumnType(enum.Enum):
    """The column types the engine supports."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    def coerce(self, value):
        """Coerce a Python value to this column type.

        Raises:
            TypeError: if the value cannot be represented in this type.
        """
        if value is None:
            return None
        try:
            if self is ColumnType.INT:
                return int(value)
            if self is ColumnType.FLOAT:
                return float(value)
            if self is ColumnType.BOOL:
                return bool(value)
            return str(value)
        except (TypeError, ValueError) as exc:
            raise TypeError(f"cannot coerce {value!r} to {self.value}") from exc

    @property
    def struct_format(self) -> str:
        """The ``struct`` format character used by the page serialiser."""
        if self is ColumnType.INT:
            return "q"
        if self is ColumnType.FLOAT:
            return "d"
        if self is ColumnType.BOOL:
            return "?"
        return "s"  # variable length, handled specially


@dataclass(frozen=True)
class Column:
    """One named, typed column."""

    name: str
    type: ColumnType

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name must be non-empty")

    def renamed(self, name: str) -> "Column":
        return Column(name=name, type=self.type)


class Schema:
    """An ordered collection of columns with fast name → index lookup."""

    def __init__(self, columns: Sequence[Column]):
        self._columns = tuple(columns)
        names = [column.name for column in self._columns]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate column names in schema: {duplicates}")
        self._index = {column.name: i for i, column in enumerate(self._columns)}

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[str, ColumnType]]) -> "Schema":
        """Build a schema from ``(name, type)`` pairs."""
        return cls([Column(name, column_type) for name, column_type in pairs])

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self):
        return iter(self._columns)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self._columns == other._columns

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name}:{c.type.value}" for c in self._columns)
        return f"Schema({inner})"

    # -- lookups ---------------------------------------------------------------

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self._columns)

    def has_column(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Return the position of column ``name``.

        Raises:
            KeyError: if the schema has no such column.
        """
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r} in schema with columns {list(self.names)}"
            ) from None

    def column(self, name: str) -> Column:
        return self._columns[self.index_of(name)]

    def type_of(self, name: str) -> ColumnType:
        return self.column(name).type

    # -- row handling ----------------------------------------------------------

    def coerce_row(self, row: Sequence) -> tuple:
        """Validate and coerce one row to this schema.

        Raises:
            ValueError: if the row has the wrong arity.
            TypeError: if a value cannot be coerced to its column type.
        """
        if len(row) != len(self._columns):
            raise ValueError(
                f"row has {len(row)} values but schema has {len(self._columns)} columns"
            )
        return tuple(
            column.type.coerce(value) for column, value in zip(self._columns, row, strict=True)
        )

    # -- derivation ------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a schema containing only ``names``, in the given order."""
        return Schema([self.column(name) for name in names])

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a schema with columns renamed per ``mapping``."""
        return Schema(
            [
                column.renamed(mapping.get(column.name, column.name))
                for column in self._columns
            ]
        )

    def prefixed(self, prefix: str) -> "Schema":
        """Return a schema with every column name prefixed (``prefix.name``)."""
        return Schema(
            [column.renamed(f"{prefix}.{column.name}") for column in self._columns]
        )

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (used by joins).

        Columns whose names collide get the suffix ``_right`` on the right
        side, mirroring what most SQL engines do for ``SELECT *`` over a
        join with duplicate names.
        """
        left_names = set(self.names)
        right_columns = []
        for column in other.columns:
            if column.name in left_names:
                right_columns.append(column.renamed(f"{column.name}_right"))
            else:
                right_columns.append(column)
        return Schema(list(self._columns) + right_columns)
