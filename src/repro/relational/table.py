"""Heap-backed tables for the row store."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.relational.schema import Column, ColumnType, Schema
from repro.relational.storage import DEFAULT_PAGE_SIZE, HeapFile


class HeapTable:
    """A named table stored in a slotted-page heap file.

    Rows are type-checked and coerced against the table's schema on insert
    and deserialised on every scan — the per-tuple cost profile of a classic
    row store.
    """

    def __init__(self, name: str, schema: Schema, page_size: int = DEFAULT_PAGE_SIZE):
        if not name:
            raise ValueError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._heap = HeapFile(schema, page_size=page_size)

    # -- stats -----------------------------------------------------------------

    def __len__(self) -> int:
        return self._heap.row_count

    @property
    def row_count(self) -> int:
        return self._heap.row_count

    @property
    def page_count(self) -> int:
        return self._heap.page_count

    @property
    def size_bytes(self) -> int:
        return self._heap.size_bytes

    def __repr__(self) -> str:
        return f"HeapTable({self.name!r}, rows={self.row_count}, pages={self.page_count})"

    # -- mutation ----------------------------------------------------------------

    def insert(self, row: Sequence) -> None:
        """Insert one row (coerced against the schema)."""
        self._heap.insert(self.schema.coerce_row(row))

    def insert_many(self, rows: Iterable[Sequence]) -> int:
        """Bulk insert; returns the number of rows inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def load_array(self, array: np.ndarray) -> int:
        """Bulk load a 2-D numpy array whose columns match the schema order.

        Values are converted per the schema (so integer-typed columns stored
        as floats in the generator output are narrowed correctly).
        """
        array = np.asarray(array)
        if array.ndim != 2 or array.shape[1] != len(self.schema):
            raise ValueError(
                f"array of shape {array.shape} does not match schema of "
                f"{len(self.schema)} columns"
            )
        return self.insert_many(map(tuple, array.tolist()))

    def truncate(self) -> None:
        """Remove all rows."""
        self._heap.clear()

    # -- access ------------------------------------------------------------------

    def scan(self) -> Iterator[tuple]:
        """Sequential scan over all rows."""
        return self._heap.scan()

    def column_values(self, name: str) -> list:
        """Materialise a single column (used by tests and loaders)."""
        index = self.schema.index_of(name)
        return [row[index] for row in self.scan()]

    def to_rows(self) -> list[tuple]:
        """Materialise the whole table as a list of tuples."""
        return list(self.scan())


def table_from_arrays(
    name: str,
    columns: Sequence[tuple[str, ColumnType, np.ndarray]],
    page_size: int = DEFAULT_PAGE_SIZE,
) -> HeapTable:
    """Build a heap table from parallel (name, type, values) column arrays."""
    if not columns:
        raise ValueError("need at least one column")
    lengths = {len(values) for _, _, values in columns}
    if len(lengths) != 1:
        raise ValueError(f"column arrays have mismatched lengths: {sorted(lengths)}")
    schema = Schema([Column(column_name, column_type) for column_name, column_type, _ in columns])
    table = HeapTable(name, schema, page_size=page_size)
    arrays = [values for _, _, values in columns]
    for row in zip(*arrays, strict=True):
        table.insert(row)
    return table
