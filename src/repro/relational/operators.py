"""Volcano-style physical operators for the row store.

Every operator is an iterator over row tuples that exposes its output
:class:`~repro.relational.schema.Schema`.  Operators compose into pipelines;
blocking operators (hash join build side, sort, aggregation) materialise
their input, streaming operators (scan, filter, project, limit) do not.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.relational.expressions import Expression
from repro.relational.schema import Column, ColumnType, Schema
from repro.relational.table import HeapTable


class Operator:
    """Base class: an iterable of row tuples with a known output schema."""

    output_schema: Schema

    def __iter__(self) -> Iterator[tuple]:
        raise NotImplementedError

    def rows(self) -> list[tuple]:
        """Materialise the operator's full output."""
        return list(self)


class SeqScan(Operator):
    """Sequential scan of a heap table."""

    def __init__(self, table: HeapTable):
        self.table = table
        self.output_schema = table.schema

    def __iter__(self) -> Iterator[tuple]:
        return self.table.scan()


class RowSource(Operator):
    """Adapter exposing an in-memory list of rows as an operator."""

    def __init__(self, rows: Iterable[tuple], schema: Schema):
        self._rows = list(rows)
        self.output_schema = schema

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)


class Filter(Operator):
    """Row-at-a-time selection."""

    def __init__(self, child: Operator, predicate: Expression):
        self.child = child
        self.predicate = predicate
        self.output_schema = child.output_schema
        self._bound = predicate.bind(child.output_schema)

    def __iter__(self) -> Iterator[tuple]:
        bound = self._bound
        for row in self.child:
            if bound(row):
                yield row


class Project(Operator):
    """Projection to a subset (or expression list) of columns."""

    def __init__(self, child: Operator, columns: Sequence[str]):
        self.child = child
        self.columns = list(columns)
        self.output_schema = child.output_schema.project(self.columns)
        self._indices = [child.output_schema.index_of(name) for name in self.columns]

    def __iter__(self) -> Iterator[tuple]:
        indices = self._indices
        for row in self.child:
            yield tuple(row[i] for i in indices)


class Compute(Operator):
    """Append a computed column evaluated from an expression."""

    def __init__(self, child: Operator, name: str, expression: Expression,
                 column_type: ColumnType = ColumnType.FLOAT):
        self.child = child
        self.expression = expression
        self.output_schema = Schema(
            list(child.output_schema.columns) + [Column(name, column_type)]
        )
        self._bound = expression.bind(child.output_schema)

    def __iter__(self) -> Iterator[tuple]:
        bound = self._bound
        for row in self.child:
            yield row + (bound(row),)


class Limit(Operator):
    """Stop after ``n`` rows."""

    def __init__(self, child: Operator, n: int):
        if n < 0:
            raise ValueError("limit must be non-negative")
        self.child = child
        self.n = n
        self.output_schema = child.output_schema

    def __iter__(self) -> Iterator[tuple]:
        count = 0
        for row in self.child:
            if count >= self.n:
                return
            yield row
            count += 1


class HashJoin(Operator):
    """Equi-join implemented as a classic build/probe hash join.

    The smaller input should be the build (left) side; the planner takes
    care of that using table row counts.
    """

    def __init__(self, build: Operator, probe: Operator,
                 build_key: str, probe_key: str):
        self.build = build
        self.probe = probe
        self.build_key = build_key
        self.probe_key = probe_key
        self.output_schema = build.output_schema.concat(probe.output_schema)
        self._build_index = build.output_schema.index_of(build_key)
        self._probe_index = probe.output_schema.index_of(probe_key)

    def __iter__(self) -> Iterator[tuple]:
        hash_table: dict[object, list[tuple]] = {}
        build_index = self._build_index
        for row in self.build:
            hash_table.setdefault(row[build_index], []).append(row)
        probe_index = self._probe_index
        for row in self.probe:
            matches = hash_table.get(row[probe_index])
            if not matches:
                continue
            for build_row in matches:
                yield build_row + row


class NestedLoopJoin(Operator):
    """Join on an arbitrary predicate (used when no equi-key is available)."""

    def __init__(self, left: Operator, right: Operator, predicate: Expression):
        self.left = left
        self.right = right
        self.predicate = predicate
        self.output_schema = left.output_schema.concat(right.output_schema)
        self._bound = predicate.bind(self.output_schema)

    def __iter__(self) -> Iterator[tuple]:
        right_rows = list(self.right)
        bound = self._bound
        for left_row in self.left:
            for right_row in right_rows:
                combined = left_row + right_row
                if bound(combined):
                    yield combined


class Sort(Operator):
    """Full in-memory sort on one or more key columns."""

    def __init__(self, child: Operator, keys: Sequence[str], descending: bool = False):
        self.child = child
        self.keys = list(keys)
        self.descending = descending
        self.output_schema = child.output_schema
        self._indices = [child.output_schema.index_of(k) for k in self.keys]

    def __iter__(self) -> Iterator[tuple]:
        indices = self._indices
        rows = list(self.child)
        rows.sort(key=lambda row: tuple(row[i] for i in indices), reverse=self.descending)
        return iter(rows)


#: Aggregate function name -> (initial value factory, step, finalise)
_AGGREGATES: dict[str, tuple[Callable, Callable, Callable]] = {
    "count": (lambda: 0, lambda acc, v: acc + 1, lambda acc: acc),
    "sum": (lambda: 0.0, lambda acc, v: acc + v, lambda acc: acc),
    "min": (lambda: None, lambda acc, v: v if acc is None or v < acc else acc, lambda acc: acc),
    "max": (lambda: None, lambda acc, v: v if acc is None or v > acc else acc, lambda acc: acc),
    "avg": (
        lambda: (0.0, 0),
        lambda acc, v: (acc[0] + v, acc[1] + 1),
        lambda acc: acc[0] / acc[1] if acc[1] else None,
    ),
}


class HashAggregate(Operator):
    """Hash-based GROUP BY with the standard SQL aggregates.

    Args:
        child: input operator.
        group_by: grouping column names (may be empty for a global aggregate).
        aggregates: list of ``(function, column, output_name)`` triples where
            ``function`` is one of count/sum/min/max/avg.
    """

    def __init__(self, child: Operator, group_by: Sequence[str],
                 aggregates: Sequence[tuple[str, str, str]]):
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        for function, _, _ in self.aggregates:
            if function not in _AGGREGATES:
                raise ValueError(f"unknown aggregate function {function!r}")

        input_schema = child.output_schema
        self._group_indices = [input_schema.index_of(name) for name in self.group_by]
        self._value_indices = [
            input_schema.index_of(column) if function != "count" or column != "*" else 0
            for function, column, _ in self.aggregates
        ]

        output_columns = [input_schema.column(name) for name in self.group_by]
        for function, _column, output_name in self.aggregates:
            if function == "count":
                output_columns.append(Column(output_name, ColumnType.INT))
            else:
                output_columns.append(Column(output_name, ColumnType.FLOAT))
        self.output_schema = Schema(output_columns)

    def __iter__(self) -> Iterator[tuple]:
        groups: dict[tuple, list] = {}
        specs = [(_AGGREGATES[function], value_index)
                 for (function, _, _), value_index in zip(self.aggregates, self._value_indices, strict=True)]
        group_indices = self._group_indices
        for row in self.child:
            key = tuple(row[i] for i in group_indices)
            state = groups.get(key)
            if state is None:
                state = [initial() for (initial, _, _), _ in specs]
                groups[key] = state
            for position, ((_, step, _), value_index) in enumerate(specs):
                state[position] = step(state[position], row[value_index])
        for key, state in groups.items():
            finals = tuple(
                finalise(state[position])
                for position, ((_, _, finalise), _) in enumerate(specs)
            )
            yield key + finals


class Materialize(Operator):
    """Materialise a child operator once so it can be iterated repeatedly."""

    def __init__(self, child: Operator):
        self.child = child
        self.output_schema = child.output_schema
        self._cache: list[tuple] | None = None

    def __iter__(self) -> Iterator[tuple]:
        if self._cache is None:
            self._cache = list(self.child)
        return iter(self._cache)
