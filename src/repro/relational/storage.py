"""Slotted-page heap storage for the row store.

Rows are serialised into fixed-size pages using ``struct`` packing — the
same layout idea as a textbook heap file.  Pages are byte buffers held in
memory (the benchmark datasets fit in RAM, as in the paper's single-node
configuration), but every insert and scan really does pay the
pack/unpack cost, which is what gives the row store its characteristic
per-tuple overhead relative to the column store's vectorised reads.

Layout of a page::

    [ n_rows:uint32 ][ offset_0:uint32 ... offset_{n-1}:uint32 ][ ... row payloads ... ]

Row payload: for each column, INT/FLOAT/BOOL use fixed-width struct codes;
STRING is a uint32 length prefix followed by UTF-8 bytes.  NULLs are encoded
with a per-row presence bitmap.
"""

from __future__ import annotations

import struct
from typing import Iterator, Sequence

from repro.relational.schema import ColumnType, Schema

#: Default page size in bytes.  8 KiB matches Postgres' default block size.
DEFAULT_PAGE_SIZE = 8192

_HEADER = struct.Struct("<I")
_OFFSET = struct.Struct("<I")
_LENGTH = struct.Struct("<I")
_FIXED = {
    ColumnType.INT: struct.Struct("<q"),
    ColumnType.FLOAT: struct.Struct("<d"),
    ColumnType.BOOL: struct.Struct("<?"),
}


def _pack_row(row: Sequence, schema: Schema) -> bytes:
    """Serialise one (already coerced) row to bytes."""
    parts = []
    null_bitmap = 0
    for index, (_column, value) in enumerate(zip(schema.columns, row, strict=True)):
        if value is None:
            null_bitmap |= 1 << index
    parts.append(_LENGTH.pack(null_bitmap))
    for column, value in zip(schema.columns, row, strict=True):
        if value is None:
            continue
        if column.type is ColumnType.STRING:
            encoded = str(value).encode("utf-8")
            parts.append(_LENGTH.pack(len(encoded)))
            parts.append(encoded)
        else:
            parts.append(_FIXED[column.type].pack(value))
    return b"".join(parts)


def _unpack_row(buffer: bytes, offset: int, schema: Schema) -> tuple[tuple, int]:
    """Deserialise one row starting at ``offset``; returns (row, next_offset)."""
    (null_bitmap,) = _LENGTH.unpack_from(buffer, offset)
    offset += _LENGTH.size
    values = []
    for index, column in enumerate(schema.columns):
        if null_bitmap & (1 << index):
            values.append(None)
            continue
        if column.type is ColumnType.STRING:
            (length,) = _LENGTH.unpack_from(buffer, offset)
            offset += _LENGTH.size
            values.append(buffer[offset:offset + length].decode("utf-8"))
            offset += length
        else:
            codec = _FIXED[column.type]
            (value,) = codec.unpack_from(buffer, offset)
            offset += codec.size
            values.append(value)
    return tuple(values), offset


class Page:
    """One slotted page holding a variable number of serialised rows."""

    def __init__(self, schema: Schema, page_size: int = DEFAULT_PAGE_SIZE):
        self._schema = schema
        self._page_size = page_size
        self._payloads: list[bytes] = []
        self._used = _HEADER.size

    def __len__(self) -> int:
        return len(self._payloads)

    @property
    def used_bytes(self) -> int:
        return self._used

    def try_insert(self, row: Sequence) -> bool:
        """Insert a coerced row; returns False when the page is full."""
        payload = _pack_row(row, self._schema)
        needed = len(payload) + _OFFSET.size
        if self._used + needed > self._page_size and self._payloads:
            return False
        self._payloads.append(payload)
        self._used += needed
        return True

    def rows(self) -> Iterator[tuple]:
        """Iterate the rows stored in this page, deserialising each one."""
        buffer = self.to_bytes()
        (count,) = _HEADER.unpack_from(buffer, 0)
        cursor = _HEADER.size + count * _OFFSET.size
        for _ in range(count):
            row, cursor = _unpack_row(buffer, cursor, self._schema)
            yield row

    def to_bytes(self) -> bytes:
        """Serialise the whole page (header + offset array + payloads)."""
        parts = [_HEADER.pack(len(self._payloads))]
        cursor = _HEADER.size + len(self._payloads) * _OFFSET.size
        for payload in self._payloads:
            parts.append(_OFFSET.pack(cursor))
            cursor += len(payload)
        parts.extend(self._payloads)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, buffer: bytes, schema: Schema,
                   page_size: int = DEFAULT_PAGE_SIZE) -> "Page":
        """Rebuild a page object from its serialised form."""
        page = cls(schema, page_size=page_size)
        (count,) = _HEADER.unpack_from(buffer, 0)
        cursor = _HEADER.size + count * _OFFSET.size
        for _ in range(count):
            row, next_cursor = _unpack_row(buffer, cursor, schema)
            page._payloads.append(buffer[cursor:next_cursor])
            page._used += (next_cursor - cursor) + _OFFSET.size
            cursor = next_cursor
        return page


class HeapFile:
    """An append-only collection of pages for one table."""

    def __init__(self, schema: Schema, page_size: int = DEFAULT_PAGE_SIZE):
        self._schema = schema
        self._page_size = page_size
        self._pages: list[Page] = []
        self._row_count = 0

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def size_bytes(self) -> int:
        """Approximate on-"disk" size of the heap."""
        return sum(page.used_bytes for page in self._pages)

    def insert(self, row: Sequence) -> None:
        """Append one coerced row, starting a new page when the current is full."""
        if not self._pages or not self._pages[-1].try_insert(row):
            page = Page(self._schema, page_size=self._page_size)
            if not page.try_insert(row):
                raise ValueError("row is larger than a single page")
            self._pages.append(page)
        self._row_count += 1

    def scan(self) -> Iterator[tuple]:
        """Full sequential scan in insertion order."""
        for page in self._pages:
            yield from page.rows()

    def clear(self) -> None:
        self._pages.clear()
        self._row_count = 0
