"""A row-store relational engine (the benchmark's Postgres analog).

This package implements a small but complete single-node RDBMS in Python:

* typed schemas and a catalog (:mod:`repro.relational.schema`,
  :mod:`repro.relational.catalog`),
* slotted-page heap storage with binary tuple serialisation
  (:mod:`repro.relational.storage`, :mod:`repro.relational.table`),
* an expression language for predicates and projections
  (:mod:`repro.relational.expressions`),
* Volcano-style iterator operators — sequential scan, filter, projection,
  hash join, nested-loop join, sort, hash aggregation, limit
  (:mod:`repro.relational.operators`),
* a logical planner with predicate pushdown and join-strategy selection
  (:mod:`repro.relational.planner`) and a fluent query-builder facade
  (:mod:`repro.relational.query`),
* a UDF registry used by the Madlib-style in-database analytics adapter
  (:mod:`repro.relational.udf`).

The engine processes one Python tuple at a time through materialised pages,
which is exactly the execution profile the paper's row-store results
reflect: fine constant factors for data management, but every analytics
operation either leaves the engine (export to R) or runs as an interpreted
UDF.
"""

from repro.relational.schema import Column, ColumnType, Schema
from repro.relational.table import HeapTable
from repro.relational.catalog import Database
from repro.relational.expressions import col, lit, and_, or_, not_
from repro.relational.query import Query
from repro.relational.udf import UdfRegistry, default_madlib_registry

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "HeapTable",
    "Database",
    "col",
    "lit",
    "and_",
    "or_",
    "not_",
    "Query",
    "UdfRegistry",
    "default_madlib_registry",
]
