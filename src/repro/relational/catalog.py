"""The database catalog: named tables plus the entry point for queries."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.relational.query import Query
from repro.relational.schema import Column, ColumnType, Schema
from repro.relational.table import HeapTable


class Database:
    """A single-node row-store database: a catalog of heap tables."""

    def __init__(self, name: str = "genbase"):
        self.name = name
        self._tables: dict[str, HeapTable] = {}

    # -- catalog management -------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[tuple[str, ColumnType]]) -> HeapTable:
        """Create a new table.

        Raises:
            ValueError: if the table already exists.
        """
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        schema = Schema([Column(column_name, column_type) for column_name, column_type in columns])
        table = HeapTable(name, schema)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table; missing tables raise ``KeyError``."""
        if name not in self._tables:
            raise KeyError(f"no table named {name!r}")
        del self._tables[name]

    def table(self, name: str) -> HeapTable:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "<none>"
            raise KeyError(f"no table named {name!r}; known tables: {known}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # -- data loading ---------------------------------------------------------------

    def insert(self, table_name: str, rows: Iterable[Sequence]) -> int:
        """Insert rows into an existing table; returns the count inserted."""
        return self.table(table_name).insert_many(rows)

    def load_array(self, table_name: str, array: np.ndarray) -> int:
        """Bulk load a numpy array whose columns match the table schema."""
        return self.table(table_name).load_array(array)

    # -- querying ---------------------------------------------------------------------

    def query(self, table_name: str) -> Query:
        """Start a fluent query from a base table."""
        return Query.scan(self.table(table_name))

    # -- stats --------------------------------------------------------------------------

    def total_rows(self) -> int:
        return sum(table.row_count for table in self._tables.values())

    def total_bytes(self) -> int:
        return sum(table.size_bytes for table in self._tables.values())

    def describe(self) -> dict[str, dict]:
        """Summarise every table (row count, pages, bytes)."""
        return {
            name: {
                "rows": table.row_count,
                "pages": table.page_count,
                "bytes": table.size_bytes,
                "columns": list(table.schema.names),
            }
            for name, table in sorted(self._tables.items())
        }
