"""Logical plans and a rule-based optimizer for the row store.

Predicates are the *shared* declarative AST from
:mod:`repro.plan.expressions` — the same trees the column store's planner
pushes into its compression encodings.  The row-store planner stays
intentionally simple — about what the paper credits Hive with
("rudimentary query optimization") plus the rules that matter most for
the GenBase queries:

* **conjunction splitting + predicate pushdown** — a filter's conjuncts
  are split (:func:`repro.plan.expressions.split_conjuncts`) and each one
  referencing only one side of a join is pushed below it;
* **build-side selection** — hash joins build on the smaller input, using
  table cardinalities from the catalog.

Logical plans are small immutable node trees; ``plan.optimize()`` applies
the rewrite rules and ``plan.to_physical()`` produces the Volcano operators
from :mod:`repro.relational.operators`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.plan.expressions import Expression, and_, is_total, split_conjuncts
from repro.plan.optimizer import classify, estimate_selectivity
from repro.relational import operators as ops
from repro.relational.schema import Column, ColumnType, Schema
from repro.relational.table import HeapTable


class LogicalNode:
    """Base class for logical plan nodes."""

    def output_schema(self) -> Schema:
        raise NotImplementedError

    def to_physical(self) -> ops.Operator:
        raise NotImplementedError

    def children(self) -> tuple["LogicalNode", ...]:
        return ()

    def estimated_rows(self) -> int:
        """Crude cardinality estimate used for join build-side selection."""
        raise NotImplementedError


@dataclass(frozen=True)
class ScanNode(LogicalNode):
    """Scan of a base table."""

    table: HeapTable

    def output_schema(self) -> Schema:
        return self.table.schema

    def to_physical(self) -> ops.Operator:
        return ops.SeqScan(self.table)

    def estimated_rows(self) -> int:
        return self.table.row_count


# eq=False: dataclass equality would delegate to Expression.__eq__, which
# returns a comparison AST node (always truthy), making any two FilterNodes
# with equal children compare equal.  Identity semantics are correct here.
@dataclass(frozen=True, eq=False)
class FilterNode(LogicalNode):
    """Selection."""

    child: LogicalNode
    predicate: Expression

    def output_schema(self) -> Schema:
        return self.child.output_schema()

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def to_physical(self) -> ops.Operator:
        return ops.Filter(self.child.to_physical(), self.predicate)

    def estimated_rows(self) -> int:
        # Structural estimate through the shared classifier: each conjunct
        # contributes its shape's selectivity (equality 1/10, membership
        # k/10, range/opaque the textbook 1/3) — the row store keeps no
        # per-column statistics, but the predicate's *shape* is free.
        fraction = 1.0
        for conjunct in split_conjuncts(self.predicate):
            fraction *= estimate_selectivity(classify(conjunct), None)
        return max(1, int(self.child.estimated_rows() * fraction))


@dataclass(frozen=True)
class ProjectNode(LogicalNode):
    """Projection to named columns."""

    child: LogicalNode
    columns: tuple[str, ...]

    def output_schema(self) -> Schema:
        return self.child.output_schema().project(list(self.columns))

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def to_physical(self) -> ops.Operator:
        return ops.Project(self.child.to_physical(), list(self.columns))

    def estimated_rows(self) -> int:
        return self.child.estimated_rows()


@dataclass(frozen=True)
class JoinNode(LogicalNode):
    """Equi-join between two inputs.

    ``build_side`` mirrors the shared plan layer's annotation
    (:func:`repro.plan.optimizer.choose_join_build_side`): when a shared
    optimized plan is lowered onto the row store its statistics-informed
    choice is honoured directly; ``"auto"`` falls back to this planner's
    own selectivity-aware cardinality estimates.
    """

    left: LogicalNode
    right: LogicalNode
    left_key: str
    right_key: str
    build_side: str = "auto"

    def output_schema(self) -> Schema:
        return self.left.output_schema().concat(self.right.output_schema())

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def to_physical(self) -> ops.Operator:
        # Build on the smaller side; output column order must stay
        # (left columns, right columns), so when we build on the right we
        # reorder the combined row accordingly via a projection.
        if self.build_side == "auto":
            build_left = self.left.estimated_rows() <= self.right.estimated_rows()
        else:
            build_left = self.build_side == "left"
        left_physical = self.left.to_physical()
        right_physical = self.right.to_physical()
        if build_left:
            return ops.HashJoin(left_physical, right_physical,
                                self.left_key, self.right_key)
        joined = ops.HashJoin(right_physical, left_physical,
                              self.right_key, self.left_key)
        # Reorder columns back to (left, right) so downstream name resolution
        # is independent of the build-side decision.
        target_schema = self.output_schema()
        return _ReorderToSchema(joined, target_schema)

    def estimated_rows(self) -> int:
        # Assume a foreign-key style join: output ~= the larger input.
        return max(self.left.estimated_rows(), self.right.estimated_rows())


class _ReorderToSchema(ops.Operator):
    """Reorder a join output's columns to match a target schema by name."""

    def __init__(self, child: ops.Operator, target: Schema):
        self.child = child
        self.output_schema = target
        child_names = list(child.output_schema.names)
        # The swapped join produces (right columns, left columns) with the
        # same collision-suffix convention; map target names positionally.
        self._indices = []
        used: set[int] = set()
        for name in target.names:
            base = name[:-len("_right")] if name.endswith("_right") else name
            index = None
            for candidate in (name, base):
                for position, child_name in enumerate(child_names):
                    child_base = (
                        child_name[:-len("_right")]
                        if child_name.endswith("_right") else child_name
                    )
                    if position in used:
                        continue
                    if child_name == candidate or child_base == candidate:
                        index = position
                        break
                if index is not None:
                    break
            if index is None:
                raise KeyError(f"cannot map join output column {name!r}")
            used.add(index)
            self._indices.append(index)

    def __iter__(self):
        indices = self._indices
        for row in self.child:
            yield tuple(row[i] for i in indices)


@dataclass(frozen=True)
class AggregateNode(LogicalNode):
    """Group-by aggregation."""

    child: LogicalNode
    group_by: tuple[str, ...]
    aggregates: tuple[tuple[str, str, str], ...]

    def output_schema(self) -> Schema:
        # Derived logically (mirroring HashAggregate's output): building the
        # physical operator tree just to read column names would make every
        # downstream Query verb pay O(plan) operator construction.
        input_schema = self.child.output_schema()
        columns = [input_schema.column(name) for name in self.group_by]
        for function, _column, output_name in self.aggregates:
            if function == "count":
                columns.append(Column(output_name, ColumnType.INT))
            else:
                columns.append(Column(output_name, ColumnType.FLOAT))
        return Schema(columns)

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def to_physical(self) -> ops.Operator:
        return ops.HashAggregate(
            self.child.to_physical(), list(self.group_by), list(self.aggregates)
        )

    def estimated_rows(self) -> int:
        return max(1, self.child.estimated_rows() // 10)


@dataclass(frozen=True)
class SortNode(LogicalNode):
    """Order-by."""

    child: LogicalNode
    keys: tuple[str, ...]
    descending: bool = False

    def output_schema(self) -> Schema:
        return self.child.output_schema()

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def to_physical(self) -> ops.Operator:
        return ops.Sort(self.child.to_physical(), list(self.keys), descending=self.descending)

    def estimated_rows(self) -> int:
        return self.child.estimated_rows()


@dataclass(frozen=True)
class LimitNode(LogicalNode):
    """Row-count limit."""

    child: LogicalNode
    n: int

    def output_schema(self) -> Schema:
        return self.child.output_schema()

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def to_physical(self) -> ops.Operator:
        return ops.Limit(self.child.to_physical(), self.n)

    def estimated_rows(self) -> int:
        return min(self.n, self.child.estimated_rows())


# --------------------------------------------------------------------------- #
# Optimizer
# --------------------------------------------------------------------------- #

def push_down_filters(node: LogicalNode) -> LogicalNode:
    """Push filters below joins when they reference only one side.

    Conjunctions are split first, so ``a_left & b_right`` pushes ``a`` to
    the left input and ``b`` to the right even though the whole predicate
    references both sides.  A conjunct split out of a larger predicate is
    only pushed when it is *total* (:func:`repro.plan.expressions.is_total`)
    — below the join it would run on rows the join eliminates, and a
    partial operation (division, an opaque callable) may blow up on them.
    A predicate the caller wrote as a single filter keeps its historical
    whole-predicate pushdown.
    """
    if isinstance(node, FilterNode):
        child = push_down_filters(node.child)
        if isinstance(child, JoinNode):
            left_names = set(child.left.output_schema().names)
            right_names = set(child.right.output_schema().names)
            push_left: list[Expression] = []
            push_right: list[Expression] = []
            keep: list[Expression] = []
            conjuncts = split_conjuncts(node.predicate)
            for conjunct in conjuncts:
                referenced = conjunct.columns_referenced()
                movable = len(conjuncts) == 1 or is_total(conjunct)
                if not movable:
                    keep.append(conjunct)
                elif referenced <= left_names:
                    push_left.append(conjunct)
                elif referenced <= right_names:
                    push_right.append(conjunct)
                else:
                    keep.append(conjunct)
            if push_left or push_right:
                left = child.left
                right = child.right
                if push_left:
                    left = push_down_filters(FilterNode(left, and_(*push_left)))
                if push_right:
                    right = push_down_filters(FilterNode(right, and_(*push_right)))
                pushed = replace(child, left=left, right=right)
                if keep:
                    return FilterNode(pushed, and_(*keep))
                return pushed
        return FilterNode(child, node.predicate)
    if isinstance(node, ProjectNode):
        return ProjectNode(push_down_filters(node.child), node.columns)
    if isinstance(node, JoinNode):
        return replace(
            node,
            left=push_down_filters(node.left),
            right=push_down_filters(node.right),
        )
    if isinstance(node, (AggregateNode, SortNode, LimitNode)):
        return replace(node, child=push_down_filters(node.child))
    return node


def merge_adjacent_filters(node: LogicalNode) -> LogicalNode:
    """Combine stacked filters into one conjunction (fewer operator hops)."""
    if isinstance(node, FilterNode):
        child = merge_adjacent_filters(node.child)
        if isinstance(child, FilterNode):
            return FilterNode(child.child, and_(child.predicate, node.predicate))
        return FilterNode(child, node.predicate)
    if isinstance(node, ProjectNode):
        return ProjectNode(merge_adjacent_filters(node.child), node.columns)
    if isinstance(node, JoinNode):
        return replace(
            node,
            left=merge_adjacent_filters(node.left),
            right=merge_adjacent_filters(node.right),
        )
    if isinstance(node, (AggregateNode, SortNode, LimitNode)):
        return replace(node, child=merge_adjacent_filters(node.child))
    return node


def optimize(node: LogicalNode) -> LogicalNode:
    """Apply the rewrite rules in a fixed, deterministic order."""
    node = push_down_filters(node)
    node = merge_adjacent_filters(node)
    return node


@dataclass
class PlanExplanation:
    """A human-readable rendering of a logical plan (``Query.explain()``)."""

    lines: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        return "\n".join(self.lines)


def explain(node: LogicalNode, depth: int = 0,
            explanation: PlanExplanation | None = None) -> PlanExplanation:
    """Render a plan tree as indented text."""
    explanation = explanation or PlanExplanation()
    indent = "  " * depth
    if isinstance(node, ScanNode):
        explanation.lines.append(f"{indent}SeqScan {node.table.name} ({node.table.row_count} rows)")
    elif isinstance(node, FilterNode):
        explanation.lines.append(f"{indent}Filter {node.predicate!r}")
    elif isinstance(node, ProjectNode):
        explanation.lines.append(f"{indent}Project {list(node.columns)}")
    elif isinstance(node, JoinNode):
        explanation.lines.append(f"{indent}HashJoin {node.left_key} = {node.right_key}")
    elif isinstance(node, AggregateNode):
        explanation.lines.append(
            f"{indent}Aggregate group_by={list(node.group_by)} aggs={list(node.aggregates)}"
        )
    elif isinstance(node, SortNode):
        explanation.lines.append(f"{indent}Sort {list(node.keys)} desc={node.descending}")
    elif isinstance(node, LimitNode):
        explanation.lines.append(f"{indent}Limit {node.n}")
    else:
        explanation.lines.append(f"{indent}{type(node).__name__}")
    for child in node.children():
        explain(child, depth + 1, explanation)
    return explanation
