"""User-defined analytics functions for the row store (the Madlib analog).

Postgres on its own cannot run the GenBase analytics; the paper's
"Postgres + Madlib" configuration adds them as in-database UDFs — some
implemented in C++ (fast), others as SQL/plpython combinations (slow,
effectively interpreted).  This module reproduces that split:

* a :class:`UdfRegistry` that the engine adapters call *inside* the database
  process (so there is no export/reformat cost), and
* :func:`default_madlib_registry` which registers the GenBase analytics with
  the same fast/slow split Madlib has — linear regression and covariance run
  on the compiled tier (numpy/LAPACK here standing in for C++), while SVD
  and biclustering run on the interpreted tier
  (:mod:`repro.linalg.naive`), mirroring Madlib functions that "in effect
  simulate matrix computations in SQL and plpython".

The registry stores plain callables keyed by name; UDFs receive numpy
arrays that the adapter has already restructured from query output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.linalg import blas, naive
from repro.linalg.covariance import covariance_matrix
from repro.linalg.qr import linear_regression
from repro.linalg.wilcoxon import enrichment_analysis


@dataclass(frozen=True)
class Udf:
    """A registered user-defined function.

    Attributes:
        name: registry key.
        function: the callable.
        tier: "compiled" (C++-like, fast) or "interpreted" (plpython-like).
        description: one-line description shown in listings.
    """

    name: str
    function: Callable
    tier: str
    description: str = ""

    def __call__(self, *args, **kwargs):
        return self.function(*args, **kwargs)


class UdfRegistry:
    """A named collection of UDFs attached to a database."""

    def __init__(self):
        self._functions: dict[str, Udf] = {}

    def register(self, name: str, function: Callable, tier: str = "compiled",
                 description: str = "") -> Udf:
        """Register a function under ``name``.

        Raises:
            ValueError: on duplicate names or unknown tiers.
        """
        if name in self._functions:
            raise ValueError(f"UDF {name!r} is already registered")
        if tier not in ("compiled", "interpreted"):
            raise ValueError(f"unknown UDF tier {tier!r}")
        udf = Udf(name=name, function=function, tier=tier, description=description)
        self._functions[name] = udf
        return udf

    def get(self, name: str) -> Udf:
        try:
            return self._functions[name]
        except KeyError:
            known = ", ".join(sorted(self._functions)) or "<none>"
            raise KeyError(f"no UDF named {name!r}; registered: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)

    def call(self, name: str, *args, **kwargs):
        """Look up and invoke a UDF."""
        return self.get(name)(*args, **kwargs)


def _madlib_svd_interpreted(matrix: np.ndarray, k: int) -> np.ndarray:
    """SVD "simulated in SQL/plpython": naive power iteration, values only."""
    return naive.power_iteration_svd(matrix, k=k)


def _madlib_biclustering_missing(*_args, **_kwargs):
    """Madlib has no biclustering; raise the same way the paper treats it."""
    raise NotImplementedError(
        "the Madlib analytics library provides no biclustering function"
    )


def _madlib_enrichment_interpreted(scores: np.ndarray, membership: np.ndarray):
    """Enrichment in plpython: a per-term loop over the naive rank-sum test."""
    scores = np.asarray(scores, dtype=np.float64).ravel()
    membership = np.asarray(membership)
    p_values = []
    for term_index in range(membership.shape[1]):
        members = membership[:, term_index] != 0
        if not members.any() or members.all():
            p_values.append(1.0)
            continue
        p_values.append(
            naive.wilcoxon_rank_sum(scores[members], scores[~members])
        )
    return np.asarray(p_values)


def default_madlib_registry() -> UdfRegistry:
    """Build the UDF registry for the Postgres + Madlib configuration.

    The tier assignments follow the paper's description (Section 4.3):
    linear regression is one of the C++ functions ("tend to be faster than
    the corresponding functions in R"), SVD is one of the functions that
    "simulate matrix computations in SQL and plpython", and biclustering is
    simply missing from the library.
    """
    registry = UdfRegistry()
    registry.register(
        "linear_regression",
        lambda features, target: blas.linear_regression(features, target),
        tier="compiled",
        description="OLS via LAPACK QR (Madlib C++ tier)",
    )
    registry.register(
        "covariance",
        lambda matrix: covariance_matrix(matrix),
        tier="compiled",
        description="column covariance via GEMM (Madlib C++ tier)",
    )
    registry.register(
        "svd",
        _madlib_svd_interpreted,
        tier="interpreted",
        description="truncated SVD simulated in SQL/plpython (power iteration)",
    )
    registry.register(
        "biclustering",
        _madlib_biclustering_missing,
        tier="interpreted",
        description="not provided by Madlib (raises NotImplementedError)",
    )
    registry.register(
        "enrichment",
        _madlib_enrichment_interpreted,
        tier="interpreted",
        description="Wilcoxon enrichment looped in plpython (p-values only)",
    )
    return registry


def default_rlang_udf_registry() -> UdfRegistry:
    """Build the UDF registry for the column store + in-DB R configuration.

    The column store's UDF interface calls into the R environment, so every
    analytic runs on R's (BLAS-backed) tier — but through the per-call UDF
    interface, which the engine adapter charges a small invocation overhead
    for, reproducing the "tighter coupling ... in the UDF interface" benefit
    and its occasional glitches the paper mentions.
    """
    registry = UdfRegistry()
    registry.register(
        "linear_regression",
        lambda features, target: linear_regression(features, target, method="lapack"),
        tier="compiled",
        description="R lm() via in-DB UDF",
    )
    registry.register(
        "covariance",
        lambda matrix: covariance_matrix(matrix),
        tier="compiled",
        description="R cov() via in-DB UDF",
    )
    registry.register(
        "enrichment",
        lambda scores, membership: enrichment_analysis(scores, membership),
        tier="compiled",
        description="R wilcox.test() via in-DB UDF",
    )
    return registry
