"""Fluent query-builder facade over the logical planner.

This is the public query API of the row store::

    rows = (
        db.query("gene_metadata")
          .where(col("function") < lit(250))
          .join(db.query("microarray"), on=("gene_id", "gene_id"))
          .select("patient_id", "gene_id", "expression_value")
          .rows()
    )

Each call builds a logical plan node; ``rows()`` / ``run()`` optimizes the
plan (predicate pushdown, filter merging, join build-side selection) and
executes the resulting Volcano pipeline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.relational import planner
from repro.relational.expressions import Expression
from repro.relational.operators import Operator
from repro.relational.schema import Schema
from repro.relational.table import HeapTable


def _scanned_tables(node: planner.LogicalNode) -> list[str]:
    """Names of the base tables a plan reads (for error messages)."""
    if isinstance(node, planner.ScanNode):
        return [node.table.name]
    names: list[str] = []
    for child in node.children():
        names.extend(_scanned_tables(child))
    return names


class Query:
    """An immutable builder wrapping a logical plan node."""

    def __init__(self, node: planner.LogicalNode):
        self._node = node

    # -- construction -----------------------------------------------------------

    @classmethod
    def scan(cls, table: HeapTable) -> "Query":
        """Start a query from a base table."""
        return cls(planner.ScanNode(table))

    # -- validation ----------------------------------------------------------------

    def _check_columns(self, names: Sequence[str]) -> None:
        """Raise KeyError naming the column and table(s) for unknown columns.

        Every relational verb validates eagerly, so a typo surfaces at the
        call site instead of deep inside operator binding at execution time
        — mirroring the column store's behaviour.
        """
        available = self._node.output_schema().names
        known = set(available)
        for name in names:
            if name not in known:
                tables = _scanned_tables(self._node) or ["<derived>"]
                raise KeyError(
                    f"no column {name!r} in query over table(s) "
                    f"{', '.join(repr(t) for t in tables)}; has {list(available)}"
                )

    # -- relational verbs ---------------------------------------------------------

    def where(self, predicate: Expression) -> "Query":
        """Filter rows by a predicate expression."""
        self._check_columns(sorted(predicate.columns_referenced()))
        return Query(planner.FilterNode(self._node, predicate))

    def select(self, *columns: str) -> "Query":
        """Project to the named columns."""
        self._check_columns(columns)
        return Query(planner.ProjectNode(self._node, tuple(columns)))

    def join(self, other: "Query", on: tuple[str, str]) -> "Query":
        """Equi-join with another query; ``on`` is (left_key, right_key)."""
        left_key, right_key = on
        self._check_columns([left_key])
        other._check_columns([right_key])
        return Query(planner.JoinNode(self._node, other._node, left_key, right_key))

    def group_by(self, columns: Sequence[str],
                 aggregates: Sequence[tuple[str, str, str]]) -> "Query":
        """Group by ``columns`` computing ``(function, column, output_name)`` aggregates."""
        referenced = list(columns) + [
            column for _function, column, _name in aggregates if column != "*"
        ]
        self._check_columns(referenced)
        return Query(planner.AggregateNode(self._node, tuple(columns), tuple(aggregates)))

    def order_by(self, *keys: str, descending: bool = False) -> "Query":
        """Sort by the given key columns."""
        self._check_columns(keys)
        return Query(planner.SortNode(self._node, tuple(keys), descending))

    def limit(self, n: int) -> "Query":
        """Keep only the first ``n`` rows."""
        return Query(planner.LimitNode(self._node, n))

    # -- execution -----------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The output schema of the query."""
        return self._node.output_schema()

    def logical_plan(self) -> planner.LogicalNode:
        """Return the unoptimized logical plan (for tests/EXPLAIN)."""
        return self._node

    def physical_plan(self) -> Operator:
        """Optimize and lower to a physical operator tree."""
        return planner.optimize(self._node).to_physical()

    def explain(self) -> str:
        """Render the optimized logical plan as text."""
        return str(planner.explain(planner.optimize(self._node)))

    def rows(self) -> list[tuple]:
        """Execute the query and materialise all result rows."""
        return list(self.physical_plan())

    def run(self) -> "QueryResultSet":
        """Execute and wrap the result with its schema."""
        physical = self.physical_plan()
        return QueryResultSet(schema=physical.output_schema, rows=list(physical))

    def count(self) -> int:
        """Execute and count result rows without keeping them."""
        return sum(1 for _ in self.physical_plan())


class QueryResultSet:
    """Materialised query output: schema + row tuples."""

    def __init__(self, schema: Schema, rows: list[tuple]):
        self.schema = schema
        self._rows = rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    @property
    def rows(self) -> list[tuple]:
        return self._rows

    def column(self, name: str) -> list:
        """Extract one output column as a Python list."""
        index = self.schema.index_of(name)
        return [row[index] for row in self._rows]

    def to_array(self, columns: Sequence[str] | None = None) -> np.ndarray:
        """Convert (a projection of) the result to a float numpy array.

        This is the "restructure the information as a matrix" step the
        GenBase queries call for when the engine is relational.
        """
        if columns is None:
            columns = list(self.schema.names)
        indices = [self.schema.index_of(name) for name in columns]
        if not self._rows:
            return np.empty((0, len(indices)))
        return np.asarray(
            [[row[i] for i in indices] for row in self._rows], dtype=np.float64
        )

    def pivot(self, row_key: str, column_key: str, value: str) -> tuple[np.ndarray, list, list]:
        """Pivot a long-format result into a dense matrix.

        Args:
            row_key: column whose distinct values index matrix rows.
            column_key: column whose distinct values index matrix columns.
            value: column providing cell values.

        Returns:
            ``(matrix, row_labels, column_labels)`` with labels in first-seen
            order; missing combinations are filled with 0.0.
        """
        row_index = self.schema.index_of(row_key)
        column_index = self.schema.index_of(column_key)
        value_index = self.schema.index_of(value)

        row_labels: dict[object, int] = {}
        column_labels: dict[object, int] = {}
        triples = []
        for row in self._rows:
            r = row[row_index]
            c = row[column_index]
            if r not in row_labels:
                row_labels[r] = len(row_labels)
            if c not in column_labels:
                column_labels[c] = len(column_labels)
            triples.append((row_labels[r], column_labels[c], row[value_index]))

        matrix = np.zeros((len(row_labels), len(column_labels)), dtype=np.float64)
        for r, c, v in triples:
            matrix[r, c] = v
        return matrix, list(row_labels), list(column_labels)
