"""Execute shared logical plans (:mod:`repro.plan`) on the row store.

The column store runs shared plans through
:func:`repro.colstore.planner.run_plan`; this module is the row-store
counterpart, so one plan object — built once per GenBase query in
:mod:`repro.core.queries` — drives both architectures.  Lowering maps each
shared node onto the fluent :class:`~repro.relational.query.Query` builder
(Scan → ``db.query``, Filter → ``where``, Project → ``select``, Join →
``join`` + a projection enforcing the shared output convention of "left
columns, then right columns minus the right key"), and the terminals
return the same shapes as the column-store executor: ``Aggregate`` →
``(group_keys, aggregates)`` sorted by key, ``Pivot`` →
``(matrix, row_labels, column_labels)``.

Before lowering, the *shared* optimizer runs against a
:class:`RelationalPlanCatalog` (schemas plus row counts — the row store
keeps no per-column statistics), which pushes single-side total predicates
below joins, prunes projections through them, and annotates the join build
side; the annotation is handed to
:class:`~repro.relational.planner.JoinNode` verbatim, replacing that
planner's row-count-only heuristic with the shared, selectivity-aware
estimate.  The row store's own rewrite rules still run at ``to_physical``
time — they are no-ops on an already-pushed plan.

One deliberate difference from the column store: the relational ``Pivot``
labels rows/columns in first-seen order (the streaming Volcano convention
:meth:`~repro.relational.query.QueryResultSet.pivot` has always used),
not sorted order.  GenBase consumers align through the returned labels, so
both conventions are equivalent downstream.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.plan import logical
from repro.plan.observe import PlanObservation
from repro.plan.optimizer import ColumnStats, PlanCatalog, optimize, output_columns
from repro.plan.verify import maybe_verify_rewrite
from repro.relational.catalog import Database
from repro.relational.query import Query
from repro.relational.schema import ColumnType

#: Shared Aggregate function names → relational HashAggregate names.
_AGGREGATE_NAMES = {"mean": "avg"}

#: Row-store column types → the numpy dtypes their values materialise as.
_COLUMN_DTYPES = {
    ColumnType.INT: np.dtype(np.int64),
    ColumnType.FLOAT: np.dtype(np.float64),
    ColumnType.STRING: np.dtype(str),
    ColumnType.BOOL: np.dtype(np.bool_),
}


class RelationalPlanCatalog(PlanCatalog):
    """Expose a row-store :class:`Database`'s schemas to the shared optimizer.

    The row store keeps no per-column statistics, so ``stats_of`` answers
    with the table's row count only — enough for the join build-side rule
    to compare post-filter cardinality estimates, while selectivity falls
    back to the structural (shape-based) defaults.
    """

    def __init__(self, db: Database):
        self.db = db

    def columns_of(self, table: str) -> list[str] | None:
        if table not in self.db:
            return None
        return list(self.db.table(table).schema.names)

    def stats_of(self, table: str, column: str) -> ColumnStats | None:
        if table not in self.db:
            return None
        schema = self.db.table(table).schema
        if not schema.has_column(column):
            return None
        return ColumnStats(row_count=self.db.table(table).row_count)

    def dtype_of(self, table: str, column: str) -> np.dtype | None:
        if table not in self.db:
            return None
        schema = self.db.table(table).schema
        if not schema.has_column(column):
            return None
        return _COLUMN_DTYPES[schema.type_of(column)]


def optimize_shared_plan(plan: logical.PlanNode, db: Database) -> logical.PlanNode:
    """Run the shared optimizer with the database's schemas and row counts."""
    return optimize(plan, RelationalPlanCatalog(db))


def lower_shared_plan(plan: logical.PlanNode, db: Database) -> Query:
    """Lower a relational-algebra shared plan onto the fluent Query builder.

    Accepts Scan / Filter / Project / Join subtrees (terminals are handled
    by :func:`run_shared_plan`).  The caller is expected to have optimized
    the plan already; lowering itself is a pure structural translation.
    """
    catalog = RelationalPlanCatalog(db)
    return _lower(plan, db, catalog)


def _lower(node: logical.PlanNode, db: Database, catalog: RelationalPlanCatalog) -> Query:
    if isinstance(node, logical.Scan):
        return db.query(node.table)
    if isinstance(node, logical.Filter):
        return _lower(node.child, db, catalog).where(node.predicate)
    if isinstance(node, logical.Project):
        return _lower(node.child, db, catalog).select(*node.columns)
    if isinstance(node, logical.Join):
        left = _lower(node.left, db, catalog)
        right = _lower(node.right, db, catalog)
        joined = left.join(right, on=(node.left_key, node.right_key))
        if node.build_side != "auto":
            # Propagate the shared optimizer's statistics-informed choice
            # into the relational JoinNode (Query wraps immutable nodes, so
            # rebuild the top node with the annotation).
            joined = Query(replace(joined.logical_plan(), build_side=node.build_side))
        # The relational join keeps both key columns; project down to the
        # shared convention (left columns, then right minus the right key).
        shared_names = output_columns(node, catalog)
        if shared_names is None:
            shared_names = [name for name in joined.schema.names
                            if name != f"{node.right_key}_right"]
        return joined.select(*shared_names)
    raise TypeError(
        f"cannot lower plan node {type(node).__name__} onto the row store"
    )


def run_shared_plan(plan: logical.PlanNode, db: Database, optimized: bool = True,
                    observation: PlanObservation | None = None):
    """Execute a shared logical plan against the row store.

    Relational-algebra plans return a materialised
    :class:`~repro.relational.query.QueryResultSet`;
    :class:`~repro.plan.logical.Aggregate` returns ``(group_keys,
    aggregates)`` as numpy arrays sorted by key (the shared contract);
    :class:`~repro.plan.logical.Pivot` returns ``(matrix, row_labels,
    column_labels)`` with labels in first-seen row order.

    Args:
        plan: the shared logical plan tree.
        db: the row-store database holding the scanned tables.
        optimized: run the shared optimizer first (pass False to lower the
            plan exactly as written — the equivalence tests compare both).
        observation: optional :class:`~repro.plan.observe.PlanObservation`
            filled with the observed output cardinality.

    With the ``REPRO_VERIFY_PLANS`` debug flag set, the optimizer rewrite
    is checked by the static verifier (:mod:`repro.plan.verify`).
    """
    if optimized:
        written = plan
        plan = optimize_shared_plan(plan, db)
        maybe_verify_rewrite(written, plan, RelationalPlanCatalog(db))
    if observation is not None:
        observation.engine = "postgres"
    if isinstance(plan, logical.Aggregate):
        function = _AGGREGATE_NAMES.get(plan.function, plan.function)
        value = "*" if plan.function == "count" else plan.value
        result = (
            lower_shared_plan(plan.child, db)
            .group_by([plan.group_by], [(function, value, "agg")])
            .order_by(plan.group_by)
            .run()
        )
        keys = np.asarray(result.column(plan.group_by))
        aggregates = np.asarray(result.column("agg"), dtype=np.float64)
        if observation is not None:
            observation.output_rows = int(len(keys))
        return keys, aggregates
    if isinstance(plan, logical.Pivot):
        result = lower_shared_plan(plan.child, db).run()
        matrix, row_labels, column_labels = result.pivot(
            plan.row_key, plan.column_key, plan.value
        )
        if observation is not None:
            observation.output_rows = int(len(row_labels))
            observation.output_cells = int(matrix.size)
        return matrix, row_labels, column_labels
    result = lower_shared_plan(plan, db).run()
    if observation is not None:
        observation.output_rows = int(len(result))
    return result


def explain_shared_plan(plan: logical.PlanNode, db: Database) -> str:
    """Render the shared-optimized plan as the row store would execute it."""
    if isinstance(plan, (logical.Aggregate, logical.Pivot)):
        terminal = type(plan).__name__
        optimized = optimize_shared_plan(plan, db)
        return f"{terminal} terminal over:\n" + lower_shared_plan(
            optimized.child, db
        ).explain()
    return lower_shared_plan(optimize_shared_plan(plan, db), db).explain()
