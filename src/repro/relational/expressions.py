"""Row-store expression surface — now the shared AST from :mod:`repro.plan`.

The row store used to keep a private expression tree here.  Since the
plan-API redesign there is exactly one expression language for every
engine: :mod:`repro.plan.expressions`.  The same ``col("x") < lit(5)``
tree compiles to a per-row-tuple callable for the Volcano operators
(:meth:`~repro.plan.expressions.Expression.bind` — the contract this
module always had) *and* evaluates vectorised over numpy batches for the
column store, where the planner also classifies it for predicate pushdown
into the compression encodings.

This module re-exports the shared names so existing imports
(``from repro.relational.expressions import col``) keep working.
"""

from __future__ import annotations

from repro.plan.expressions import (
    Arithmetic,
    BooleanOp,
    BoundExpression,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
    Not,
    Opaque,
    and_,
    col,
    lit,
    not_,
    or_,
    split_conjuncts,
)

__all__ = [
    "Arithmetic",
    "BooleanOp",
    "BoundExpression",
    "ColumnRef",
    "Comparison",
    "Expression",
    "InList",
    "Literal",
    "Not",
    "Opaque",
    "and_",
    "col",
    "lit",
    "not_",
    "or_",
    "split_conjuncts",
]
