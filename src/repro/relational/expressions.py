"""Expression language for predicates, projections and computed columns.

Expressions are small immutable trees evaluated against one row at a time
(the row store's Volcano operators) — column references, literals,
comparisons, boolean connectives and arithmetic.  The module also provides
the tiny DSL used throughout the engine adapters::

    from repro.relational import col, lit, and_

    predicate = and_(col("function") < lit(250), col("length") >= lit(100))
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.relational.schema import Schema


class Expression:
    """Base class for all expressions."""

    def bind(self, schema: Schema) -> "BoundExpression":
        """Resolve column names to positions against ``schema``."""
        raise NotImplementedError

    def columns_referenced(self) -> set[str]:
        """Return the set of column names this expression reads."""
        raise NotImplementedError

    # Operator overloads build comparison / arithmetic / boolean trees.

    def __eq__(self, other):  # type: ignore[override]
        return Comparison(self, _to_expression(other), operator.eq, "=")

    def __ne__(self, other):  # type: ignore[override]
        return Comparison(self, _to_expression(other), operator.ne, "<>")

    def __lt__(self, other):
        return Comparison(self, _to_expression(other), operator.lt, "<")

    def __le__(self, other):
        return Comparison(self, _to_expression(other), operator.le, "<=")

    def __gt__(self, other):
        return Comparison(self, _to_expression(other), operator.gt, ">")

    def __ge__(self, other):
        return Comparison(self, _to_expression(other), operator.ge, ">=")

    def __add__(self, other):
        return Arithmetic(self, _to_expression(other), operator.add, "+")

    def __sub__(self, other):
        return Arithmetic(self, _to_expression(other), operator.sub, "-")

    def __mul__(self, other):
        return Arithmetic(self, _to_expression(other), operator.mul, "*")

    def __truediv__(self, other):
        return Arithmetic(self, _to_expression(other), operator.truediv, "/")

    def __and__(self, other):
        return BooleanOp((self, _to_expression(other)), conjunction=True)

    def __or__(self, other):
        return BooleanOp((self, _to_expression(other)), conjunction=False)

    def __invert__(self):
        return Not(self)

    def __hash__(self):
        return id(self)

    def isin(self, values: Sequence) -> "InList":
        """Build an ``IN (...)`` membership predicate."""
        return InList(self, tuple(values))


@dataclass(frozen=True, eq=False)
class BoundExpression:
    """A compiled expression: a plain callable over a row tuple."""

    function: Callable[[tuple], object]
    description: str

    def __call__(self, row: tuple):
        return self.function(row)


class ColumnRef(Expression):
    """Reference to a named column."""

    def __init__(self, name: str):
        self.name = name

    def bind(self, schema: Schema) -> BoundExpression:
        index = schema.index_of(self.name)
        return BoundExpression(lambda row, _i=index: row[_i], self.name)

    def columns_referenced(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant value."""

    def __init__(self, value):
        self.value = value

    def bind(self, schema: Schema) -> BoundExpression:
        value = self.value
        return BoundExpression(lambda row, _v=value: _v, repr(value))

    def columns_referenced(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class Comparison(Expression):
    """Binary comparison between two sub-expressions."""

    def __init__(self, left: Expression, right: Expression, op, symbol: str):
        self.left = left
        self.right = right
        self.op = op
        self.symbol = symbol

    def bind(self, schema: Schema) -> BoundExpression:
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        op = self.op
        return BoundExpression(
            lambda row: op(left(row), right(row)),
            f"({left.description} {self.symbol} {right.description})",
        )

    def columns_referenced(self) -> set[str]:
        return self.left.columns_referenced() | self.right.columns_referenced()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class Arithmetic(Comparison):
    """Binary arithmetic; shares the comparison plumbing."""


class BooleanOp(Expression):
    """N-ary AND / OR."""

    def __init__(self, operands: Sequence[Expression], conjunction: bool):
        if not operands:
            raise ValueError("boolean operator needs at least one operand")
        self.operands = tuple(operands)
        self.conjunction = conjunction

    def bind(self, schema: Schema) -> BoundExpression:
        bound = [operand.bind(schema) for operand in self.operands]
        if self.conjunction:
            return BoundExpression(
                lambda row: all(b(row) for b in bound),
                " AND ".join(b.description for b in bound),
            )
        return BoundExpression(
            lambda row: any(b(row) for b in bound),
            " OR ".join(b.description for b in bound),
        )

    def columns_referenced(self) -> set[str]:
        result: set[str] = set()
        for operand in self.operands:
            result |= operand.columns_referenced()
        return result

    def __repr__(self) -> str:
        joiner = " AND " if self.conjunction else " OR "
        return "(" + joiner.join(repr(op) for op in self.operands) + ")"


class Not(Expression):
    """Logical negation."""

    def __init__(self, operand: Expression):
        self.operand = operand

    def bind(self, schema: Schema) -> BoundExpression:
        bound = self.operand.bind(schema)
        return BoundExpression(lambda row: not bound(row), f"NOT {bound.description}")

    def columns_referenced(self) -> set[str]:
        return self.operand.columns_referenced()

    def __repr__(self) -> str:
        return f"not_({self.operand!r})"


class InList(Expression):
    """Membership test against a literal set of values."""

    def __init__(self, operand: Expression, values: tuple):
        self.operand = operand
        self.values = frozenset(values)

    def bind(self, schema: Schema) -> BoundExpression:
        bound = self.operand.bind(schema)
        values = self.values
        return BoundExpression(
            lambda row: bound(row) in values,
            f"{bound.description} IN {sorted(values)!r}",
        )

    def columns_referenced(self) -> set[str]:
        return self.operand.columns_referenced()

    def __repr__(self) -> str:
        return f"{self.operand!r}.isin({sorted(self.values)!r})"


def _to_expression(value) -> Expression:
    """Wrap plain Python values as literals."""
    if isinstance(value, Expression):
        return value
    return Literal(value)


# --------------------------------------------------------------------------- #
# DSL entry points
# --------------------------------------------------------------------------- #

def col(name: str) -> ColumnRef:
    """Reference a column by name."""
    return ColumnRef(name)


def lit(value) -> Literal:
    """Wrap a constant value."""
    return Literal(value)


def and_(*operands: Expression) -> Expression:
    """Conjunction of one or more predicates."""
    if len(operands) == 1:
        return operands[0]
    return BooleanOp(operands, conjunction=True)


def or_(*operands: Expression) -> Expression:
    """Disjunction of one or more predicates."""
    if len(operands) == 1:
        return operands[0]
    return BooleanOp(operands, conjunction=False)


def not_(operand: Expression) -> Not:
    """Negate a predicate."""
    return Not(operand)
