"""Declarative expressions and logical plans shared by every engine.

This package is the benchmark's common query surface: a small expression
AST (:mod:`repro.plan.expressions`), engine-agnostic logical plan nodes
(:mod:`repro.plan.logical`), and a rule-based optimizer
(:mod:`repro.plan.optimizer`) — conjunction splitting, predicate pushdown,
selectivity-ordered filters, projection pruning.

The row store compiles expressions to per-tuple callables
(``Expression.bind``); the column store evaluates them vectorised and maps
range/equality/membership predicates straight onto its compression
encodings' fast paths (:mod:`repro.colstore.planner`).  See ``README.md``
in this directory for the grammar, the optimizer rules, and the migration
notes for the deprecated callable ``where``.
"""

from repro.plan.expressions import (
    BooleanOp,
    BoundExpression,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
    Not,
    Opaque,
    StaticTypeError,
    all_columns,
    and_,
    col,
    lit,
    literal_dtype,
    not_,
    opaque,
    or_,
    split_conjuncts,
)
from repro.plan.logical import (
    APPROX_AGGREGATE_KINDS,
    Aggregate,
    ApproxAggregate,
    Filter,
    Join,
    Pivot,
    PlanNode,
    Project,
    Sample,
    Scan,
    approx_count,
    approx_distinct,
    approx_mean,
    approx_quantile,
    approx_sum,
    explain,
)
from repro.plan.optimizer import (
    ColumnStats,
    OptimizerCapabilities,
    PlanCatalog,
    PredicateClass,
    classify,
    estimate_selectivity,
    optimize,
    ordered_conjuncts,
    selectivity_annotator,
)
from repro.plan.verify import (
    MappingCatalog,
    PlanVerificationError,
    RewriteSoundnessError,
    maybe_verify_plan,
    maybe_verify_rewrite,
    verification_enabled,
    verified_schema,
    verify_plan,
    verify_rewrite,
)

__all__ = [
    "BooleanOp",
    "BoundExpression",
    "ColumnRef",
    "Comparison",
    "Expression",
    "InList",
    "Literal",
    "Not",
    "Opaque",
    "all_columns",
    "and_",
    "col",
    "lit",
    "not_",
    "opaque",
    "or_",
    "split_conjuncts",
    "APPROX_AGGREGATE_KINDS",
    "Aggregate",
    "ApproxAggregate",
    "Filter",
    "Join",
    "Pivot",
    "PlanNode",
    "Project",
    "Sample",
    "Scan",
    "approx_count",
    "approx_distinct",
    "approx_mean",
    "approx_quantile",
    "approx_sum",
    "explain",
    "ColumnStats",
    "OptimizerCapabilities",
    "PlanCatalog",
    "PredicateClass",
    "classify",
    "estimate_selectivity",
    "optimize",
    "ordered_conjuncts",
    "selectivity_annotator",
    "StaticTypeError",
    "literal_dtype",
    "MappingCatalog",
    "PlanVerificationError",
    "RewriteSoundnessError",
    "maybe_verify_plan",
    "maybe_verify_rewrite",
    "verification_enabled",
    "verified_schema",
    "verify_plan",
    "verify_rewrite",
]
