"""Observed-cardinality hooks for the per-engine plan executors.

Every engine bridge accepts an optional :class:`PlanObservation` and fills
it with what the run actually produced — output rows, pivot cells, and
(for the MapReduce executor) the records and serialised bytes that crossed
the shuffle.  The differential fuzzer records these observations next to
the optimizer's *predictions* (:func:`repro.plan.optimizer.estimate_output_rows`
and :func:`repro.mapreduce.bridge.estimate_shuffle_bytes`) into the cost
calibration report gated by ``tools/check_cost_calibration.py``.

The hook is deliberately write-only from the executor's side: passing one
never changes what a bridge computes, only what it reports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PlanObservation:
    """What one plan execution actually produced.

    Attributes:
        engine: the engine family that filled the observation.
        output_rows: cardinality of the plan's result — rows of a
            relational result, selected coordinates of an array selection,
            group count of an ``Aggregate``, row-label count of a ``Pivot``.
        output_cells: dense cell count of a ``Pivot`` matrix (None for
            other terminals).
        shuffle_records: map-output records that reached the shuffle
            across every MapReduce job the plan ran (MapReduce only).
        shuffle_bytes: serialised spill bytes across those jobs
            (MapReduce only).
    """

    engine: str = ""
    output_rows: int | None = None
    output_cells: int | None = None
    shuffle_records: int | None = None
    shuffle_bytes: int | None = None

    def as_dict(self) -> dict:
        """The observation as a plain dict (for reports)."""
        return {
            "engine": self.engine,
            "output_rows": self.output_rows,
            "output_cells": self.output_cells,
            "shuffle_records": self.shuffle_records,
            "shuffle_bytes": self.shuffle_bytes,
        }
