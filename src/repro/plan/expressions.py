"""The shared expression AST: one declarative predicate language for every engine.

Expressions are small immutable trees — column references, literals,
comparisons, boolean connectives, arithmetic, and membership tests — built
through the tiny DSL used throughout the engine adapters::

    from repro.plan import col, lit, and_

    predicate = and_(col("function") < lit(250), col("length") >= lit(100))

One tree serves every execution style the benchmark compares:

* the **row store** compiles an expression to a per-row-tuple callable with
  :meth:`Expression.bind` (the Volcano operators' contract; ``schema`` is
  duck-typed — anything with ``index_of(name)`` works),
* the **column store** evaluates the same tree vectorised over numpy column
  batches with :meth:`Expression.evaluate`, and — because the tree is
  inspectable, unlike a Python callable — the planner can split
  conjunctions (:func:`split_conjuncts`), push single-column predicates
  down into the compression encodings, and reorder filters by estimated
  selectivity (:mod:`repro.plan.optimizer`).

:class:`Opaque` wraps a legacy vectorised Python callable over one named
column.  It keeps the deprecated ``ColumnQuery.where(name, callable)``
surface working, but the planner can neither introspect nor estimate it —
which is exactly why the callable form is deprecated.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np


class StaticTypeError(TypeError):
    """Static dtype inference proved an expression or plan invalid.

    ``rule`` names the rejection class (``unknown-column``,
    ``comparison-type-mismatch``, …) so tests and the verifier's
    diagnostics can identify *which* invariant failed without parsing the
    message.  :mod:`repro.plan.verify` wraps these with the plan-node path
    of the offending subtree.
    """

    def __init__(self, message: str, rule: str = "general"):
        super().__init__(message)
        self.rule = rule


#: numpy dtype kinds that take part in arithmetic and ordered comparison.
_NUMERIC_KINDS = frozenset("biuf")

#: numpy dtype kinds holding text.
_STRING_KINDS = frozenset("US")


def _kind_family(dtype: np.dtype) -> str:
    """Coarse dtype family: values of different families never compare."""
    if dtype.kind in _NUMERIC_KINDS:
        return "numeric"
    if dtype.kind in _STRING_KINDS:
        return "string"
    return f"kind {dtype.kind!r}"


def literal_dtype(value) -> np.dtype:
    """The numpy dtype a literal evaluates to (bools before ints).

    >>> literal_dtype(250)
    dtype('int64')
    >>> literal_dtype(0.5).kind
    'f'
    >>> literal_dtype("BRCA1").kind
    'U'
    """
    if isinstance(value, np.ndarray):
        return value.dtype
    return np.asarray(value).dtype


def _require_comparable(left: np.dtype | None, right: np.dtype | None,
                        symbol: str, context: str) -> None:
    """Reject cross-family comparisons (``str < int`` can never be meant)."""
    if left is None or right is None:
        return
    if _kind_family(left) != _kind_family(right):
        raise StaticTypeError(
            f"cannot compare {left} with {right} in {context} "
            f"(operator {symbol!r} needs both sides in one type family)",
            rule="comparison-type-mismatch",
        )


class Expression:
    """Base class for all expressions."""

    def bind(self, schema) -> "BoundExpression":
        """Compile to a row-tuple callable, resolving names via ``schema.index_of``."""
        raise NotImplementedError

    def evaluate(self, batch: Mapping[str, np.ndarray]):
        """Evaluate vectorised over a mapping of column name → numpy array."""
        raise NotImplementedError

    def columns_referenced(self) -> set[str]:
        """Return the set of column names this expression reads."""
        raise NotImplementedError

    def infer_dtype(self, column_dtypes: Mapping[str, np.dtype | None]) -> np.dtype | None:
        """Statically infer the dtype this expression evaluates to.

        ``column_dtypes`` maps every in-scope column name to its dtype
        (``None`` marks a column whose dtype the engine cannot report —
        checks involving it are skipped, never failed).  Returns the
        result dtype, or ``None`` when it depends on an unknown input.

        Raises:
            StaticTypeError: when no assignment of values could make the
                expression evaluate cleanly — an unknown column, a
                cross-family comparison (``str < int``), arithmetic on
                text, or a boolean connective over a non-boolean operand.
        """
        raise NotImplementedError

    # Operator overloads build comparison / arithmetic / boolean trees.

    def __eq__(self, other):  # type: ignore[override]
        return Comparison(self, _to_expression(other), operator.eq, "=")

    def __ne__(self, other):  # type: ignore[override]
        return Comparison(self, _to_expression(other), operator.ne, "<>")

    def __lt__(self, other):
        return Comparison(self, _to_expression(other), operator.lt, "<")

    def __le__(self, other):
        return Comparison(self, _to_expression(other), operator.le, "<=")

    def __gt__(self, other):
        return Comparison(self, _to_expression(other), operator.gt, ">")

    def __ge__(self, other):
        return Comparison(self, _to_expression(other), operator.ge, ">=")

    def __add__(self, other):
        return Arithmetic(self, _to_expression(other), operator.add, "+")

    def __sub__(self, other):
        return Arithmetic(self, _to_expression(other), operator.sub, "-")

    def __mul__(self, other):
        return Arithmetic(self, _to_expression(other), operator.mul, "*")

    def __truediv__(self, other):
        return Arithmetic(self, _to_expression(other), operator.truediv, "/")

    def __and__(self, other):
        return BooleanOp((self, _to_expression(other)), conjunction=True)

    def __or__(self, other):
        return BooleanOp((self, _to_expression(other)), conjunction=False)

    def __invert__(self):
        return Not(self)

    def __hash__(self):
        return id(self)

    def isin(self, values: Sequence) -> "InList":
        """Build an ``IN (...)`` membership predicate.

        ``values`` may be any iterable; a numpy array is kept as an array
        (no Python-list round trip) so large key sets stay cheap for the
        column store's membership pushdown.
        """
        return InList(self, values)


@dataclass(frozen=True, eq=False)
class BoundExpression:
    """A compiled expression: a plain callable over a row tuple."""

    function: Callable[[tuple], object]
    description: str

    def __call__(self, row: tuple):
        return self.function(row)


class ColumnRef(Expression):
    """Reference to a named column."""

    def __init__(self, name: str):
        self.name = name

    def bind(self, schema) -> BoundExpression:
        index = schema.index_of(self.name)
        return BoundExpression(lambda row, _i=index: row[_i], self.name)

    def evaluate(self, batch: Mapping[str, np.ndarray]):
        return batch[self.name]

    def columns_referenced(self) -> set[str]:
        return {self.name}

    def infer_dtype(self, column_dtypes: Mapping[str, np.dtype | None]) -> np.dtype | None:
        if self.name not in column_dtypes:
            raise StaticTypeError(
                f"unknown column {self.name!r} "
                f"(in scope: {sorted(column_dtypes)})",
                rule="unknown-column",
            )
        return column_dtypes[self.name]

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant value."""

    def __init__(self, value):
        self.value = value

    def bind(self, schema) -> BoundExpression:
        value = self.value
        return BoundExpression(lambda row, _v=value: _v, repr(value))

    def evaluate(self, batch: Mapping[str, np.ndarray]):
        return self.value

    def columns_referenced(self) -> set[str]:
        return set()

    def infer_dtype(self, column_dtypes: Mapping[str, np.dtype | None]) -> np.dtype | None:
        return literal_dtype(self.value)

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class Comparison(Expression):
    """Binary comparison between two sub-expressions."""

    def __init__(self, left: Expression, right: Expression, op, symbol: str):
        self.left = left
        self.right = right
        self.op = op
        self.symbol = symbol

    def bind(self, schema) -> BoundExpression:
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        op = self.op
        return BoundExpression(
            lambda row: op(left(row), right(row)),
            f"({left.description} {self.symbol} {right.description})",
        )

    def evaluate(self, batch: Mapping[str, np.ndarray]):
        return self.op(self.left.evaluate(batch), self.right.evaluate(batch))

    def columns_referenced(self) -> set[str]:
        return self.left.columns_referenced() | self.right.columns_referenced()

    def infer_dtype(self, column_dtypes: Mapping[str, np.dtype | None]) -> np.dtype | None:
        left = self.left.infer_dtype(column_dtypes)
        right = self.right.infer_dtype(column_dtypes)
        _require_comparable(left, right, self.symbol, repr(self))
        return np.dtype(bool)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class Arithmetic(Comparison):
    """Binary arithmetic; shares the comparison plumbing."""

    def infer_dtype(self, column_dtypes: Mapping[str, np.dtype | None]) -> np.dtype | None:
        left = self.left.infer_dtype(column_dtypes)
        right = self.right.infer_dtype(column_dtypes)
        for side in (left, right):
            if side is not None and side.kind not in _NUMERIC_KINDS:
                raise StaticTypeError(
                    f"arithmetic {self.symbol!r} on non-numeric dtype {side} "
                    f"in {self!r} (operands: {left}, {right})",
                    rule="non-numeric-arithmetic",
                )
        if left is None or right is None:
            return None
        result = np.result_type(left, right)
        if self.symbol == "/" and result.kind in "biu":
            # numpy true division of integers yields float64.
            return np.dtype(np.float64)
        return result


class BooleanOp(Expression):
    """N-ary AND / OR."""

    def __init__(self, operands: Sequence[Expression], conjunction: bool):
        if not operands:
            raise ValueError("boolean operator needs at least one operand")
        self.operands = tuple(operands)
        self.conjunction = conjunction

    def bind(self, schema) -> BoundExpression:
        bound = [operand.bind(schema) for operand in self.operands]
        if self.conjunction:
            return BoundExpression(
                lambda row: all(b(row) for b in bound),
                " AND ".join(b.description for b in bound),
            )
        return BoundExpression(
            lambda row: any(b(row) for b in bound),
            " OR ".join(b.description for b in bound),
        )

    def evaluate(self, batch: Mapping[str, np.ndarray]):
        combine = np.logical_and if self.conjunction else np.logical_or
        result = np.asarray(self.operands[0].evaluate(batch), dtype=bool)
        for operand in self.operands[1:]:
            result = combine(result, np.asarray(operand.evaluate(batch), dtype=bool))
        return result

    def columns_referenced(self) -> set[str]:
        result: set[str] = set()
        for operand in self.operands:
            result |= operand.columns_referenced()
        return result

    def infer_dtype(self, column_dtypes: Mapping[str, np.dtype | None]) -> np.dtype | None:
        for operand in self.operands:
            dtype = operand.infer_dtype(column_dtypes)
            if dtype is not None and dtype.kind != "b":
                joiner = "AND" if self.conjunction else "OR"
                raise StaticTypeError(
                    f"non-boolean operand to {joiner}: {operand!r} has dtype "
                    f"{dtype} (expected bool)",
                    rule="non-boolean-connective",
                )
        return np.dtype(bool)

    def __repr__(self) -> str:
        joiner = " AND " if self.conjunction else " OR "
        return "(" + joiner.join(repr(op) for op in self.operands) + ")"


class Not(Expression):
    """Logical negation."""

    def __init__(self, operand: Expression):
        self.operand = operand

    def bind(self, schema) -> BoundExpression:
        bound = self.operand.bind(schema)
        return BoundExpression(lambda row: not bound(row), f"NOT {bound.description}")

    def evaluate(self, batch: Mapping[str, np.ndarray]):
        return np.logical_not(np.asarray(self.operand.evaluate(batch), dtype=bool))

    def columns_referenced(self) -> set[str]:
        return self.operand.columns_referenced()

    def infer_dtype(self, column_dtypes: Mapping[str, np.dtype | None]) -> np.dtype | None:
        dtype = self.operand.infer_dtype(column_dtypes)
        if dtype is not None and dtype.kind != "b":
            raise StaticTypeError(
                f"non-boolean operand to NOT: {self.operand!r} has dtype "
                f"{dtype} (expected bool)",
                rule="non-boolean-connective",
            )
        return np.dtype(bool)

    def __repr__(self) -> str:
        return f"not_({self.operand!r})"


class InList(Expression):
    """Membership test against a literal set of values.

    Plain iterables are frozen into a set (the row store probes it per
    tuple); numpy arrays are kept as arrays so the column store's
    ``isin`` pushdown never round-trips large key sets through Python.
    """

    def __init__(self, operand: Expression, values):
        self.operand = operand
        if isinstance(values, np.ndarray):
            self.values = values.copy()
        else:
            self.values = frozenset(values)
        self._keys: np.ndarray | None = None

    def key_array(self) -> np.ndarray:
        """The membership keys as a sorted, deduplicated numpy array (cached)."""
        if self._keys is None:
            if isinstance(self.values, np.ndarray):
                self._keys = np.unique(self.values)
            else:
                self._keys = np.unique(np.asarray(sorted(self.values)))
        return self._keys

    def _sorted_values(self) -> list:
        if isinstance(self.values, np.ndarray):
            return np.unique(self.values).tolist()
        return sorted(self.values)

    def bind(self, schema) -> BoundExpression:
        bound = self.operand.bind(schema)
        if isinstance(self.values, np.ndarray):
            values = frozenset(self.values.tolist())
        else:
            values = self.values
        return BoundExpression(
            lambda row: bound(row) in values,
            f"{bound.description} IN {self._sorted_values()!r}",
        )

    def evaluate(self, batch: Mapping[str, np.ndarray]):
        return np.isin(self.operand.evaluate(batch), self.key_array())

    def columns_referenced(self) -> set[str]:
        return self.operand.columns_referenced()

    def infer_dtype(self, column_dtypes: Mapping[str, np.dtype | None]) -> np.dtype | None:
        operand = self.operand.infer_dtype(column_dtypes)
        keys = self.key_array()
        # An empty key set carries no dtype information (np.unique([]) is
        # float64 by construction) — nothing to check against.
        if len(keys) and operand is not None:
            _require_comparable(operand, keys.dtype, "IN", repr(self))
        return np.dtype(bool)

    def __repr__(self) -> str:
        return f"{self.operand!r}.isin({self._sorted_values()!r})"


class Opaque(Expression):
    """A legacy vectorised Python callable over one named column.

    The callable must be element-wise and stateless (the column store may
    evaluate it on an encoding's *distinct* values only).  The planner
    cannot see inside it, so it gets the default selectivity estimate and
    blocks every rewrite smarter than "run it somewhere in the chain" —
    prefer real expression trees.
    """

    def __init__(self, column: str, fn: Callable[[np.ndarray], np.ndarray]):
        self.column = column
        self.fn = fn

    def bind(self, schema) -> BoundExpression:
        index = schema.index_of(self.column)
        fn = self.fn
        return BoundExpression(
            lambda row: bool(np.asarray(fn(np.asarray([row[index]])))[0]),
            f"opaque({self.column})",
        )

    def evaluate(self, batch: Mapping[str, np.ndarray]):
        return self.fn(batch[self.column])

    def columns_referenced(self) -> set[str]:
        return {self.column}

    def infer_dtype(self, column_dtypes: Mapping[str, np.dtype | None]) -> np.dtype | None:
        # The callable is a black box; all the verifier can check is that
        # its input column exists.  Its contract says it returns a mask.
        if self.column not in column_dtypes:
            raise StaticTypeError(
                f"unknown column {self.column!r} "
                f"(in scope: {sorted(column_dtypes)})",
                rule="unknown-column",
            )
        return np.dtype(bool)

    def __repr__(self) -> str:
        return f"opaque({self.column!r})"


def _to_expression(value) -> Expression:
    """Wrap plain Python values as literals."""
    if isinstance(value, Expression):
        return value
    return Literal(value)


def is_total(expression: Expression) -> bool:
    """True when the predicate is defined for *every* input row.

    Division can raise (row store) or emit inf/nan (column store) on rows a
    join or an earlier filter would have eliminated, and an opaque callable
    may assume a guarded domain — such predicates must not be evaluated on
    rows they were not written to see, so the optimizers refuse to move
    them below a join.  Everything else in the AST (comparisons, boolean
    connectives, +/-/*, membership) is a total element-wise operation.

    >>> is_total(col("a") > 1)
    True
    >>> is_total(col("a") / col("b") > 1)
    False
    """
    if isinstance(expression, Opaque):
        return False
    if isinstance(expression, Arithmetic) and expression.symbol == "/":
        return False
    if isinstance(expression, Comparison):  # includes non-division Arithmetic
        return is_total(expression.left) and is_total(expression.right)
    if isinstance(expression, BooleanOp):
        return all(is_total(operand) for operand in expression.operands)
    if isinstance(expression, Not):
        return is_total(expression.operand)
    if isinstance(expression, InList):
        return is_total(expression.operand)
    return True  # ColumnRef, Literal


def split_conjuncts(expression: Expression) -> list[Expression]:
    """Flatten nested conjunctions into a list of conjunct predicates.

    ``(a & b) & c`` → ``[a, b, c]``.  Anything that is not a top-level AND
    (disjunctions included) comes back as a single-element list.

    >>> a, b, c = col("a") < 1, col("b") < 2, col("c") < 3
    >>> split_conjuncts((a & b) & c) == [a, b, c]
    True
    >>> len(split_conjuncts(a | b))  # disjunctions stay whole
    1
    """
    if isinstance(expression, BooleanOp) and expression.conjunction:
        result: list[Expression] = []
        for operand in expression.operands:
            result.extend(split_conjuncts(operand))
        return result
    return [expression]


# --------------------------------------------------------------------------- #
# DSL entry points
# --------------------------------------------------------------------------- #

def col(name: str) -> ColumnRef:
    """Reference a column by name.

    >>> repr(col("age") < 40)
    "(col('age') < lit(40))"
    """
    return ColumnRef(name)


def lit(value) -> Literal:
    """Wrap a constant value.

    >>> repr(lit(250))
    'lit(250)'
    """
    return Literal(value)


def and_(*operands: Expression) -> Expression:
    """Conjunction of one or more predicates."""
    if len(operands) == 1:
        return operands[0]
    return BooleanOp(operands, conjunction=True)


def or_(*operands: Expression) -> Expression:
    """Disjunction of one or more predicates."""
    if len(operands) == 1:
        return operands[0]
    return BooleanOp(operands, conjunction=False)


def not_(operand: Expression) -> Not:
    """Negate a predicate."""
    return Not(operand)


def opaque(column: str, fn: Callable[[np.ndarray], np.ndarray]) -> Opaque:
    """Wrap a legacy vectorised callable over one column (see :class:`Opaque`)."""
    return Opaque(column, fn)


def all_columns(expressions: Iterable[Expression]) -> set[str]:
    """Union of the columns referenced by several expressions."""
    result: set[str] = set()
    for expression in expressions:
        result |= expression.columns_referenced()
    return result
