"""Rule-based optimizer for the shared logical plans.

Rules, applied in a fixed deterministic order by :func:`optimize`:

1. **conjunction splitting** — ``Filter(a & b & c)`` becomes three stacked
   filters, so each conjunct can move and be estimated independently;
2. **predicate pushdown** — filters move below projections and joins when
   they reference only one side's columns (never across a :class:`Sample`,
   which is a barrier: its output depends on the exact row set it sees);
3. **filter reordering** — consecutive filters are reordered so the most
   selective (by the estimates below) runs first, shrinking the row set
   the rest of the chain has to touch;
4. **join build-side selection** — each join is annotated with the input
   the executor should index, chosen from estimated post-filter row counts
   (:func:`estimate_output_rows`, reading :class:`ColumnStats`);
5. **projection pruning** — every scan is wrapped in a projection of just
   the columns the plan above it references — *through* joins too, so each
   join input decodes only the terminal's columns plus its join key.

Selectivity estimation reads per-column statistics through a
:class:`PlanCatalog` (the column store derives them from its encodings:
dictionary cardinality, run values, delta endpoints).  Predicates are
classified structurally — range / equality / membership — which is the
payoff of declarative expressions over opaque callables: a callable can
only ever get the textbook default of 1/3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.plan.expressions import (
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
    Opaque,
    is_total,
    split_conjuncts,
)
from repro.plan.logical import (
    SAMPLED_APPROX_KINDS,
    Aggregate,
    ApproxAggregate,
    Filter,
    Join,
    Pivot,
    PlanNode,
    Project,
    Sample,
    Scan,
)

#: Textbook default selectivity for a predicate nothing is known about.
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: Fallback equality selectivity when the column's cardinality is unknown.
EQUALITY_SELECTIVITY = 0.1


@dataclass(frozen=True)
class ColumnStats:
    """Cheap per-column statistics used for selectivity estimation."""

    row_count: int
    distinct: int | None = None
    minimum: float | None = None
    maximum: float | None = None


@dataclass(frozen=True)
class OptimizerCapabilities:
    """Which rewrite rules an engine's executor can honour.

    The five engine families run the *same* logical plans, but not every
    executor can exploit every rewrite: the array DBMS's dimension join
    has no build side to choose, Hive's "rudimentary query optimization"
    neither reorders filters by statistics nor costs join sides, and R
    evaluates a subset call exactly as the programmer wrote it.  Each
    per-engine executor passes its capability profile to :func:`optimize`,
    which applies only the enabled rules.

    These flags gate *cost-based* rewrites only.  The correctness
    constraints — the :class:`~repro.plan.logical.Sample` barrier, the
    opaque-predicate ordering barrier, and the ``is_total`` guard on
    join pushdown — are built into the rules themselves and hold for
    every profile.

    The default profile enables everything (the column store and the row
    store honour all five rules).

    >>> OptimizerCapabilities().join_build_side
    True
    >>> OptimizerCapabilities(join_build_side=False).predicate_pushdown
    True
    """

    split_conjunctions: bool = True
    predicate_pushdown: bool = True
    filter_reordering: bool = True
    join_build_side: bool = True
    projection_pruning: bool = True
    # Materialise an opted-in ApproxAggregate's sample as an explicit
    # child Sample node (route_through_synopsis) so the executor can serve
    # it from the shared synopsis catalog.  Engines without a synopsis
    # catalog disable this and sample inline.
    synopsis_routing: bool = True


class PlanCatalog:
    """What the optimizer may ask an engine about its tables.

    All hooks may return None ("unknown"); every rule degrades gracefully
    to the statistics-free behaviour.
    """

    def columns_of(self, table: str) -> list[str] | None:
        return None

    def stats_of(self, table: str, column: str) -> ColumnStats | None:
        return None

    def dtype_of(self, table: str, column: str) -> np.dtype | None:
        """Stored numpy dtype of one column (None = engine cannot say).

        Read by the static plan verifier (:mod:`repro.plan.verify`) — an
        unknown dtype downgrades dtype checks on that column to
        name-existence checks, it never fails them.
        """
        return None

    def row_count_of(self, table: str) -> int | None:
        """Base-table cardinality; the default derives it from column stats."""
        names = self.columns_of(table)
        for name in names or ():
            stats = self.stats_of(table, name)
            if stats is not None:
                return stats.row_count
        return None


# --------------------------------------------------------------------------- #
# Predicate classification
# --------------------------------------------------------------------------- #

# eq=False: the expression field's overloaded __eq__ builds an AST node,
# so the generated field-wise __eq__ would never return a bool.
@dataclass(frozen=True, eq=False)
class PredicateClass:
    """Structural shape of one predicate, as far as the optimizer can see."""

    expression: Expression
    kind: str                 # range | equality | inequality | membership | opaque | general
    column: str | None        # set when exactly one column is referenced
    lower: float | None = None
    upper: float | None = None


def _numeric(value) -> float | None:
    if isinstance(value, (bool, np.bool_)):
        return float(value)
    if isinstance(value, (int, float, np.integer, np.floating)):
        return float(value)
    return None


_RANGE_SYMBOLS = {"<": "upper", "<=": "upper", ">": "lower", ">=": "lower"}
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def classify(expression: Expression) -> PredicateClass:
    """Classify a predicate for pushdown and selectivity estimation."""
    referenced = expression.columns_referenced()
    column = next(iter(referenced)) if len(referenced) == 1 else None
    if isinstance(expression, Opaque):
        return PredicateClass(expression, "opaque", expression.column)
    if isinstance(expression, InList) and isinstance(expression.operand, ColumnRef):
        return PredicateClass(expression, "membership", expression.operand.name)
    if isinstance(expression, Comparison) and type(expression) is Comparison:
        symbol, constant = None, None
        if isinstance(expression.left, ColumnRef) and isinstance(expression.right, Literal):
            symbol, constant = expression.symbol, _numeric(expression.right.value)
        elif isinstance(expression.left, Literal) and isinstance(expression.right, ColumnRef):
            constant = _numeric(expression.left.value)
            symbol = _FLIPPED.get(expression.symbol, expression.symbol)
        if symbol == "=":
            return PredicateClass(expression, "equality", column)
        if symbol == "<>":
            return PredicateClass(expression, "inequality", column)
        if symbol in _RANGE_SYMBOLS and constant is not None:
            bound = {_RANGE_SYMBOLS[symbol]: constant}
            return PredicateClass(expression, "range", column, **bound)
    return PredicateClass(expression, "general", column)


def estimate_selectivity(predicate: PredicateClass, stats: ColumnStats | None) -> float:
    """Estimated fraction of rows the predicate keeps (deterministic)."""
    if predicate.kind in ("opaque", "general"):
        return DEFAULT_SELECTIVITY
    if stats is None:
        if predicate.kind == "membership":
            keys = predicate.expression.key_array()
            return min(1.0, EQUALITY_SELECTIVITY * max(1, len(keys)))
        if predicate.kind == "equality":
            return EQUALITY_SELECTIVITY
        if predicate.kind == "inequality":
            return 1.0 - EQUALITY_SELECTIVITY
        return DEFAULT_SELECTIVITY
    if predicate.kind == "equality":
        return 1.0 / stats.distinct if stats.distinct else EQUALITY_SELECTIVITY
    if predicate.kind == "inequality":
        return 1.0 - (1.0 / stats.distinct if stats.distinct else EQUALITY_SELECTIVITY)
    if predicate.kind == "membership":
        keys = predicate.expression.key_array()
        domain = stats.distinct or stats.row_count
        if not domain:
            return 1.0
        return min(1.0, len(keys) / domain)
    # Range: interpolate over the known [min, max] span.
    if stats.minimum is None or stats.maximum is None:
        return DEFAULT_SELECTIVITY
    span = stats.maximum - stats.minimum
    if span <= 0:
        # Constant column: the predicate keeps all rows or none; without
        # evaluating it, assume it was written to keep some.
        return 1.0
    lower = stats.minimum if predicate.lower is None else predicate.lower
    upper = stats.maximum if predicate.upper is None else predicate.upper
    return float(np.clip((upper - lower) / span, 0.0, 1.0))


def _no_stats(_column):
    """Stats resolver that knows nothing (single-conjunct short-circuit)."""
    return None


def ordered_conjuncts(expressions, stats_for):
    """Split, classify and selectivity-order a conjunction of predicates.

    Opaque predicates (legacy callables) are *ordering barriers*: the
    optimizer cannot know whether an earlier-written predicate guards the
    callable's domain (``where(col != 0)`` before a callable that divides),
    so nothing moves across an opaque conjunct and the opaque conjunct
    itself stays where it was written.  Declarative predicates reorder
    freely within each barrier-delimited segment — they are total,
    element-wise numpy operations.

    Args:
        expressions: iterable of predicate expressions (implicitly ANDed).
        stats_for: callable ``column -> ColumnStats | None``.

    Returns:
        List of ``(expression, PredicateClass, selectivity)`` triples in
        execution order — most selective first within each segment; ties
        keep their written order (stable).
    """
    conjuncts: list[Expression] = []
    for expression in expressions:
        conjuncts.extend(split_conjuncts(expression))
    if len(conjuncts) <= 1:
        # Ordering a single conjunct is moot: skip the statistics lookups
        # but keep the classification (it picks the encoding fast path).
        stats_for = _no_stats
    classified = [classify(conjunct) for conjunct in conjuncts]
    estimates = [
        estimate_selectivity(p, stats_for(p.column) if p.column else None)
        for p in classified
    ]
    order: list[int] = []
    segment: list[int] = []
    for index, predicate in enumerate(classified):
        if predicate.kind == "opaque":
            order.extend(sorted(segment, key=lambda i: (estimates[i], i)))
            order.append(index)  # the barrier stays in its written position
            segment = []
        else:
            segment.append(index)
    order.extend(sorted(segment, key=lambda i: (estimates[i], i)))
    return [(conjuncts[i], classified[i], estimates[i]) for i in order]


# --------------------------------------------------------------------------- #
# Plan rewrite rules
# --------------------------------------------------------------------------- #

def split_filter_conjunctions(node: PlanNode) -> PlanNode:
    """Turn every ``Filter(a & b)`` into stacked single-conjunct filters.

    AND is commutative and associative over total element-wise predicates,
    so the stacked form selects exactly the same rows; the split is what
    lets each conjunct move (pushdown) and be estimated independently.
    Innermost = first-written, preserving written order until
    :func:`reorder_filters` decides otherwise.
    """
    node = _rebuild(node, split_filter_conjunctions)
    if isinstance(node, Filter):
        conjuncts = split_conjuncts(node.predicate)
        if len(conjuncts) > 1:
            child = node.child
            for conjunct in reversed(conjuncts):
                child = Filter(child, conjunct)
            return child
    return node


def output_columns(node: PlanNode, catalog: PlanCatalog) -> list[str] | None:
    """The column names a plan subtree produces (None when unknown)."""
    if isinstance(node, Scan):
        return catalog.columns_of(node.table)
    if isinstance(node, (Filter, Sample)):
        return output_columns(node.child, catalog)
    if isinstance(node, Project):
        return list(node.columns)
    if isinstance(node, Join):
        left = output_columns(node.left, catalog)
        right = output_columns(node.right, catalog)
        if left is None or right is None:
            return None
        return left + [name for name in right if name != node.right_key]
    return None


def push_filters_down(node: PlanNode, catalog: PlanCatalog) -> PlanNode:
    """Move filters below projections and joins; never across a Sample.

    Only *total* predicates (:func:`repro.plan.expressions.is_total`) move
    below a join: there they run on rows the join eliminates, and a
    partial operation (division, an opaque callable) may blow up on rows
    it was never written to see.  Projection pushdown is always safe — it
    does not change the row set.
    """
    node = _rebuild(node, lambda child: push_filters_down(child, catalog))
    if not isinstance(node, Filter):
        return node
    child = node.child
    referenced = node.predicate.columns_referenced()
    if isinstance(child, Project) and referenced <= set(child.columns):
        return Project(
            push_filters_down(Filter(child.child, node.predicate), catalog),
            child.columns,
        )
    if isinstance(child, Join) and is_total(node.predicate):
        left_names = output_columns(child.left, catalog)
        right_names = set(output_columns(child.right, catalog) or ())
        if left_names is not None and referenced <= set(left_names):
            return replace(
                child,
                left=push_filters_down(Filter(child.left, node.predicate), catalog),
            )
        if right_names and referenced <= right_names:
            return replace(
                child,
                right=push_filters_down(Filter(child.right, node.predicate), catalog),
            )
    return node


def _base_stats_for(node: PlanNode, catalog: PlanCatalog):
    """Resolve ``column -> ColumnStats`` against the scans under ``node``."""
    def stats_for(column: str):
        return _find_column_stats(node, column, catalog)
    return stats_for


def _find_column_stats(node: PlanNode, column: str, catalog: PlanCatalog):
    if isinstance(node, Scan):
        names = catalog.columns_of(node.table)
        if names is not None and column in names:
            return catalog.stats_of(node.table, column)
        return None
    if isinstance(node, Join) and column == node.right_key:
        # The join output drops the right key; the surviving copy is the left's.
        return _find_column_stats(node.left, column, catalog)
    for child in node.children():
        found = _find_column_stats(child, column, catalog)
        if found is not None:
            return found
    return None


def estimate_output_rows(node: PlanNode, catalog: PlanCatalog) -> float | None:
    """Estimated row count a subtree produces (None when unknown).

    Scans read base cardinality from the catalog; filters multiply by the
    estimated selectivity of each conjunct; samples multiply by their
    fraction; joins use the textbook foreign-key model
    ``|L| * |R| / max(d(L.key), d(R.key))`` when both key cardinalities are
    known and fall back to ``max(|L|, |R|)`` otherwise; aggregates and
    pivots answer with the group key's distinct count.  Purely an estimate
    — never evaluates any predicate or touches row data.
    """
    if isinstance(node, Scan):
        count = catalog.row_count_of(node.table)
        return None if count is None else float(count)
    if isinstance(node, Filter):
        base = estimate_output_rows(node.child, catalog)
        if base is None:
            return None
        stats_for = _base_stats_for(node.child, catalog)
        for conjunct in split_conjuncts(node.predicate):
            predicate = classify(conjunct)
            stats = stats_for(predicate.column) if predicate.column else None
            base *= estimate_selectivity(predicate, stats)
        return base
    if isinstance(node, Sample):
        base = estimate_output_rows(node.child, catalog)
        return None if base is None else base * node.fraction
    if isinstance(node, Project):
        return estimate_output_rows(node.child, catalog)
    if isinstance(node, Join):
        left = estimate_output_rows(node.left, catalog)
        right = estimate_output_rows(node.right, catalog)
        if left is None or right is None:
            return None
        left_stats = _find_column_stats(node.left, node.left_key, catalog)
        right_stats = _find_column_stats(node.right, node.right_key, catalog)
        domains = [
            stats.distinct
            for stats in (left_stats, right_stats)
            if stats is not None and stats.distinct
        ]
        if domains:
            return left * right / max(domains)
        return max(left, right)
    if isinstance(node, (Aggregate, Pivot)):
        key = node.group_by if isinstance(node, Aggregate) else node.row_key
        stats = _find_column_stats(node.child, key, catalog)
        if stats is not None and stats.distinct:
            return float(stats.distinct)
        base = estimate_output_rows(node.child, catalog)
        return None if base is None else max(1.0, base / 10.0)
    if isinstance(node, ApproxAggregate):
        # One (estimate, ci_low, ci_high, confidence) row, always.
        return 1.0
    return None


def choose_join_build_side(node: PlanNode, catalog: PlanCatalog) -> PlanNode:
    """Annotate each join with the cheaper build side, from catalog stats.

    The build side is the input the executor indexes (hash table / sorted
    position array); building on the smaller input is cheaper and — in the
    column store — keeps the larger input as the sequentially-scanned probe
    side.  Estimates come from :func:`estimate_output_rows`, so a filter
    pushed onto one input shrinks that side's estimate before the choice is
    made.  When either side's cardinality is unknown the annotation stays
    ``"auto"`` and the executor decides at run time; a side the plan author
    already forced is left untouched.  The rewrite never changes the join's
    result set — only which input gets indexed.
    """
    node = _rebuild(node, lambda child: choose_join_build_side(child, catalog))
    if isinstance(node, Join) and node.build_side == "auto":
        left = estimate_output_rows(node.left, catalog)
        right = estimate_output_rows(node.right, catalog)
        if left is not None and right is not None:
            return replace(node, build_side="left" if left <= right else "right")
    return node


def reorder_filters(node: PlanNode, catalog: PlanCatalog) -> PlanNode:
    """Sort each consecutive filter chain by estimated selectivity.

    Declarative conjuncts commute freely, so reordering never changes the
    selected row set — but an :class:`~repro.plan.expressions.Opaque`
    conjunct is an *ordering barrier* (:func:`ordered_conjuncts`): an
    earlier-written guard may protect the callable's domain, so nothing
    moves across it and the opaque predicate keeps its written position.
    """
    if isinstance(node, Filter):
        chain: list[Expression] = []
        base = node
        while isinstance(base, Filter):
            chain.append(base.predicate)
            base = base.child
        base = _rebuild(base, lambda child: reorder_filters(child, catalog))
        # ``chain`` is top-down but execution is bottom-up, so estimate in
        # execution order (reversed) and wrap the most selective predicate
        # first — innermost, i.e. executed first.
        ordered = ordered_conjuncts(reversed(chain), _base_stats_for(base, catalog))
        for expression, _, _ in ordered:
            base = Filter(base, expression)
        return base
    return _rebuild(node, lambda child: reorder_filters(child, catalog))


def prune_projections(node: PlanNode, catalog: PlanCatalog,
                      required: set[str] | None = None) -> PlanNode:
    """Wrap each scan in a projection of only the columns the plan reads.

    Pruning also runs *through* joins: each input's requirement is the
    terminal's requirement restricted to that side plus its join key, and
    when an input still produces more than that (a pushed-down filter may
    read columns the join output never needs), a projection is inserted on
    top of the input so the join gathers only what the terminal references.
    Projection never changes the row set, so this is always safe.
    """
    if isinstance(node, Aggregate):
        needed = {node.group_by, node.value}
        return replace(node, child=prune_projections(node.child, catalog, needed))
    if isinstance(node, ApproxAggregate):
        return replace(node, child=prune_projections(node.child, catalog,
                                                     {node.value}))
    if isinstance(node, Pivot):
        needed = {node.row_key, node.column_key, node.value}
        return replace(node, child=prune_projections(node.child, catalog, needed))
    if isinstance(node, Project):
        return replace(
            node, child=prune_projections(node.child, catalog, set(node.columns))
        )
    if isinstance(node, Filter):
        needed = None if required is None else required | node.predicate.columns_referenced()
        return replace(node, child=prune_projections(node.child, catalog, needed))
    if isinstance(node, Sample):
        return replace(node, child=prune_projections(node.child, catalog, required))
    if isinstance(node, Join):
        left_names = output_columns(node.left, catalog)
        right_names = output_columns(node.right, catalog)
        left_required = right_required = None
        if required is not None and left_names is not None and right_names is not None:
            left_required = (required & set(left_names)) | {node.left_key}
            right_required = (required & set(right_names)) | {node.right_key}
        return replace(
            node,
            left=_prune_join_input(node.left, catalog, left_required),
            right=_prune_join_input(node.right, catalog, right_required),
        )
    if isinstance(node, Scan) and required is not None:
        names = catalog.columns_of(node.table)
        if names is not None and required < set(names):
            kept = tuple(name for name in names if name in required)
            return Project(node, kept)
    return node


def _prune_join_input(node: PlanNode, catalog: PlanCatalog,
                      required: set[str] | None) -> PlanNode:
    """Prune one join input, capping its output at ``required``.

    A filter pushed below the join may read columns the join output never
    needs (the Q2 disease predicate reads ``disease_id`` but the pivot only
    needs ``patient_id``); after the recursive prune, a projection on top
    of the input drops them so the join never gathers them.
    """
    pruned = prune_projections(node, catalog, required)
    if required is None:
        return pruned
    names = output_columns(pruned, catalog)
    if names is not None and set(names) > required:
        return Project(pruned, tuple(name for name in names if name in required))
    return pruned


def route_through_synopsis(node: PlanNode) -> PlanNode:
    """Materialise an opted-in approximate aggregate's sample as a child node.

    An :class:`~repro.plan.logical.ApproxAggregate` of a sampled kind
    (``approx_count`` / ``approx_sum`` / ``approx_mean``) whose
    ``fraction`` is set asks for its input to be sampled.  The node's
    semantics define that sample exactly as ``Sample(child, fraction,
    seed)`` — score the child's selected base rows once with
    ``default_rng(seed)``, keep the cheapest ``max(1, round(f·n))`` — so
    rewriting to the explicit form changes nothing about the answer while
    letting the column-store executor recognise ``Sample(Scan(t))`` and
    serve the row set from the shared synopsis catalog
    (:mod:`repro.colstore.synopsis`), built once and reused across queries.

    Sketch kinds (``approx_distinct`` / ``approx_quantile``) read every
    input row by design and are left untouched.

    >>> from repro.plan.logical import approx_mean, explain
    >>> plan = approx_mean(Scan("patients"), "age", fraction=0.1, seed=3)
    >>> print(explain(route_through_synopsis(plan)))
    ApproxAggregate approx_mean(age) confidence=0.95
      Sample fraction=0.1 seed=3
        Scan patients
    """
    node = _rebuild(node, route_through_synopsis)
    if (isinstance(node, ApproxAggregate) and node.fraction is not None
            and node.kind in SAMPLED_APPROX_KINDS):
        sampled = Sample(node.child, node.fraction, node.seed)
        return replace(node, child=sampled, fraction=None)
    return node


def collapse_projects(node: PlanNode) -> PlanNode:
    """Merge ``Project(Project(x, inner), outer)`` into one projection.

    Safe because the outer projection can only reference columns the inner
    one kept — projecting twice equals projecting once to the outer set.
    """
    node = _rebuild(node, collapse_projects)
    if isinstance(node, Project) and isinstance(node.child, Project):
        return Project(node.child.child, node.columns)
    return node


def optimize(node: PlanNode, catalog: PlanCatalog | None = None,
             capabilities: OptimizerCapabilities | None = None) -> PlanNode:
    """Apply the rewrite rules in a fixed, deterministic order.

    Splitting must precede pushdown (so each conjunct moves independently),
    pushdown must precede build-side selection (a pushed filter shrinks one
    join input's estimate), and pruning runs last over the settled shape.
    Every rule preserves the plan's result set exactly; only execution
    order, decoded columns and the join build side change.

    ``capabilities`` restricts the rule set to what the target engine's
    executor can honour (:class:`OptimizerCapabilities`); the default
    profile applies every rule.
    """
    catalog = catalog or PlanCatalog()
    capabilities = capabilities or OptimizerCapabilities()
    if capabilities.synopsis_routing:
        # First, so the materialised Sample is in place before pushdown
        # (Sample is a barrier: no filter may cross the new node).
        node = route_through_synopsis(node)
    if capabilities.split_conjunctions:
        node = split_filter_conjunctions(node)
    if capabilities.predicate_pushdown:
        node = push_filters_down(node, catalog)
    if capabilities.filter_reordering:
        node = reorder_filters(node, catalog)
    if capabilities.join_build_side:
        node = choose_join_build_side(node, catalog)
    if capabilities.projection_pruning:
        node = prune_projections(node, catalog)
        node = collapse_projects(node)
    return node


def selectivity_annotator(plan: PlanNode, catalog: PlanCatalog):
    """Build an ``explain`` annotator showing per-filter selectivity estimates."""
    def annotate(node: PlanNode) -> str:
        if isinstance(node, Filter):
            predicate = classify(node.predicate)
            stats_for = _base_stats_for(node.child, catalog)
            stats = stats_for(predicate.column) if predicate.column else None
            estimate = estimate_selectivity(predicate, stats)
            return f"{predicate.kind} ~sel={estimate:.4f}"
        return ""
    return annotate


def cost_annotator(plan: PlanNode, catalog: PlanCatalog):
    """Build an ``explain`` annotator showing per-node output-row estimates.

    Every node is annotated with ``~rows=N`` from
    :func:`estimate_output_rows` (filters additionally keep the structural
    class and selectivity the :func:`selectivity_annotator` shows), so an
    EXPLAIN rendered with this annotator records the full cardinality
    prediction chain the cost-calibration gate compares against observed
    row counts.
    """
    selectivity = selectivity_annotator(plan, catalog)

    def annotate(node: PlanNode) -> str:
        parts = []
        estimate = estimate_output_rows(node, catalog)
        if estimate is not None:
            parts.append(f"~rows={estimate:.0f}")
        extra = selectivity(node)
        if extra:
            parts.append(extra)
        return " ".join(parts)

    return annotate


def _rebuild(node: PlanNode, visit) -> PlanNode:
    """Rebuild a node with ``visit`` applied to each child."""
    if isinstance(node, (Filter, Project, Sample, Aggregate, ApproxAggregate,
                         Pivot)):
        return replace(node, child=visit(node.child))
    if isinstance(node, Join):
        return replace(node, left=visit(node.left), right=visit(node.right))
    return node
