"""Engine-agnostic logical query plans.

A logical plan is a small immutable tree of relational operations —
scan / filter / project / sample / join / aggregate / pivot — that names
tables and columns but prescribes no execution strategy.  The same plan
can be lowered onto any of the benchmark's engines; the column-store
executor lives in :mod:`repro.colstore.planner`.

Plans are optimized by the rule set in :mod:`repro.plan.optimizer`
(conjunction splitting, predicate pushdown, selectivity-ordered filters,
projection pruning) and rendered for tests and EXPLAIN output by
:func:`explain`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan.expressions import Expression


class PlanNode:
    """Base class for logical plan nodes."""

    def children(self) -> tuple["PlanNode", ...]:
        return ()


@dataclass(frozen=True)
class Scan(PlanNode):
    """Scan of a named base table."""

    table: str


# eq=False: a dataclass-generated __eq__ would delegate to the predicate's
# Expression.__eq__, which builds a (truthy) comparison AST node instead of
# returning a bool — two Filters with the same child would compare equal
# regardless of predicate.  Identity semantics keep the hash/eq contract.
@dataclass(frozen=True, eq=False)
class Filter(PlanNode):
    """Selection by a predicate expression."""

    child: PlanNode
    predicate: Expression

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Project(PlanNode):
    """Projection to the named columns."""

    child: PlanNode
    columns: tuple[str, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Sample(PlanNode):
    """Deterministic random sample of the child's rows.

    Sampling is an optimizer *barrier*: which rows it keeps depends on the
    set of rows flowing into it, so no filter may move across it.
    """

    child: PlanNode
    fraction: float
    seed: int = 0

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Join(PlanNode):
    """Equi-join; the output keeps the left columns plus the right columns
    minus the right key (the column store's materialised-join convention).

    ``build_side`` records the optimizer's build-side choice
    (:func:`repro.plan.optimizer.choose_join_build_side`): ``"left"`` or
    ``"right"`` means "build the hash/lookup structure on that input",
    ``"auto"`` leaves the decision to the executor, which falls back to
    whatever it can observe at run time (the column store compares the
    actual materialised input lengths; the row store compares its own
    cardinality estimates).
    """

    left: PlanNode
    right: PlanNode
    left_key: str
    right_key: str
    result_name: str = "join_result"
    build_side: str = "auto"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Aggregate(PlanNode):
    """Single-key GROUP BY producing ``(group_keys, aggregates)``."""

    child: PlanNode
    group_by: str
    value: str
    function: str = "mean"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Pivot(PlanNode):
    """Pivot into a dense matrix: ``(matrix, row_labels, column_labels)``."""

    child: PlanNode
    row_key: str
    column_key: str
    value: str

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


def explain(node: PlanNode, annotate=None) -> str:
    """Render a plan tree as indented text.

    ``annotate`` may be a callable ``(node) -> str`` appending extra detail
    (the optimizer uses it to show estimated filter selectivities).
    """
    lines: list[str] = []
    _explain_into(node, 0, lines, annotate)
    return "\n".join(lines)


def _describe(node: PlanNode) -> str:
    if isinstance(node, Scan):
        return f"Scan {node.table}"
    if isinstance(node, Filter):
        return f"Filter {node.predicate!r}"
    if isinstance(node, Project):
        return f"Project {list(node.columns)}"
    if isinstance(node, Sample):
        return f"Sample fraction={node.fraction} seed={node.seed}"
    if isinstance(node, Join):
        text = f"Join {node.left_key} = {node.right_key}"
        if node.build_side != "auto":
            text += f" build={node.build_side}"
        return text
    if isinstance(node, Aggregate):
        return f"Aggregate {node.function}({node.value}) by {node.group_by}"
    if isinstance(node, Pivot):
        return f"Pivot rows={node.row_key} cols={node.column_key} value={node.value}"
    return type(node).__name__


def _explain_into(node: PlanNode, depth: int, lines: list[str], annotate) -> None:
    text = "  " * depth + _describe(node)
    if annotate is not None:
        extra = annotate(node)
        if extra:
            text += f"  [{extra}]"
    lines.append(text)
    for child in node.children():
        _explain_into(child, depth + 1, lines, annotate)
