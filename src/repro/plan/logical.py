"""Engine-agnostic logical query plans.

A logical plan is a small immutable tree of relational operations —
scan / filter / project / sample / join / aggregate / pivot — that names
tables and columns but prescribes no execution strategy.  The same plan
can be lowered onto any of the benchmark's engines; the column-store
executor lives in :mod:`repro.colstore.planner`.

Plans are optimized by the rule set in :mod:`repro.plan.optimizer`
(conjunction splitting, predicate pushdown, selectivity-ordered filters,
projection pruning) and rendered for tests and EXPLAIN output by
:func:`explain`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.plan.expressions import (
    _NUMERIC_KINDS,
    _kind_family,
    Expression,
    StaticTypeError,
)

#: A statically inferred relational schema: column name → numpy dtype, in
#: output order.  ``None`` marks a dtype the engine could not report.
Schema = dict

#: The aggregate functions every executor implements.
AGGREGATE_FUNCTIONS = ("count", "sum", "mean", "min", "max")

#: Approximate aggregate kinds with sketch-backed, mergeable partials —
#: per-partition sketches combine driver-side (HLL register max, t-digest
#: centroid merge).
SKETCH_APPROX_KINDS = ("approx_distinct", "approx_quantile")

#: Approximate aggregate kinds answered from a uniform sample with
#: CLT-based confidence intervals; their partials are plain (sum, count)
#: pairs, so they too merge associatively.
SAMPLED_APPROX_KINDS = ("approx_count", "approx_sum", "approx_mean")

#: Every admitted approximate aggregate kind.  Admission requires a
#: driver-side merge for the kind's partial state; anything else is
#: rejected by the verifier as ``non-mergeable-aggregate``.
APPROX_AGGREGATE_KINDS = SKETCH_APPROX_KINDS + SAMPLED_APPROX_KINDS


class PlanNode:
    """Base class for logical plan nodes."""

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def output_schema(self, *child_schemas: Schema) -> Schema:
        """Infer this node's output schema from its children's schemas.

        Purely local typing logic — the full-plan walk (resolving scans
        against a catalog and attaching node paths to failures) lives in
        :mod:`repro.plan.verify`.

        Raises:
            StaticTypeError: when the node can never execute cleanly over
                the given inputs (missing columns, a non-boolean filter
                predicate, incompatible join keys, a non-numeric
                aggregate, …).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class Scan(PlanNode):
    """Scan of a named base table."""

    table: str

    def output_schema(self, *child_schemas: Schema) -> Schema:
        raise StaticTypeError(
            f"Scan({self.table!r}) has no intrinsic schema — resolve it "
            "against a catalog (repro.plan.verify.verified_schema)",
            rule="unknown-table",
        )


# eq=False: a dataclass-generated __eq__ would delegate to the predicate's
# Expression.__eq__, which builds a (truthy) comparison AST node instead of
# returning a bool — two Filters with the same child would compare equal
# regardless of predicate.  Identity semantics keep the hash/eq contract.
@dataclass(frozen=True, eq=False)
class Filter(PlanNode):
    """Selection by a predicate expression."""

    child: PlanNode
    predicate: Expression

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_schema(self, *child_schemas: Schema) -> Schema:
        (child,) = child_schemas
        dtype = self.predicate.infer_dtype(child)
        if dtype is not None and dtype.kind != "b":
            raise StaticTypeError(
                f"filter predicate {self.predicate!r} has dtype {dtype} "
                "(expected bool) — did you mean a comparison?",
                rule="non-boolean-predicate",
            )
        return dict(child)


@dataclass(frozen=True)
class Project(PlanNode):
    """Projection to the named columns."""

    child: PlanNode
    columns: tuple[str, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_schema(self, *child_schemas: Schema) -> Schema:
        (child,) = child_schemas
        missing = [name for name in self.columns if name not in child]
        if missing:
            raise StaticTypeError(
                f"projection references column(s) {missing} not produced "
                f"by its input (in scope: {sorted(child)})",
                rule="projection-of-missing-column",
            )
        return {name: child[name] for name in self.columns}


@dataclass(frozen=True)
class Sample(PlanNode):
    """Deterministic random sample of the child's rows.

    Sampling is an optimizer *barrier*: which rows it keeps depends on the
    set of rows flowing into it, so no filter may move across it.
    """

    child: PlanNode
    fraction: float
    seed: int = 0

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_schema(self, *child_schemas: Schema) -> Schema:
        (child,) = child_schemas
        if not 0.0 <= self.fraction <= 1.0:
            raise StaticTypeError(
                f"sample fraction {self.fraction!r} outside [0, 1]",
                rule="invalid-sample-fraction",
            )
        return dict(child)


@dataclass(frozen=True)
class Join(PlanNode):
    """Equi-join; the output keeps the left columns plus the right columns
    minus the right key (the column store's materialised-join convention).

    ``build_side`` records the optimizer's build-side choice
    (:func:`repro.plan.optimizer.choose_join_build_side`): ``"left"`` or
    ``"right"`` means "build the hash/lookup structure on that input",
    ``"auto"`` leaves the decision to the executor, which falls back to
    whatever it can observe at run time (the column store compares the
    actual materialised input lengths; the row store compares its own
    cardinality estimates).
    """

    left: PlanNode
    right: PlanNode
    left_key: str
    right_key: str
    result_name: str = "join_result"
    build_side: str = "auto"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def output_schema(self, *child_schemas: Schema) -> Schema:
        left, right = child_schemas
        for key, side, schema in ((self.left_key, "left", left),
                                  (self.right_key, "right", right)):
            if key not in schema:
                raise StaticTypeError(
                    f"join key {key!r} not in the {side} input "
                    f"(in scope: {sorted(schema)})",
                    rule="unknown-join-key",
                )
        left_dtype, right_dtype = left[self.left_key], right[self.right_key]
        if (left_dtype is not None and right_dtype is not None
                and _kind_family(left_dtype) != _kind_family(right_dtype)):
            raise StaticTypeError(
                f"join-key dtype mismatch: left key {self.left_key!r} is "
                f"{left_dtype} but right key {self.right_key!r} is "
                f"{right_dtype}",
                rule="join-key-dtype-mismatch",
            )
        result = dict(left)
        for name, dtype in right.items():
            if name != self.right_key and name not in result:
                # A non-key name collision keeps the left column here, the
                # executors' ambiguous-source fallback renames at run time.
                result[name] = dtype
        return result


@dataclass(frozen=True)
class Aggregate(PlanNode):
    """Single-key GROUP BY producing ``(group_keys, aggregates)``."""

    child: PlanNode
    group_by: str
    value: str
    function: str = "mean"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_schema(self, *child_schemas: Schema) -> Schema:
        (child,) = child_schemas
        if self.function not in AGGREGATE_FUNCTIONS:
            raise StaticTypeError(
                f"unknown aggregate function {self.function!r} "
                f"(supported: {list(AGGREGATE_FUNCTIONS)})",
                rule="unknown-aggregate-function",
            )
        for role, name in (("group key", self.group_by), ("value", self.value)):
            if name not in child:
                raise StaticTypeError(
                    f"aggregate {role} column {name!r} not produced by its "
                    f"input (in scope: {sorted(child)})",
                    rule="unknown-column",
                )
        value_dtype = child[self.value]
        if (self.function != "count" and value_dtype is not None
                and value_dtype.kind not in _NUMERIC_KINDS):
            raise StaticTypeError(
                f"aggregate {self.function}({self.value}) over non-numeric "
                f"dtype {value_dtype} (only 'count' accepts non-numeric "
                "values)",
                rule="non-numeric-aggregate",
            )
        return {self.group_by: child[self.group_by],
                f"{self.function}({self.value})": _aggregate_dtype(
                    self.function, value_dtype)}


@dataclass(frozen=True)
class ApproxAggregate(PlanNode):
    """Approximate scalar aggregate: ``(estimate, ci_low, ci_high, confidence)``.

    ``kind`` selects the estimator: ``approx_distinct`` (HyperLogLog) and
    ``approx_quantile`` (t-digest) sketch every input row with mergeable
    partials; ``approx_count`` / ``approx_sum`` / ``approx_mean`` are
    answered from a uniform sample with CLT confidence intervals.  The
    sampled kinds read their sample from a :class:`Sample` node in the
    subtree, or — when ``fraction`` is set — opt in to the optimizer's
    synopsis routing (:func:`repro.plan.optimizer.route_through_synopsis`),
    which materialises the equivalent ``Sample`` as the immediate child so
    the executor can serve it from the shared synopsis catalog.

    ``quantile`` is only read by ``approx_quantile``; ``confidence`` is the
    two-sided level of the returned interval.
    """

    child: PlanNode
    value: str
    kind: str = "approx_mean"
    quantile: float = 0.5
    confidence: float = 0.95
    fraction: float | None = None
    seed: int = 0

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_schema(self, *child_schemas: Schema) -> Schema:
        (child,) = child_schemas
        if self.kind not in APPROX_AGGREGATE_KINDS:
            raise StaticTypeError(
                f"approximate aggregate kind {self.kind!r} has no mergeable "
                "partial state — every admitted kind must reduce "
                "per-partition partials driver-side (supported: "
                f"{list(APPROX_AGGREGATE_KINDS)})",
                rule="non-mergeable-aggregate",
            )
        if not 0.0 < self.confidence < 1.0:
            raise StaticTypeError(
                f"confidence level {self.confidence!r} outside (0, 1) — a "
                "two-sided interval needs a strictly interior level",
                rule="invalid-confidence",
            )
        if not 0.0 <= self.quantile <= 1.0:
            raise StaticTypeError(
                f"quantile fraction {self.quantile!r} outside [0, 1]",
                rule="invalid-confidence",
            )
        if self.fraction is not None and not 0.0 < self.fraction <= 1.0:
            raise StaticTypeError(
                f"synopsis fraction {self.fraction!r} outside (0, 1]",
                rule="invalid-sample-fraction",
            )
        if self.value not in child:
            raise StaticTypeError(
                f"approximate aggregate value column {self.value!r} not "
                f"produced by its input (in scope: {sorted(child)})",
                rule="unknown-column",
            )
        value_dtype = child[self.value]
        if value_dtype is not None and value_dtype.kind not in _NUMERIC_KINDS:
            raise StaticTypeError(
                f"approximate aggregate {self.kind}({self.value}) over "
                f"non-numeric dtype {value_dtype} (sketch hashing and CLT "
                "bounds are defined for numeric columns only)",
                rule="non-numeric-aggregate",
            )
        return {f"{self.kind}({self.value})": np.dtype(np.float64),
                "ci_low": np.dtype(np.float64),
                "ci_high": np.dtype(np.float64),
                "confidence": np.dtype(np.float64)}


@dataclass(frozen=True)
class Pivot(PlanNode):
    """Pivot into a dense matrix: ``(matrix, row_labels, column_labels)``."""

    child: PlanNode
    row_key: str
    column_key: str
    value: str

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_schema(self, *child_schemas: Schema) -> Schema:
        (child,) = child_schemas
        for role, name in (("row key", self.row_key),
                           ("column key", self.column_key),
                           ("value", self.value)):
            if name not in child:
                raise StaticTypeError(
                    f"pivot {role} column {name!r} not produced by its "
                    f"input (in scope: {sorted(child)})",
                    rule="unknown-column",
                )
        for role, name in (("row key", self.row_key),
                           ("column key", self.column_key),
                           ("value", self.value)):
            dtype = child[name]
            if dtype is not None and dtype.kind not in _NUMERIC_KINDS:
                raise StaticTypeError(
                    f"pivot {role} column {name!r} has non-numeric dtype "
                    f"{dtype} (dense pivots need numeric labels and cells)",
                    rule="non-numeric-pivot",
                )
        return {self.row_key: child[self.row_key],
                self.column_key: child[self.column_key],
                f"value({self.value})": child[self.value]}


def _aggregate_dtype(function: str, value_dtype: np.dtype | None) -> np.dtype | None:
    """The dtype the shared executors produce for one aggregate kind.

    ``count`` is a cardinality (int64) whatever it counts; ``mean``
    divides, so it is float64 even over integers; ``sum``/``min``/``max``
    stay in the value's own dtype family (integer sums accumulate in
    int64).
    """
    if function == "count":
        return np.dtype(np.int64)
    if function == "mean":
        return np.dtype(np.float64)
    if value_dtype is None:
        return None
    if function == "sum" and value_dtype.kind in "biu":
        return np.dtype(np.int64)
    return value_dtype


# --------------------------------------------------------------------------- #
# Approximate-aggregate DSL
# --------------------------------------------------------------------------- #

def approx_distinct(child: PlanNode, column: str,
                    confidence: float = 0.95) -> ApproxAggregate:
    """Sketch-backed distinct count of ``column`` (HyperLogLog).

    >>> print(explain(approx_distinct(Scan("microarray"), "gene_id")))
    ApproxAggregate approx_distinct(gene_id) confidence=0.95
      Scan microarray

    The verifier rejects out-of-range confidence levels:

    >>> approx_distinct(Scan("t"), "x", confidence=1.5).output_schema(
    ...     {"x": np.dtype(np.int64)})
    Traceback (most recent call last):
        ...
    repro.plan.expressions.StaticTypeError: confidence level 1.5 outside \
(0, 1) — a two-sided interval needs a strictly interior level
    """
    return ApproxAggregate(child, column, "approx_distinct",
                           confidence=confidence)


def approx_quantile(child: PlanNode, column: str, q: float = 0.5,
                    confidence: float = 0.95) -> ApproxAggregate:
    """Sketch-backed quantile of ``column`` (t-digest).

    >>> print(explain(approx_quantile(Scan("patients"), "age", q=0.9)))
    ApproxAggregate approx_quantile(age) q=0.9 confidence=0.95
      Scan patients
    """
    return ApproxAggregate(child, column, "approx_quantile", quantile=q,
                           confidence=confidence)


def approx_count(child: PlanNode, column: str, fraction: float | None = None,
                 seed: int = 0, confidence: float = 0.95) -> ApproxAggregate:
    """Sampled row count with a CLT confidence interval.

    With ``fraction`` set, the plan opts in to synopsis routing: the
    optimizer's :func:`~repro.plan.optimizer.route_through_synopsis` (see
    its doctest) materialises the equivalent ``Sample`` as the immediate
    child, which the column store serves from the synopsis catalog.

    >>> plan = approx_count(Scan("patients"), "age", fraction=0.1, seed=7)
    >>> print(explain(plan))
    ApproxAggregate approx_count(age) confidence=0.95 fraction=0.1 seed=7
      Scan patients
    """
    return ApproxAggregate(child, column, "approx_count", confidence=confidence,
                           fraction=fraction, seed=seed)


def approx_sum(child: PlanNode, column: str, fraction: float | None = None,
               seed: int = 0, confidence: float = 0.95) -> ApproxAggregate:
    """Sampled sum with a CLT confidence interval.

    >>> print(explain(approx_sum(Scan("patients"), "age", fraction=0.05)))
    ApproxAggregate approx_sum(age) confidence=0.95 fraction=0.05 seed=0
      Scan patients
    """
    return ApproxAggregate(child, column, "approx_sum", confidence=confidence,
                           fraction=fraction, seed=seed)


def approx_mean(child: PlanNode, column: str, fraction: float | None = None,
                seed: int = 0, confidence: float = 0.95) -> ApproxAggregate:
    """Sampled mean with a CLT confidence interval.

    >>> plan = approx_mean(Scan("patients"), "drug_response", fraction=0.02)
    >>> sorted(plan.output_schema(
    ...     {"drug_response": np.dtype(np.float64)}))
    ['approx_mean(drug_response)', 'ci_high', 'ci_low', 'confidence']
    """
    return ApproxAggregate(child, column, "approx_mean", confidence=confidence,
                           fraction=fraction, seed=seed)


def explain(node: PlanNode, annotate=None) -> str:
    """Render a plan tree as indented text.

    ``annotate`` may be a callable ``(node) -> str`` appending extra detail
    (the optimizer uses it to show estimated filter selectivities).
    """
    lines: list[str] = []
    _explain_into(node, 0, lines, annotate)
    return "\n".join(lines)


def _describe(node: PlanNode) -> str:
    if isinstance(node, Scan):
        return f"Scan {node.table}"
    if isinstance(node, Filter):
        return f"Filter {node.predicate!r}"
    if isinstance(node, Project):
        return f"Project {list(node.columns)}"
    if isinstance(node, Sample):
        return f"Sample fraction={node.fraction} seed={node.seed}"
    if isinstance(node, Join):
        text = f"Join {node.left_key} = {node.right_key}"
        if node.build_side != "auto":
            text += f" build={node.build_side}"
        return text
    if isinstance(node, Aggregate):
        return f"Aggregate {node.function}({node.value}) by {node.group_by}"
    if isinstance(node, ApproxAggregate):
        text = f"ApproxAggregate {node.kind}({node.value})"
        if node.kind == "approx_quantile":
            text += f" q={node.quantile}"
        text += f" confidence={node.confidence}"
        if node.fraction is not None:
            text += f" fraction={node.fraction} seed={node.seed}"
        return text
    if isinstance(node, Pivot):
        return f"Pivot rows={node.row_key} cols={node.column_key} value={node.value}"
    return type(node).__name__


def _explain_into(node: PlanNode, depth: int, lines: list[str], annotate) -> None:
    text = "  " * depth + _describe(node)
    if annotate is not None:
        extra = annotate(node)
        if extra:
            text += f"  [{extra}]"
    lines.append(text)
    for child in node.children():
        _explain_into(child, depth + 1, lines, annotate)
