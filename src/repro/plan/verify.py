"""Static verification of logical plans: typecheck the IR before running it.

The verifier walks a plan bottom-up, resolves every :class:`Scan` against a
schema source, and infers the output schema *and numpy dtype* of every node
through :meth:`PlanNode.output_schema` /
:meth:`~repro.plan.expressions.Expression.infer_dtype`.  A malformed plan —
unknown column, ``str < int`` comparison, non-numeric aggregate, join-key
dtype mismatch, projection of a dropped column — is rejected statically
with the exact node path of the offending subtree, before any engine
touches data::

    >>> import numpy as np
    >>> from repro.plan import Aggregate, Filter, Scan, col, lit
    >>> schemas = {"patients": {"patient_id": np.dtype(np.int64),
    ...                         "name": np.dtype("U16"),
    ...                         "age": np.dtype(np.int64)}}
    >>> plan = Aggregate(Filter(Scan("patients"), col("name") < lit(40)),
    ...                  "patient_id", "age")
    >>> try:
    ...     verified_schema(plan, schemas)
    ... except PlanVerificationError as error:
    ...     print(error.rule, "at", error.path)
    comparison-type-mismatch at Aggregate > Filter

Schema sources are either a plain mapping ``{table: {column: dtype}}`` or
anything shaped like a :class:`~repro.plan.optimizer.PlanCatalog` (every
engine bridge's catalog reports dtypes through ``dtype_of``).

:func:`verify_rewrite` is the *rewrite-soundness* check: every
``optimize()`` application must preserve the verified schema — same column
names, same order, same dtypes.  The differential fuzz harness runs it on
every generated plan unconditionally; the five engine bridges run it on
every query when the ``REPRO_VERIFY_PLANS`` debug flag is set
(``docs/STATIC_ANALYSIS.md``).

``python -m repro.plan.verify`` runs the built-in self-check corpus (one
malformed plan per rejection class, plus a soundness trip) — the CI
``static-analysis`` job gates on it.
"""

from __future__ import annotations

import os
from typing import Mapping

import numpy as np

from repro.plan.expressions import StaticTypeError
from repro.plan.logical import Join, PlanNode, Scan, Schema
from repro.plan.optimizer import PlanCatalog


class PlanVerificationError(StaticTypeError):
    """A plan failed static verification.

    Attributes:
        rule: the rejection class (``unknown-column``, ``join-key-dtype-mismatch``, …).
        path: the node path from the plan root to the offending node,
            e.g. ``"Aggregate > Filter > Scan('patients')"``.
    """

    def __init__(self, message: str, rule: str, path: str):
        super().__init__(f"{message} [at {path}]", rule=rule)
        self.path = path


class RewriteSoundnessError(PlanVerificationError):
    """An ``optimize()`` application changed the plan's verified schema."""

    def __init__(self, message: str, rule: str = "rewrite-schema-drift",
                 path: str = "<plan root>"):
        super().__init__(message, rule=rule, path=path)


#: Environment variable enabling per-query verification in the bridges.
VERIFY_FLAG = "REPRO_VERIFY_PLANS"


def verification_enabled() -> bool:
    """True when the ``REPRO_VERIFY_PLANS`` debug flag is switched on."""
    return os.environ.get(VERIFY_FLAG, "").strip().lower() in (
        "1", "true", "yes", "on"
    )


class MappingCatalog(PlanCatalog):
    """A :class:`PlanCatalog` over a plain ``{table: {column: dtype}}`` mapping.

    Lets callers optimize and verify plans against a schema-only world —
    no engine, no data — which is what ``python -m repro.fuzz.repro
    --verify-only`` and the verifier self-check use.
    """

    def __init__(self, schemas: Mapping[str, Mapping[str, np.dtype]]):
        self.schemas = {
            table: {name: None if dtype is None else np.dtype(dtype)
                    for name, dtype in columns.items()}
            for table, columns in schemas.items()
        }

    def columns_of(self, table: str) -> list[str] | None:
        columns = self.schemas.get(table)
        return None if columns is None else list(columns)

    def dtype_of(self, table: str, column: str) -> np.dtype | None:
        return self.schemas.get(table, {}).get(column)


def _scan_schema(source, table: str) -> Schema | None:
    """Resolve one table's ``{column: dtype}`` schema from either source kind."""
    if hasattr(source, "columns_of"):
        names = source.columns_of(table)
        if names is None:
            return None
        dtype_of = getattr(source, "dtype_of", None)
        if dtype_of is None:
            return {name: None for name in names}
        return {name: dtype_of(table, name) for name in names}
    columns = source.get(table)
    if columns is None:
        return None
    return {name: None if dtype is None else np.dtype(dtype)
            for name, dtype in columns.items()}


def _describe_step(node: PlanNode) -> str:
    if isinstance(node, Scan):
        return f"Scan({node.table!r})"
    return type(node).__name__


def verified_schema(plan: PlanNode, schemas) -> Schema:
    """Typecheck a plan; return its verified output schema.

    Args:
        plan: the logical plan tree.
        schemas: a plain ``{table: {column: dtype}}`` mapping, or a
            catalog answering ``columns_of``/``dtype_of`` (every engine
            bridge's :class:`~repro.plan.optimizer.PlanCatalog` does).

    Returns:
        Column name → numpy dtype in output order.  Terminals describe
        their tuple results: an ``Aggregate`` produces
        ``{group_by: …, "fn(value)": …}``, a ``Pivot``
        ``{row_key: …, column_key: …, "value(v)": …}``.

    Raises:
        PlanVerificationError: naming the violated rule and the node path.
    """
    return _verify(plan, schemas, [])


def verify_plan(plan: PlanNode, schemas) -> Schema:
    """Alias of :func:`verified_schema` reading as an assertion."""
    return verified_schema(plan, schemas)


def _verify(node: PlanNode, schemas, trail: list[str]) -> Schema:
    trail = trail + [_describe_step(node)]
    path = " > ".join(trail)
    if isinstance(node, Scan):
        schema = _scan_schema(schemas, node.table)
        if schema is None:
            raise PlanVerificationError(
                f"unknown table {node.table!r}", rule="unknown-table",
                path=path,
            )
        return schema
    if isinstance(node, Join):
        child_schemas = (
            _verify(node.left, schemas, trail[:-1] + [trail[-1] + ".left"]),
            _verify(node.right, schemas, trail[:-1] + [trail[-1] + ".right"]),
        )
    else:
        child_schemas = tuple(
            _verify(child, schemas, trail) for child in node.children()
        )
    try:
        return node.output_schema(*child_schemas)
    except PlanVerificationError:
        raise
    except StaticTypeError as error:
        raise PlanVerificationError(
            str(error), rule=error.rule, path=path
        ) from error


def _format_schema(schema: Schema) -> str:
    return "{" + ", ".join(
        f"{name}: {dtype if dtype is not None else '?'}"
        for name, dtype in schema.items()
    ) + "}"


def verify_rewrite(original: PlanNode, optimized: PlanNode, schemas) -> Schema:
    """Assert an optimizer rewrite preserved the verified schema.

    Verifies both plans and requires identical column names, order and
    dtypes.  Returns the (shared) verified schema.

    Raises:
        RewriteSoundnessError: when the optimized plan fails verification
            (the rewrite manufactured an invalid plan) or verifies to a
            different schema (the rewrite changed what the plan computes).
    """
    before = verified_schema(original, schemas)
    try:
        after = verified_schema(optimized, schemas)
    except PlanVerificationError as error:
        raise RewriteSoundnessError(
            f"optimize() produced a plan that fails verification: {error}",
            rule="rewrite-invalid-plan",
        ) from error
    if list(before) != list(after):
        raise RewriteSoundnessError(
            "optimize() changed the plan's output columns: "
            f"{_format_schema(before)} -> {_format_schema(after)}"
        )
    for name in before:
        left, right = before[name], after[name]
        if left is not None and right is not None and left != right:
            raise RewriteSoundnessError(
                f"optimize() changed the dtype of column {name!r}: "
                f"{left} -> {right}"
            )
    return before


def maybe_verify_rewrite(original: PlanNode, optimized: PlanNode, schemas) -> None:
    """Bridge hook: run :func:`verify_rewrite` when the debug flag is on.

    Every engine executor calls this right after ``optimize()``; it is a
    no-op unless ``REPRO_VERIFY_PLANS`` is set, so production paths pay
    one environment lookup.
    """
    if verification_enabled():
        verify_rewrite(original, optimized, schemas)


def maybe_verify_plan(plan: PlanNode, schemas) -> None:
    """Bridge hook: typecheck an incoming plan when the debug flag is on."""
    if verification_enabled():
        verified_schema(plan, schemas)


# --------------------------------------------------------------------------- #
# Self-check corpus (python -m repro.plan.verify)
# --------------------------------------------------------------------------- #

def _self_check_cases():
    """One deliberately malformed plan per rejection class."""
    from repro.plan.expressions import col, lit, opaque
    from repro.plan.logical import (
        Aggregate, ApproxAggregate, Filter, Pivot, Project, Sample,
    )
    from repro.plan.logical import Join as JoinNode

    meta = Scan("patients")
    facts = Scan("microarray")
    return [
        ("unknown-table", Filter(Scan("nonexistent"), col("age") < lit(1))),
        ("unknown-column", Filter(meta, col("weight") < lit(80))),
        ("comparison-type-mismatch", Filter(meta, col("name") < lit(40))),
        ("non-numeric-arithmetic", Filter(meta, (col("name") + lit(1)) > lit(0))),
        ("non-boolean-predicate", Filter(meta, col("age") + lit(1))),
        ("non-boolean-connective", Filter(meta, col("age") & (col("age") < lit(9)))),
        ("invalid-sample-fraction", Sample(meta, fraction=1.5)),
        ("projection-of-missing-column",
         Project(Project(meta, ("patient_id",)), ("patient_id", "age"))),
        ("unknown-join-key", JoinNode(meta, facts, "patient_id", "sample_id")),
        ("join-key-dtype-mismatch", JoinNode(meta, facts, "name", "patient_id")),
        ("unknown-aggregate-function",
         Aggregate(facts, "gene_id", "expression_value", "median")),
        ("non-numeric-aggregate", Aggregate(meta, "patient_id", "name", "sum")),
        ("non-numeric-pivot", Pivot(meta, "patient_id", "age", "name")),
        ("unknown-column", Filter(meta, opaque("weight", lambda v: v > 0))),
        # Approximate tier: a confidence level must be strictly interior,
        # and every admitted approx kind needs driver-side mergeable
        # partials (docs/APPROXIMATE.md).
        ("invalid-confidence",
         ApproxAggregate(meta, "age", "approx_mean", confidence=1.5)),
        ("non-mergeable-aggregate",
         ApproxAggregate(facts, "expression_value", "approx_mode")),
        ("non-numeric-aggregate",
         ApproxAggregate(meta, "name", "approx_distinct")),
    ]


def _self_check_schemas() -> dict:
    return {
        "patients": {
            "patient_id": np.dtype(np.int64),
            "age": np.dtype(np.int64),
            "name": np.dtype("U16"),
        },
        "microarray": {
            "patient_id": np.dtype(np.int64),
            "gene_id": np.dtype(np.int64),
            "expression_value": np.dtype(np.float64),
        },
    }


def run_self_check(verbose: bool = True) -> list[tuple[str, str]]:
    """Exercise every rejection class plus the rewrite-soundness trip.

    Returns ``(rule, status)`` rows; raises AssertionError on any miss.
    """
    from dataclasses import replace

    from repro.plan.expressions import col, lit
    from repro.plan.logical import Filter, Project
    from repro.plan.optimizer import optimize

    schemas = _self_check_schemas()
    rows: list[tuple[str, str]] = []
    for expected_rule, plan in _self_check_cases():
        try:
            verified_schema(plan, schemas)
        except PlanVerificationError as error:
            assert error.rule == expected_rule, (
                f"expected rule {expected_rule!r}, got {error.rule!r}: {error}"
            )
            rows.append((expected_rule, "rejected"))
            if verbose:
                print(f"  {expected_rule:32s} rejected: {error}")
            continue
        raise AssertionError(
            f"malformed plan for rule {expected_rule!r} verified clean"
        )

    # A well-formed plan must verify, and the real optimizer must preserve
    # its schema ...
    catalog = MappingCatalog(schemas)
    plan = Project(
        Filter(Scan("patients"), (col("age") < lit(40)) & (col("age") >= lit(18))),
        ("patient_id", "age"),
    )
    verify_rewrite(plan, optimize(plan, catalog), catalog)
    rows.append(("optimize-preserves-schema", "ok"))
    if verbose:
        print("  optimize-preserves-schema        ok")

    # ... while a schema-breaking "rewrite" (dropping a projected column)
    # must trip the soundness check.
    broken = replace(plan, columns=("patient_id",))
    try:
        verify_rewrite(plan, broken, catalog)
    except RewriteSoundnessError as error:
        rows.append(("rewrite-schema-drift", "caught"))
        if verbose:
            print(f"  rewrite-schema-drift             caught: {error}")
    else:
        raise AssertionError("schema-breaking rewrite passed the soundness check")
    return rows


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.plan.verify",
        description="Run the plan verifier's self-check corpus.",
    )
    parser.add_argument("--summary", default=None,
                        help="append a markdown summary table to this file "
                             "(CI passes $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)
    print("plan verifier self-check:")
    rows = run_self_check()
    print(f"OK: {len(rows)} checks passed")
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write("\n### Plan verifier self-check\n\n")
            handle.write("| check | status |\n|---|---|\n")
            for rule, status in rows:
                handle.write(f"| `{rule}` | {status} |\n")
    return 0


if __name__ == "__main__":
    # Delegate to the canonical module object so the error classes raised
    # during the self-check are the same ones the package exports.
    from repro.plan.verify import main as _main

    raise SystemExit(_main())
