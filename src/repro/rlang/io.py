"""CSV import/export for the R-like environment.

``read_csv`` / ``write_csv`` mirror R's ``read.csv`` / ``write.csv``.  They
are also the channel the "DBMS + external R" benchmark configurations move
data through: the DBMS serialises its query result to CSV text, the R side
parses it back into a data frame (or matrix), and both halves of that copy
are real work measured by the benchmark runner.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.datagen.writer import read_table_csv, write_table_csv
from repro.rlang.dataframe import DataFrame, REnvironment


def write_csv(frame: DataFrame, destination) -> int:
    """Write a data frame as CSV with a header row; returns rows written."""
    names = frame.names
    rows = zip(*[frame[name].tolist() for name in names], strict=True)
    return write_table_csv(rows, names, destination)


def read_csv(source, environment: REnvironment | None = None) -> DataFrame:
    """Read a CSV file (with header) into a data frame.

    Numeric-looking columns become float arrays; anything else stays as a
    string array (R's ``stringsAsFactors=FALSE`` behaviour).
    """
    columns, rows = read_table_csv(source)
    if not columns:
        raise ValueError("CSV input has no header row")
    if not rows:
        arrays = {name: np.empty(0, dtype=np.float64) for name in columns}
        return DataFrame(arrays, environment=environment)
    transposed = list(zip(*rows, strict=True))
    arrays = {}
    for name, values in zip(columns, transposed, strict=True):
        if all(isinstance(value, float) for value in values):
            arrays[name] = np.asarray(values, dtype=np.float64)
        else:
            arrays[name] = np.asarray([str(value) for value in values])
    return DataFrame(arrays, environment=environment)


def dataframe_to_csv_string(frame: DataFrame) -> str:
    """Serialise a data frame to an in-memory CSV string (the export half)."""
    buffer = io.StringIO()
    write_csv(frame, buffer)
    return buffer.getvalue()


def dataframe_from_csv_string(payload: str,
                              environment: REnvironment | None = None) -> DataFrame:
    """Parse a data frame from an in-memory CSV string (the import half)."""
    return read_csv(io.StringIO(payload), environment=environment)


def write_dataframe_file(frame: DataFrame, path) -> Path:
    """Write a data frame to ``path`` and return the path."""
    path = Path(path)
    write_csv(frame, path)
    return path
