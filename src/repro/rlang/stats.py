"""The R-like statistics library.

These functions mirror the R calls the original GenBase scripts make —
``lm`` for the regression query, ``cov`` for covariance, ``svd`` (here the
Lanczos truncated variant the benchmark specifies), the ``biclust`` package's
Cheng–Church method, and ``wilcox.test`` for enrichment.  They are thin,
named wrappers over the shared kernels in :mod:`repro.linalg`, because that
is what R itself is: an interface over BLAS/LAPACK plus contributed packages.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.biclustering import BiclusteringResult, cheng_church
from repro.linalg.covariance import covariance_matrix
from repro.linalg.lanczos import LanczosResult, lanczos_svd
from repro.linalg.qr import RegressionResult, linear_regression
from repro.linalg.wilcoxon import EnrichmentResult, WilcoxonResult, enrichment_analysis, rank_sum_test
from repro.rlang.dataframe import DataFrame


def lm(frame_or_features, target=None, feature_names=None,
       target_name: str | None = None) -> RegressionResult:
    """Fit a linear model, R's ``lm``.

    Two call styles are supported:

    * ``lm(features_matrix, target_vector)`` — plain arrays.
    * ``lm(frame, feature_names=[...], target_name="drug_response")`` — a
      data frame plus column names, closer to R's formula interface.
    """
    if isinstance(frame_or_features, DataFrame):
        if feature_names is None or target_name is None:
            raise ValueError("data-frame form needs feature_names and target_name")
        features = frame_or_features.as_matrix(feature_names)
        response = frame_or_features[target_name].astype(np.float64)
    else:
        if target is None:
            raise ValueError("array form needs an explicit target vector")
        features = np.asarray(frame_or_features, dtype=np.float64)
        response = np.asarray(target, dtype=np.float64)
    # R's lm is backed by LAPACK's QR.
    return linear_regression(features, response, method="lapack")


def cov(matrix: np.ndarray) -> np.ndarray:
    """Column covariance, R's ``cov``."""
    return covariance_matrix(matrix, ddof=1)


def svd(matrix: np.ndarray, k: int = 50, seed: int = 0) -> LanczosResult:
    """Truncated SVD via the Lanczos algorithm (the benchmark's choice)."""
    return lanczos_svd(matrix, k=k, seed=seed)


def biclust(matrix: np.ndarray, n_biclusters: int = 3, delta: float | None = None,
            seed: int = 0) -> BiclusteringResult:
    """Cheng–Church biclustering, the R ``biclust::BCCC`` equivalent."""
    return cheng_church(matrix, n_biclusters=n_biclusters, delta=delta, seed=seed)


def wilcox_test(first: np.ndarray, second: np.ndarray) -> WilcoxonResult:
    """Two-sample Wilcoxon rank-sum test, R's ``wilcox.test``."""
    return rank_sum_test(first, second)


def enrichment(gene_scores: np.ndarray, membership: np.ndarray,
               alpha: float = 0.05) -> EnrichmentResult:
    """Per-GO-term enrichment via repeated ``wilcox.test`` calls."""
    return enrichment_analysis(gene_scores, membership, alpha=alpha)
