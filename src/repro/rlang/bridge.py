"""Execute shared logical plans (:mod:`repro.plan`) on the R-like frames.

The fourth per-engine executor, next to
:func:`repro.colstore.planner.run_plan` (column store),
:func:`repro.relational.bridge.run_shared_plan` (row store) and
:func:`repro.arraydb.bridge.run_shared_plan` (array DBMS): the same plan
objects from :mod:`repro.core.queries` lower onto the R verbs —
``Filter`` becomes a vectorised :meth:`~repro.rlang.dataframe.DataFrame.subset`
(the expression evaluates over the frame's columns as one numpy mask),
``Project`` becomes ``select``, ``Join`` becomes ``merge`` (R's hash
join) re-ordered to the shared output convention, ``Sample`` becomes
``sample_rows``, and the ``Pivot`` terminal is the long-to-wide
``pivot_matrix`` reshape.  Every intermediate allocates through the
:class:`~repro.rlang.dataframe.REnvironment`, so the configuration's
memory ceiling bites exactly where it did before the migration.

The optimizer runs with :data:`R_CAPABILITIES`: conjunctions split into
stacked subsets and predicates push below the merge (the idiomatic
"subset before merge" every R programmer writes), but there is no
statistics-based filter reordering and no build-side choice — R's
``merge`` always hashes its right operand and the interpreter has no
optimizer to consult.

>>> import numpy as np
>>> from repro.plan import Filter, Join, Pivot, Scan, col
>>> from repro.rlang.dataframe import DataFrame
>>> frames = {
...     "patients": DataFrame({"patient_id": np.array([0, 1, 2]),
...                            "age": np.array([30, 50, 20])}),
...     "micro": DataFrame({"patient_id": np.array([0, 0, 1, 2]),
...                         "gene_id": np.array([0, 1, 0, 1]),
...                         "value": np.array([1.0, 2.0, 3.0, 4.0])}),
... }
>>> plan = Pivot(Join(Filter(Scan("patients"), col("age") < 45),
...                   Scan("micro"), "patient_id", "patient_id"),
...              "patient_id", "gene_id", "value")
>>> matrix, rows, cols = run_shared_plan(plan, frames)
>>> rows.tolist(), matrix.tolist()
([0, 2], [[1.0, 2.0], [0.0, 4.0]])
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.plan import logical
from repro.plan.observe import PlanObservation
from repro.plan.optimizer import (
    ColumnStats,
    OptimizerCapabilities,
    PlanCatalog,
    optimize,
    output_columns,
)
from repro.plan.verify import maybe_verify_rewrite
from repro.rlang.dataframe import DataFrame

#: The optimizer profile the R executor honours: splitting and pushdown
#: (subset-before-merge) plus pruning, but no statistics-driven filter
#: reordering and no join build-side choice (R's merge hashes the right
#: operand unconditionally).
R_CAPABILITIES = OptimizerCapabilities(
    filter_reordering=False, join_build_side=False
)


class RDataFrameCatalog(PlanCatalog):
    """Expose the data frames' schemas (and row counts) to the optimizer."""

    def __init__(self, frames: Mapping[str, DataFrame]):
        self.frames = dict(frames)

    def columns_of(self, table: str) -> list[str] | None:
        frame = self.frames.get(table)
        return None if frame is None else frame.names

    def stats_of(self, table: str, column: str) -> ColumnStats | None:
        frame = self.frames.get(table)
        if frame is None or column not in frame:
            return None
        return ColumnStats(row_count=len(frame))

    def dtype_of(self, table: str, column: str) -> np.dtype | None:
        frame = self.frames.get(table)
        if frame is None or column not in frame:
            return None
        return frame[column].dtype


def optimize_shared_plan(plan: logical.PlanNode,
                         frames: Mapping[str, DataFrame]) -> logical.PlanNode:
    """Run the shared optimizer with the frames' schemas."""
    return optimize(plan, RDataFrameCatalog(frames), R_CAPABILITIES)


def run_shared_plan(plan: logical.PlanNode, frames: Mapping[str, DataFrame],
                    optimized: bool = True,
                    observation: PlanObservation | None = None):
    """Execute a shared logical plan against in-memory R data frames.

    Relational-algebra plans return a :class:`DataFrame`;
    :class:`~repro.plan.logical.Aggregate` returns ``(group_keys,
    aggregates)`` sorted by key and :class:`~repro.plan.logical.Pivot`
    returns ``(matrix, row_labels, column_labels)`` with sorted labels —
    the shared executor contract.

    Args:
        plan: the shared logical plan tree.
        frames: scan name → :class:`DataFrame`.
        optimized: run the shared optimizer first (pass False to lower the
            plan exactly as written — the equivalence tests compare both).
        observation: optional :class:`~repro.plan.observe.PlanObservation`
            filled with the observed output cardinality.

    With the ``REPRO_VERIFY_PLANS`` debug flag set, the optimizer rewrite
    is checked by the static verifier (:mod:`repro.plan.verify`).
    """
    if optimized:
        written = plan
        plan = optimize_shared_plan(plan, frames)
        maybe_verify_rewrite(written, plan, RDataFrameCatalog(frames))
    if observation is not None:
        observation.engine = "vanilla-r"
    if isinstance(plan, logical.Aggregate):
        frame = _lower(plan.child, frames)
        keys, aggregates = _group_aggregate(
            frame, plan.group_by, plan.value, plan.function
        )
        if observation is not None:
            observation.output_rows = int(len(keys))
        return keys, aggregates
    if isinstance(plan, logical.Pivot):
        frame = _lower(plan.child, frames)
        matrix, row_labels, column_labels = frame.pivot_matrix(
            plan.row_key, plan.column_key, plan.value
        )
        if observation is not None:
            observation.output_rows = int(len(row_labels))
            observation.output_cells = int(matrix.size)
        return matrix, row_labels, column_labels
    frame = _lower(plan, frames)
    if observation is not None:
        observation.output_rows = int(len(frame))
    return frame


def _lower(node: logical.PlanNode, frames: Mapping[str, DataFrame]) -> DataFrame:
    if isinstance(node, logical.Scan):
        frame = frames.get(node.table)
        if frame is None:
            raise KeyError(f"no frame named {node.table!r}; have {sorted(frames)}")
        return frame
    if isinstance(node, logical.Filter):
        return _lower(node.child, frames).subset(node.predicate)
    if isinstance(node, logical.Project):
        return _lower(node.child, frames).select(list(node.columns))
    if isinstance(node, logical.Sample):
        return _lower(node.child, frames).sample_rows(node.fraction, node.seed)
    if isinstance(node, logical.Join):
        left = _lower(node.left, frames)
        right = _lower(node.right, frames)
        collisions = (set(left.names) & set(right.names)) - {node.right_key}
        if collisions:
            raise ValueError(
                f"join output columns collide: {sorted(collisions)}; project "
                "the inputs apart first"
            )
        merged = left.merge(right, by=node.left_key, by_other=node.right_key)
        shared_names = output_columns(node, RDataFrameCatalog(frames))
        if shared_names is None:
            shared_names = left.names + [
                name for name in right.names if name != node.right_key
            ]
        return merged.select(shared_names)
    raise TypeError(
        f"cannot execute plan node {type(node).__name__} on the R environment"
    )


def _group_aggregate(frame: DataFrame, group_by: str, value: str,
                     function: str) -> tuple[np.ndarray, np.ndarray]:
    """Single-key GROUP BY over a frame, vectorised with numpy.

    Returns sorted distinct keys and one aggregate per key, matching the
    column store's ``group_aggregate`` contract.
    """
    if function not in ("count", "sum", "mean", "min", "max"):
        raise ValueError(f"unsupported aggregate {function!r}")
    keys = frame[group_by]
    values = frame[value].astype(np.float64)
    labels, inverse = np.unique(keys, return_inverse=True)
    counts = np.bincount(inverse, minlength=len(labels))
    if function == "count":
        return labels, counts.astype(np.float64)
    if function in ("sum", "mean"):
        sums = np.bincount(inverse, weights=values, minlength=len(labels))
        if function == "sum":
            return labels, sums
        return labels, sums / counts
    out = np.full(len(labels), np.inf if function == "min" else -np.inf)
    scatter = np.minimum.at if function == "min" else np.maximum.at
    scatter(out, inverse, values)
    return labels, out
