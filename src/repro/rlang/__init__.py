"""An R-like in-memory statistics environment (the benchmark's "vanilla R").

The paper's baseline configuration is plain R: everything lives in main
memory, arrays are capped at 2³¹−1 cells, execution is single threaded, the
``merge`` function provides a hash join, and the analytics call down into
BLAS/LAPACK.  This package reproduces that environment:

* :mod:`repro.rlang.dataframe` — a column-oriented data frame with
  ``merge`` (hash join), ``subset``, ``order_by`` and matrix conversion,
  plus an explicit cell limit enforced on every allocation,
* :mod:`repro.rlang.io` — ``read_csv`` / ``write_csv``, used both for
  loading datasets and as the copy/reformat channel the "DBMS + external R"
  configurations pay for,
* :mod:`repro.rlang.stats` — ``lm``, ``cov``, ``svd``, ``biclust`` and
  ``wilcox_test`` built on the shared kernels of :mod:`repro.linalg`
  (the BLAS tier, as in R),
* :mod:`repro.rlang.bridge` — the shared-plan executor: lowers the
  engine-agnostic logical plans of :mod:`repro.plan` onto the R verbs
  (vectorised ``subset``, ``merge``, ``pivot_matrix``).
"""

from repro.rlang.dataframe import DataFrame, RMemoryError, REnvironment
from repro.rlang.io import read_csv, write_csv, dataframe_from_csv_string, dataframe_to_csv_string
from repro.rlang.stats import lm, cov, svd, biclust, wilcox_test, enrichment
from repro.rlang import bridge

__all__ = [
    "DataFrame",
    "REnvironment",
    "RMemoryError",
    "read_csv",
    "write_csv",
    "dataframe_from_csv_string",
    "dataframe_to_csv_string",
    "lm",
    "cov",
    "svd",
    "biclust",
    "wilcox_test",
    "enrichment",
    "bridge",
]
