"""The R-like data frame and environment.

R's data model matters for the benchmark in three ways the paper calls out:

* everything must fit in main memory,
* a single array may not exceed 2³¹−1 cells (R's long-vector limit at the
  time of the paper),
* execution is single threaded.

:class:`REnvironment` carries those limits; :class:`DataFrame` checks its
allocations against the active environment so the "vanilla R cannot load
the large dataset" behaviour emerges naturally instead of being special
cased in the benchmark driver.

Row filters speak the shared expression AST: a :class:`DataFrame` is a
column batch (name → vector), so :meth:`DataFrame.subset` evaluates an
:class:`~repro.plan.expressions.Expression` vectorised over its columns
with ``Expression.evaluate`` — the same tree the other engines compile to
row callables or push into compression encodings.  Raw mask callables are
still accepted but deprecated.  Shared logical plans are lowered onto
these verbs by :mod:`repro.rlang.bridge`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.plan.expressions import Expression


class RMemoryError(MemoryError):
    """Raised when an allocation exceeds the R environment's limits.

    Mirrors R's "cannot allocate vector of size ..." failure mode.
    """


@dataclass
class REnvironment:
    """Resource limits for the R-like environment.

    Attributes:
        max_cells: maximum number of cells in any single object (R's
            2³¹−1 limit by default; the benchmark scales this down alongside
            its scaled-down dataset presets).
        max_total_bytes: soft cap on the sum of live data-frame/matrix bytes
            (models the machine's RAM); ``None`` disables the check.
    """

    max_cells: int = 2**31 - 1
    max_total_bytes: int | None = None
    _live_bytes: int = 0

    def check_allocation(self, n_cells: int, n_bytes: int) -> None:
        """Validate one allocation against the limits.

        Raises:
            RMemoryError: if the allocation exceeds either limit.
        """
        if n_cells > self.max_cells:
            raise RMemoryError(
                f"cannot allocate object with {n_cells} cells "
                f"(limit {self.max_cells})"
            )
        if self.max_total_bytes is not None and self._live_bytes + n_bytes > self.max_total_bytes:
            raise RMemoryError(
                f"cannot allocate {n_bytes} bytes: {self._live_bytes} already live, "
                f"limit {self.max_total_bytes}"
            )
        self._live_bytes += n_bytes

    def release(self, n_bytes: int) -> None:
        """Return bytes to the pool (garbage collection)."""
        self._live_bytes = max(0, self._live_bytes - n_bytes)


#: The default, effectively unlimited environment (standalone library use).
_DEFAULT_ENVIRONMENT = REnvironment()


class DataFrame:
    """A column-oriented data frame with R-flavoured verbs."""

    def __init__(self, columns: Mapping[str, np.ndarray],
                 environment: REnvironment | None = None):
        if not columns:
            raise ValueError("a data frame needs at least one column")
        self.environment = environment or _DEFAULT_ENVIRONMENT
        arrays = {}
        length = None
        total_cells = 0
        total_bytes = 0
        for name, values in columns.items():
            array = np.asarray(values)
            if array.ndim != 1:
                raise ValueError(f"column {name!r} must be one-dimensional")
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise ValueError(
                    f"column {name!r} has length {len(array)}, expected {length}"
                )
            arrays[name] = array
            total_cells += array.size
            total_bytes += array.nbytes
        self.environment.check_allocation(total_cells, total_bytes)
        self._columns = arrays
        self._nbytes = total_bytes

    # -- basics -----------------------------------------------------------------

    def __len__(self) -> int:
        first = next(iter(self._columns.values()))
        return len(first)

    def __del__(self):
        try:
            self.environment.release(self._nbytes)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    @property
    def names(self) -> list[str]:
        """Column names in insertion order (R's ``names(df)``)."""
        return list(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"no column {name!r}; data frame has {self.names}") from None

    def head(self, n: int = 6) -> dict[str, list]:
        """First ``n`` rows as a plain dict (for printing in examples)."""
        return {name: values[:n].tolist() for name, values in self._columns.items()}

    # -- R verbs ------------------------------------------------------------------

    def subset(self, predicate: Expression | Callable[["DataFrame"], np.ndarray]) -> "DataFrame":
        """Row filter by a shared-AST expression, evaluated vectorised.

        The expression's column references resolve against this frame's
        columns (the frame itself is the evaluation batch), so
        ``frame.subset(col("age") < 40)`` runs as one numpy mask — R's
        idiomatic vectorised ``subset``.  A raw callable receiving the
        frame and returning a boolean mask is still accepted but
        **deprecated** (it is opaque to the shared planner).

        Raises:
            KeyError: when the expression references a missing column.
            ValueError: when the produced mask is not one boolean per row.
        """
        if isinstance(predicate, Expression):
            mask = np.asarray(predicate.evaluate(self), dtype=bool)
        else:
            warnings.warn(
                "DataFrame.subset(<callable>) is deprecated; pass an expression "
                "built with repro.plan.col instead",
                DeprecationWarning,
                stacklevel=2,
            )
            mask = np.asarray(predicate(self), dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError("predicate must return one boolean per row")
        return DataFrame(
            {name: values[mask] for name, values in self._columns.items()},
            environment=self.environment,
        )

    def select(self, names: Sequence[str]) -> "DataFrame":
        """Column projection."""
        return DataFrame({name: self[name] for name in names}, environment=self.environment)

    def order_by(self, name: str, decreasing: bool = False) -> "DataFrame":
        """Sort rows by one column."""
        order = np.argsort(self[name], kind="mergesort")
        if decreasing:
            order = order[::-1]
        return DataFrame(
            {column: values[order] for column, values in self._columns.items()},
            environment=self.environment,
        )

    def merge(self, other: "DataFrame", by: str, by_other: str | None = None,
              suffix: str = "_y") -> "DataFrame":
        """Inner join (R's ``merge``), implemented as a hash join.

        Args:
            other: right data frame.
            by: join key column in this frame.
            by_other: join key column in ``other`` (defaults to ``by``).
            suffix: appended to right-side columns whose names collide.
        """
        by_other = by_other or by
        left_keys = self[by]
        right_keys = other[by_other]

        index: dict[object, list[int]] = {}
        for position, key in enumerate(right_keys.tolist()):
            index.setdefault(key, []).append(position)

        left_positions: list[int] = []
        right_positions: list[int] = []
        for position, key in enumerate(left_keys.tolist()):
            matches = index.get(key)
            if not matches:
                continue
            for match in matches:
                left_positions.append(position)
                right_positions.append(match)

        left_index = np.asarray(left_positions, dtype=np.int64)
        right_index = np.asarray(right_positions, dtype=np.int64)

        columns: dict[str, np.ndarray] = {
            name: values[left_index] for name, values in self._columns.items()
        }
        for name, values in other._columns.items():
            if name == by_other:
                continue
            output_name = name if name not in columns else f"{name}{suffix}"
            columns[output_name] = values[right_index]
        return DataFrame(columns, environment=self.environment)

    def sample_rows(self, fraction: float, seed: int = 0) -> "DataFrame":
        """Deterministic row sample (R's ``sample`` + subsetting)."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        n_keep = max(1, int(round(fraction * len(self))))
        positions = np.sort(rng.choice(len(self), size=n_keep, replace=False))
        return DataFrame(
            {name: values[positions] for name, values in self._columns.items()},
            environment=self.environment,
        )

    # -- matrix interop -----------------------------------------------------------------

    def as_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Convert (a projection of) the frame into a dense float matrix.

        The allocation is checked against the environment limits — this is
        where "R cannot load the large dataset into memory" bites.
        """
        names = list(names) if names is not None else self.names
        n_cells = len(self) * len(names)
        self.environment.check_allocation(n_cells, n_cells * 8)
        try:
            return np.column_stack([self[name].astype(np.float64) for name in names])
        finally:
            self.environment.release(n_cells * 8)

    def pivot_matrix(self, row_key: str, column_key: str, value: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Long-to-wide pivot (R's ``reshape``/``acast``), limit checked."""
        rows = self[row_key]
        cols = self[column_key]
        values = self[value].astype(np.float64)
        row_labels, row_positions = np.unique(rows, return_inverse=True)
        column_labels, column_positions = np.unique(cols, return_inverse=True)
        n_cells = len(row_labels) * len(column_labels)
        self.environment.check_allocation(n_cells, n_cells * 8)
        try:
            matrix = np.zeros((len(row_labels), len(column_labels)), dtype=np.float64)
            matrix[row_positions, column_positions] = values
            return matrix, row_labels, column_labels
        finally:
            self.environment.release(n_cells * 8)
