"""Gene ontology (GO) membership generator.

The GO dataset (paper Section 3.1.4) is a sparse 0/1 matrix relating genes to
GO categories:

* relational form: ``gene_ontology(gene_id, go_id, belongs)``
* array form: ``belongs[gene_id, go_id]``

A gene may belong to several categories (GO is a DAG of biological
processes).  To give the enrichment query (Q5) real signal, a few *enriched*
GO terms are built mostly from the differentially expressed genes planted by
the microarray generator; the remaining terms draw members uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.microarray import MicroarrayData
from repro.datagen.sizes import SizeSpec, resolve_size

#: Column order of the relational form of the GO membership table.
ONTOLOGY_COLUMNS = ("gene_id", "go_id", "belongs")


@dataclass
class GeneOntologyData:
    """Generated GO membership data.

    Attributes:
        membership: dense ``(n_genes, n_go_terms)`` int8 0/1 matrix
            (the array form).
        enriched_terms: go_ids whose member genes were drawn preferentially
            from the differentially expressed gene set (ground truth for Q5).
    """

    membership: np.ndarray
    enriched_terms: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))

    @property
    def n_genes(self) -> int:
        return self.membership.shape[0]

    @property
    def n_go_terms(self) -> int:
        return self.membership.shape[1]

    def members(self, go_id: int) -> np.ndarray:
        """Return the gene ids belonging to ``go_id``."""
        return np.flatnonzero(self.membership[:, go_id])

    def to_relational(self, include_zeros: bool = True) -> np.ndarray:
        """Return the relational form as an ``(n_rows, 3)`` float array.

        Args:
            include_zeros: if True (the paper's schema) every (gene, GO) pair
                is emitted with an explicit 0/1 flag; if False only the
                memberships are emitted (a sparse encoding).
        """
        n_genes, n_terms = self.membership.shape
        if include_zeros:
            gene_ids, go_ids = np.meshgrid(
                np.arange(n_genes), np.arange(n_terms), indexing="ij"
            )
            return np.column_stack(
                [gene_ids.ravel(), go_ids.ravel(), self.membership.ravel()]
            ).astype(np.float64)
        gene_idx, go_idx = np.nonzero(self.membership)
        return np.column_stack(
            [gene_idx, go_idx, np.ones(len(gene_idx))]
        ).astype(np.float64)

    def rows(self, include_zeros: bool = True):
        """Yield relational tuples ``(gene_id, go_id, belongs)``."""
        table = self.to_relational(include_zeros=include_zeros)
        for gene_id, go_id, belongs in table:
            yield (int(gene_id), int(go_id), int(belongs))


def generate_ontology(
    spec: SizeSpec | str,
    microarray: MicroarrayData | None = None,
    seed: int = 0,
    membership_prob: float = 0.08,
    n_enriched_terms: int = 3,
) -> GeneOntologyData:
    """Generate a GO membership matrix for ``spec.n_genes`` × ``spec.n_go_terms``.

    Args:
        spec: size preset or spec.
        microarray: if given, its planted differentially expressed genes are
            used to build enriched GO terms; if None all terms are random.
        seed: RNG seed.
        membership_prob: background probability that a gene belongs to a term.
        n_enriched_terms: number of terms enriched in differential genes.
    """
    spec = resolve_size(spec)
    rng = np.random.default_rng(seed + 3)
    n_genes, n_terms = spec.n_genes, spec.n_go_terms

    membership = (rng.random((n_genes, n_terms)) < membership_prob).astype(np.int8)

    # Guarantee every term has at least two members so the rank-sum test is
    # defined for every go_id.
    for go_id in range(n_terms):
        if membership[:, go_id].sum() < 2:
            fill = rng.choice(n_genes, size=min(2, n_genes), replace=False)
            membership[fill, go_id] = 1

    enriched_terms = np.empty(0, dtype=np.intp)
    if microarray is not None and len(microarray.structure.differential_genes):
        diff_genes = microarray.structure.differential_genes
        n_enriched = min(n_enriched_terms, n_terms)
        enriched_terms = rng.choice(n_terms, size=n_enriched, replace=False)
        for go_id in enriched_terms:
            membership[:, go_id] = 0
            # ~80% of the enriched term's members come from the differential set.
            n_members = max(3, len(diff_genes) // 2)
            chosen = rng.choice(diff_genes, size=min(n_members, len(diff_genes)), replace=False)
            membership[chosen, go_id] = 1
            n_background = max(1, n_members // 5)
            background = rng.choice(n_genes, size=min(n_background, n_genes), replace=False)
            membership[background, go_id] = 1

    return GeneOntologyData(
        membership=membership,
        enriched_terms=np.sort(enriched_terms.astype(np.intp)),
    )
