"""CSV import/export for GenBase datasets.

Two distinct uses:

1. Persisting a generated dataset to disk so it can be shared / reloaded
   (``write_dataset_csv``), mirroring the downloadable data files on the
   original GenBase website.
2. Modelling the *copy and reformat* cost the paper highlights for
   configurations that bolt an external analytics package (R) onto a DBMS:
   the "+ R" engine adapters serialise intermediate results through these
   writers and re-parse them, so the overhead is real, not simulated.

The format is plain CSV with a header row; floats are written with full
``repr`` precision so round-trips are exact to float64.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np


def write_matrix_csv(matrix: np.ndarray, destination) -> int:
    """Write a dense 2-D matrix as CSV (no header).

    Args:
        matrix: 2-D numpy array.
        destination: a path or an open text file object.

    Returns:
        The number of data rows written.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("write_matrix_csv expects a 2-D array")
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            return write_matrix_csv(matrix, handle)
    writer = csv.writer(destination)
    for row in matrix:
        writer.writerow([repr(float(value)) for value in row])
    return matrix.shape[0]


def read_matrix_csv(source) -> np.ndarray:
    """Read a dense matrix previously written by :func:`write_matrix_csv`."""
    if isinstance(source, (str, Path)):
        with open(source, newline="") as handle:
            return read_matrix_csv(handle)
    rows = [list(map(float, row)) for row in csv.reader(source) if row]
    if not rows:
        return np.empty((0, 0))
    return np.asarray(rows, dtype=np.float64)


def write_table_csv(
    rows: Iterable[Sequence],
    columns: Sequence[str],
    destination,
) -> int:
    """Write an iterable of tuples as a CSV table with a header row.

    Returns:
        The number of data rows written.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            return write_table_csv(rows, columns, handle)
    writer = csv.writer(destination)
    writer.writerow(columns)
    count = 0
    for row in rows:
        writer.writerow(row)
        count += 1
    return count


def read_table_csv(source) -> tuple[list[str], list[tuple]]:
    """Read a CSV table with a header; values are parsed as float when possible.

    Returns:
        ``(columns, rows)`` where rows are tuples of float/str values.
    """
    if isinstance(source, (str, Path)):
        with open(source, newline="") as handle:
            return read_table_csv(handle)
    reader = csv.reader(source)
    try:
        columns = next(reader)
    except StopIteration:
        return [], []
    rows = []
    for raw in reader:
        if not raw:
            continue
        parsed = []
        for value in raw:
            try:
                parsed.append(float(value))
            except ValueError:
                parsed.append(value)
        rows.append(tuple(parsed))
    return list(columns), rows


def matrix_to_csv_string(matrix: np.ndarray) -> str:
    """Serialise a matrix to an in-memory CSV string.

    Used by the "+ external R" engine adapters to model the export half of
    the DBMS → R data transfer.
    """
    buffer = io.StringIO()
    write_matrix_csv(matrix, buffer)
    return buffer.getvalue()


def matrix_from_csv_string(payload: str) -> np.ndarray:
    """Parse a matrix from an in-memory CSV string (the import half)."""
    return read_matrix_csv(io.StringIO(payload))


def write_dataset_csv(dataset, directory) -> dict[str, Path]:
    """Write all four GenBase tables of ``dataset`` into ``directory``.

    Args:
        dataset: a :class:`repro.datagen.GenBaseDataset`.
        directory: destination directory (created if missing).

    Returns:
        Mapping of logical table name to the file written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "microarray": directory / "microarray.csv",
        "patients": directory / "patients.csv",
        "genes": directory / "genes.csv",
        "ontology": directory / "ontology.csv",
    }
    write_table_csv(
        dataset.microarray.rows(),
        ("gene_id", "patient_id", "expression_value"),
        paths["microarray"],
    )
    write_table_csv(
        dataset.patients.rows(),
        ("patient_id", "age", "gender", "zipcode", "disease_id", "drug_response"),
        paths["patients"],
    )
    write_table_csv(
        dataset.genes.rows(),
        ("gene_id", "target", "position", "length", "function"),
        paths["genes"],
    )
    write_table_csv(
        dataset.ontology.rows(include_zeros=False),
        ("gene_id", "go_id", "belongs"),
        paths["ontology"],
    )
    return paths
