"""Dataset size presets for the GenBase benchmark.

The paper (Section 3.1.1) defines four microarray sizes:

* small:       5,000 genes ×  5,000 patients
* medium:     15,000 genes × 20,000 patients
* large:      30,000 genes × 40,000 patients
* extra large: 60,000 genes × 70,000 patients  (no system completed this one)

Those sizes target a 4-node cluster with 48 GB of RAM per node.  This
reproduction runs on a single laptop-scale machine, so the *default* presets
("tiny" … "large") are scaled-down versions of the paper grid that preserve
the aspect ratios and the relative growth factors between consecutive sizes.
The original paper sizes are available under the ``paper-*`` names for users
with the hardware to run them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SizeSpec:
    """Parameters controlling the size of one generated GenBase dataset.

    Attributes:
        name: preset name (or a custom label).
        n_genes: number of genes (columns of the microarray matrix).
        n_patients: number of patients / samples (rows of the matrix).
        n_go_terms: number of gene-ontology categories.
        n_diseases: number of distinct diseases in the patient metadata.
        n_functions: number of distinct gene-function codes.
        latent_rank: rank of the planted low-rank expression structure.
        n_biclusters: number of planted biclusters.
        n_causal_genes: genes that actually drive drug response.
    """

    name: str
    n_genes: int
    n_patients: int
    n_go_terms: int = 50
    n_diseases: int = 21
    n_functions: int = 500
    latent_rank: int = 10
    n_biclusters: int = 3
    n_causal_genes: int = 20

    def __post_init__(self) -> None:
        if self.n_genes < 1 or self.n_patients < 1:
            raise ValueError("dataset must have at least one gene and one patient")
        if self.n_go_terms < 1:
            raise ValueError("dataset must have at least one GO term")
        if self.latent_rank < 1:
            raise ValueError("latent_rank must be positive")
        if self.n_causal_genes > self.n_genes:
            raise ValueError("n_causal_genes cannot exceed n_genes")

    @property
    def n_cells(self) -> int:
        """Number of cells in the dense microarray matrix."""
        return self.n_genes * self.n_patients

    @property
    def microarray_bytes(self) -> int:
        """Approximate size of the dense microarray matrix in float64 bytes."""
        return self.n_cells * 8

    def scaled(self, factor: float, name: str | None = None) -> "SizeSpec":
        """Return a new spec with both matrix dimensions scaled by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return SizeSpec(
            name=name or f"{self.name}-x{factor:g}",
            n_genes=max(1, int(round(self.n_genes * factor))),
            n_patients=max(1, int(round(self.n_patients * factor))),
            n_go_terms=self.n_go_terms,
            n_diseases=self.n_diseases,
            n_functions=self.n_functions,
            latent_rank=self.latent_rank,
            n_biclusters=self.n_biclusters,
            n_causal_genes=min(self.n_causal_genes, max(1, int(round(self.n_genes * factor)))),
        )


def _preset(name: str, genes: int, patients: int, **kwargs: int) -> SizeSpec:
    return SizeSpec(name=name, n_genes=genes, n_patients=patients, **kwargs)


#: Scaled-down defaults (laptop scale) plus the original paper sizes.
#: The scaled presets preserve the paper's genes:patients aspect ratios and
#: the ~3x/2x growth factors between consecutive sizes.
SIZE_PRESETS: dict[str, SizeSpec] = {
    # Reproduction-scale grid: small/medium/large mirror the paper's
    # 5k x 5k, 15k x 20k and 30k x 40k shapes at 1/50 linear scale.
    "tiny": _preset("tiny", genes=50, patients=60, n_go_terms=12,
                    n_functions=40, latent_rank=4, n_causal_genes=6),
    "small": _preset("small", genes=100, patients=100, n_go_terms=20,
                     n_functions=100, latent_rank=6, n_causal_genes=10),
    "medium": _preset("medium", genes=300, patients=400, n_go_terms=40,
                      n_functions=250, latent_rank=8, n_causal_genes=15),
    "large": _preset("large", genes=600, patients=800, n_go_terms=60,
                     n_functions=500, latent_rank=10, n_causal_genes=20),
    "xlarge": _preset("xlarge", genes=1200, patients=1400, n_go_terms=80,
                      n_functions=500, latent_rank=12, n_causal_genes=25),
    # Original paper sizes (Section 3.1.1).  These need cluster-class memory.
    "paper-small": _preset("paper-small", genes=5_000, patients=5_000),
    "paper-medium": _preset("paper-medium", genes=15_000, patients=20_000),
    "paper-large": _preset("paper-large", genes=30_000, patients=40_000),
    "paper-xlarge": _preset("paper-xlarge", genes=60_000, patients=70_000),
}

#: The three sizes the paper actually reports numbers for, in report order.
PAPER_REPORTED_SIZES = ("small", "medium", "large")


def resolve_size(size: "str | SizeSpec") -> SizeSpec:
    """Resolve a preset name or pass through an explicit :class:`SizeSpec`.

    Raises:
        KeyError: if ``size`` is a string that names no known preset.
    """
    if isinstance(size, SizeSpec):
        return size
    try:
        return SIZE_PRESETS[size]
    except KeyError:
        known = ", ".join(sorted(SIZE_PRESETS))
        raise KeyError(f"unknown size preset {size!r}; known presets: {known}") from None
