"""Patient metadata generator.

The patient metadata table (paper Section 3.1.2) records, for every patient
in the microarray matrix:

* ``patient_id`` — matches the row index of the microarray matrix,
* ``age`` — years,
* ``gender`` — 0 (female) or 1 (male); the paper prints F/M,
* ``zipcode`` — a 5-digit US-style zip code,
* ``disease_id`` — an integer code in ``[1, n_diseases]``,
* ``drug_response`` — a continuous response score.

Drug response is generated as a linear function of the expression of the
*causal genes* planted by :mod:`repro.datagen.microarray` plus noise, so the
regression query (Q1) has a recoverable signal, and its R² degrades
gracefully with the generator's noise level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.microarray import MicroarrayData
from repro.datagen.sizes import SizeSpec, resolve_size

#: Column order of the relational form of the patient metadata table.
PATIENT_COLUMNS = ("patient_id", "age", "gender", "zipcode", "disease_id", "drug_response")


@dataclass
class PatientMetadata:
    """Generated patient metadata, column-oriented.

    All arrays have length ``n_patients`` and share the patient-id order of
    the microarray matrix rows.
    """

    patient_id: np.ndarray
    age: np.ndarray
    gender: np.ndarray
    zipcode: np.ndarray
    disease_id: np.ndarray
    drug_response: np.ndarray

    @property
    def n_patients(self) -> int:
        return len(self.patient_id)

    def to_relational(self) -> np.ndarray:
        """Return an ``(n_patients, 6)`` float array in ``PATIENT_COLUMNS`` order."""
        return np.column_stack(
            [
                self.patient_id,
                self.age,
                self.gender,
                self.zipcode,
                self.disease_id,
                self.drug_response,
            ]
        ).astype(np.float64)

    def column(self, name: str) -> np.ndarray:
        """Return one column by name (see ``PATIENT_COLUMNS``)."""
        if name not in PATIENT_COLUMNS:
            raise KeyError(f"unknown patient column {name!r}")
        return getattr(self, name)

    def rows(self):
        """Yield relational tuples in ``PATIENT_COLUMNS`` order."""
        for i in range(self.n_patients):
            yield (
                int(self.patient_id[i]),
                int(self.age[i]),
                int(self.gender[i]),
                int(self.zipcode[i]),
                int(self.disease_id[i]),
                float(self.drug_response[i]),
            )


def generate_patients(
    spec: SizeSpec | str,
    microarray: MicroarrayData,
    seed: int = 0,
    response_noise: float = 0.5,
) -> PatientMetadata:
    """Generate patient metadata consistent with a microarray matrix.

    Args:
        spec: size preset or spec; ``spec.n_patients`` must match the matrix.
        microarray: the expression data whose planted causal genes drive the
            drug-response column.
        seed: RNG seed (independent of the microarray seed).
        response_noise: standard deviation of the noise added to the linear
            drug-response model.

    Raises:
        ValueError: if the spec and the microarray disagree on patient count.
    """
    spec = resolve_size(spec)
    if spec.n_patients != microarray.n_patients:
        raise ValueError(
            f"spec says {spec.n_patients} patients but microarray has "
            f"{microarray.n_patients}"
        )

    rng = np.random.default_rng(seed + 1)
    n = spec.n_patients

    age = rng.integers(18, 95, size=n)
    gender = rng.integers(0, 2, size=n)
    zipcode = rng.integers(1000, 99999, size=n)
    disease_id = rng.integers(1, spec.n_diseases + 1, size=n)

    structure = microarray.structure
    causal = structure.causal_genes
    weights = structure.causal_weights
    if len(causal):
        causal_expression = microarray.matrix[:, causal]
        signal = causal_expression @ weights
    else:
        signal = np.zeros(n)
    drug_response = signal + response_noise * rng.standard_normal(n)

    return PatientMetadata(
        patient_id=np.arange(n, dtype=np.int64),
        age=age.astype(np.int64),
        gender=gender.astype(np.int64),
        zipcode=zipcode.astype(np.int64),
        disease_id=disease_id.astype(np.int64),
        drug_response=drug_response.astype(np.float64),
    )
