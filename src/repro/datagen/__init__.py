"""Synthetic genomics data generators for the GenBase benchmark.

The paper uses four related datasets (Section 3.1):

* **Microarray data** — a dense patients × genes matrix of expression values.
* **Patient metadata** — (patient id, age, gender, zipcode, disease id,
  drug response).
* **Gene metadata** — (gene id, target gene, position, length, function).
* **Gene ontology (GO) data** — a sparse 0/1 membership matrix between genes
  and GO categories.

The generators here are deterministic given a seed and produce data with
*planted structure* so that every benchmark query has a meaningful answer:

* the expression matrix is low-rank-plus-noise, so the Lanczos SVD (Q4)
  recovers a clear spectral gap;
* a handful of "causal" genes drive the drug-response column, so the QR
  regression (Q1) recovers non-trivial coefficients;
* co-regulated gene modules create blocks of high covariance (Q2) and
  planted biclusters (Q3);
* a few GO categories are enriched in differentially expressed genes, so the
  Wilcoxon enrichment query (Q5) finds significant terms.
"""

from repro.datagen.sizes import SizeSpec, SIZE_PRESETS, resolve_size
from repro.datagen.microarray import MicroarrayData, generate_microarray
from repro.datagen.patients import PatientMetadata, generate_patients
from repro.datagen.genes import GeneMetadata, generate_genes
from repro.datagen.ontology import GeneOntologyData, generate_ontology
from repro.datagen.dataset import GenBaseDataset
from repro.datagen.writer import (
    write_dataset_csv,
    read_matrix_csv,
    write_matrix_csv,
    read_table_csv,
    write_table_csv,
)

__all__ = [
    "SizeSpec",
    "SIZE_PRESETS",
    "resolve_size",
    "MicroarrayData",
    "generate_microarray",
    "PatientMetadata",
    "generate_patients",
    "GeneMetadata",
    "generate_genes",
    "GeneOntologyData",
    "generate_ontology",
    "GenBaseDataset",
    "write_dataset_csv",
    "read_matrix_csv",
    "write_matrix_csv",
    "read_table_csv",
    "write_table_csv",
]
