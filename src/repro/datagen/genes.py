"""Gene metadata generator.

The gene metadata table (paper Section 3.1.3) records, for every gene in the
microarray matrix:

* ``gene_id`` — matches the column index of the microarray matrix,
* ``target`` — the id of another gene targeted by this gene's protein,
* ``position`` — base pairs from the start of the chromosome to the gene,
* ``length`` — gene length in base pairs,
* ``function`` — the gene's biological function coded as an integer.

The benchmark's "select genes with ``function < threshold``" predicates (Q1
and Q4) rely on the function codes being roughly uniform over
``[0, n_functions)`` so a threshold selects a predictable fraction of genes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.sizes import SizeSpec, resolve_size

#: Column order of the relational form of the gene metadata table.
GENE_COLUMNS = ("gene_id", "target", "position", "length", "function")


@dataclass
class GeneMetadata:
    """Generated gene metadata, column-oriented (length ``n_genes`` arrays)."""

    gene_id: np.ndarray
    target: np.ndarray
    position: np.ndarray
    length: np.ndarray
    function: np.ndarray

    @property
    def n_genes(self) -> int:
        return len(self.gene_id)

    def to_relational(self) -> np.ndarray:
        """Return an ``(n_genes, 5)`` float array in ``GENE_COLUMNS`` order."""
        return np.column_stack(
            [self.gene_id, self.target, self.position, self.length, self.function]
        ).astype(np.float64)

    def column(self, name: str) -> np.ndarray:
        """Return one column by name (see ``GENE_COLUMNS``)."""
        if name not in GENE_COLUMNS:
            raise KeyError(f"unknown gene column {name!r}")
        return getattr(self, name)

    def rows(self):
        """Yield relational tuples in ``GENE_COLUMNS`` order."""
        for i in range(self.n_genes):
            yield (
                int(self.gene_id[i]),
                int(self.target[i]),
                int(self.position[i]),
                int(self.length[i]),
                int(self.function[i]),
            )


def generate_genes(spec: SizeSpec | str, seed: int = 0) -> GeneMetadata:
    """Generate gene metadata for a dataset of ``spec.n_genes`` genes.

    The target pointers form a random functional graph over the gene ids
    (self-targets are avoided when there is more than one gene); positions
    are drawn so genes are laid out along a synthetic chromosome without
    overlapping on average; lengths follow a log-normal distribution similar
    to real human gene lengths; function codes are uniform over
    ``[0, spec.n_functions)``.
    """
    spec = resolve_size(spec)
    rng = np.random.default_rng(seed + 2)
    n = spec.n_genes

    gene_id = np.arange(n, dtype=np.int64)

    target = rng.integers(0, n, size=n)
    if n > 1:
        self_targets = target == gene_id
        # re-point self-targets at the next gene (mod n) to keep the graph simple
        target[self_targets] = (gene_id[self_targets] + 1) % n

    length = np.maximum(50, rng.lognormal(mean=7.0, sigma=1.0, size=n)).astype(np.int64)
    gaps = rng.integers(100, 10_000, size=n)
    position = np.cumsum(gaps + length) - length
    function = rng.integers(0, spec.n_functions, size=n)

    return GeneMetadata(
        gene_id=gene_id,
        target=target.astype(np.int64),
        position=position.astype(np.int64),
        length=length,
        function=function.astype(np.int64),
    )
