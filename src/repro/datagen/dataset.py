"""The bundled GenBase dataset: microarray + patients + genes + GO.

:class:`GenBaseDataset` is the object every engine adapter loads from.  It
holds the four generated tables plus the size spec and seed used to produce
them, and provides the relational/array conversions the engines need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.genes import GeneMetadata, generate_genes
from repro.datagen.microarray import MicroarrayData, generate_microarray
from repro.datagen.ontology import GeneOntologyData, generate_ontology
from repro.datagen.patients import PatientMetadata, generate_patients
from repro.datagen.sizes import SizeSpec, resolve_size


@dataclass
class GenBaseDataset:
    """All four GenBase tables generated from one (size, seed) pair."""

    spec: SizeSpec
    seed: int
    microarray: MicroarrayData
    patients: PatientMetadata
    genes: GeneMetadata
    ontology: GeneOntologyData

    @classmethod
    def generate(cls, size: SizeSpec | str, seed: int = 0) -> "GenBaseDataset":
        """Generate a full, mutually consistent GenBase dataset.

        Args:
            size: preset name (``"tiny"`` … ``"large"``, or ``"paper-*"``)
                or an explicit :class:`SizeSpec`.
            seed: master seed; each table derives its own stream from it.
        """
        spec = resolve_size(size)
        microarray = generate_microarray(spec, seed=seed)
        patients = generate_patients(spec, microarray, seed=seed)
        genes = generate_genes(spec, seed=seed)
        ontology = generate_ontology(spec, microarray, seed=seed)
        return cls(
            spec=spec,
            seed=seed,
            microarray=microarray,
            patients=patients,
            genes=genes,
            ontology=ontology,
        )

    # ------------------------------------------------------------------ #
    # Convenience accessors used by the engine adapters.
    # ------------------------------------------------------------------ #

    @property
    def n_genes(self) -> int:
        return self.spec.n_genes

    @property
    def n_patients(self) -> int:
        return self.spec.n_patients

    @property
    def expression_matrix(self) -> np.ndarray:
        """The dense ``(n_patients, n_genes)`` expression matrix."""
        return self.microarray.matrix

    def microarray_relational(self) -> np.ndarray:
        """Relational microarray table ``(gene_id, patient_id, value)``."""
        return self.microarray.to_relational()

    def patients_relational(self) -> np.ndarray:
        """Relational patient metadata table."""
        return self.patients.to_relational()

    def genes_relational(self) -> np.ndarray:
        """Relational gene metadata table."""
        return self.genes.to_relational()

    def ontology_relational(self, include_zeros: bool = False) -> np.ndarray:
        """Relational GO membership table.

        The default here is the sparse (memberships only) encoding, which is
        what every engine actually joins against; pass ``include_zeros=True``
        for the paper's fully materialised 0/1 schema.
        """
        return self.ontology.to_relational(include_zeros=include_zeros)

    def describe(self) -> dict:
        """Return a small summary dict (used by examples and reports)."""
        return {
            "size": self.spec.name,
            "seed": self.seed,
            "n_genes": self.n_genes,
            "n_patients": self.n_patients,
            "n_go_terms": self.ontology.n_go_terms,
            "microarray_cells": self.spec.n_cells,
            "microarray_mbytes": round(self.spec.microarray_bytes / 1e6, 3),
        }

    def validate(self) -> None:
        """Check cross-table consistency; raises ``ValueError`` on mismatch."""
        if self.microarray.n_patients != self.patients.n_patients:
            raise ValueError("microarray and patient metadata disagree on patient count")
        if self.microarray.n_genes != self.genes.n_genes:
            raise ValueError("microarray and gene metadata disagree on gene count")
        if self.ontology.n_genes != self.genes.n_genes:
            raise ValueError("ontology and gene metadata disagree on gene count")
        if not np.all(np.isfinite(self.microarray.matrix)):
            raise ValueError("microarray matrix contains non-finite values")
        if np.any(self.microarray.matrix < 0):
            raise ValueError("microarray intensities must be non-negative")
