"""Microarray (expression matrix) generator.

The microarray dataset is the central GenBase table: a dense matrix of
expression values with one row per patient and one column per gene
(Section 3.1.1 of the paper).  It exists in two logical representations:

* relational form: ``microarray(gene_id, patient_id, expression_value)``
* array form: ``expression_value[patient_id, gene_id]``

The generator plants structure that the benchmark queries are designed to
recover:

* a low-rank component (rank ``spec.latent_rank``) so SVD has a clear signal,
* co-regulated gene *modules* that create high pairwise covariance,
* ``spec.n_biclusters`` biclusters — contiguous patient/gene blocks whose
  expression is shifted down (under-expressed), the pattern Q3 looks for,
* a set of differentially expressed genes tied to enriched GO terms (Q5).

Expression values are kept positive (as raw intensities are) by applying a
softplus-style shift at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.sizes import SizeSpec, resolve_size


@dataclass
class PlantedStructure:
    """Ground-truth structure planted in a generated microarray matrix.

    This is not part of the benchmark data itself; tests and examples use it
    to verify that the analytics recover what was planted.
    """

    latent_rank: int
    gene_modules: list[np.ndarray] = field(default_factory=list)
    bicluster_rows: list[np.ndarray] = field(default_factory=list)
    bicluster_cols: list[np.ndarray] = field(default_factory=list)
    causal_genes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))
    causal_weights: np.ndarray = field(default_factory=lambda: np.empty(0))
    differential_genes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))


@dataclass
class MicroarrayData:
    """The generated microarray dataset.

    Attributes:
        matrix: dense ``(n_patients, n_genes)`` float64 array of expression
            values, the *array form* of the data.
        structure: the planted ground truth (for validation only).
    """

    matrix: np.ndarray
    structure: PlantedStructure

    @property
    def n_patients(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_genes(self) -> int:
        return self.matrix.shape[1]

    def to_relational(self) -> np.ndarray:
        """Return the relational form as an ``(n_cells, 3)`` array.

        Columns are ``(gene_id, patient_id, expression_value)`` in the order
        used by the paper's relational schema.  Gene and patient ids are
        0-based integers stored as floats (the relational engines re-type
        them on load).
        """
        n_patients, n_genes = self.matrix.shape
        gene_ids, patient_ids = np.meshgrid(
            np.arange(n_genes), np.arange(n_patients), indexing="xy"
        )
        return np.column_stack(
            [gene_ids.ravel(), patient_ids.ravel(), self.matrix.ravel()]
        ).astype(np.float64)

    def rows(self):
        """Yield relational tuples ``(gene_id, patient_id, value)`` lazily."""
        n_patients, n_genes = self.matrix.shape
        for patient_id in range(n_patients):
            row = self.matrix[patient_id]
            for gene_id in range(n_genes):
                yield (gene_id, patient_id, float(row[gene_id]))


def _planted_modules(rng: np.random.Generator, spec: SizeSpec) -> list[np.ndarray]:
    """Pick disjoint groups of genes that will be co-regulated."""
    n_modules = max(2, spec.latent_rank // 2)
    module_size = max(2, spec.n_genes // (4 * n_modules))
    gene_order = rng.permutation(spec.n_genes)
    modules = []
    cursor = 0
    for _ in range(n_modules):
        members = gene_order[cursor:cursor + module_size]
        if len(members) < 2:
            break
        modules.append(np.sort(members))
        cursor += module_size
    return modules


def generate_microarray(
    spec: SizeSpec | str,
    seed: int = 0,
    noise_scale: float = 0.25,
) -> MicroarrayData:
    """Generate a synthetic microarray matrix with planted structure.

    Args:
        spec: a size preset name or explicit :class:`SizeSpec`.
        seed: RNG seed; the output is deterministic for a given (spec, seed).
        noise_scale: standard deviation of the additive Gaussian noise,
            relative to the planted signal scale of 1.0.

    Returns:
        A :class:`MicroarrayData` with a positive dense expression matrix.
    """
    spec = resolve_size(spec)
    rng = np.random.default_rng(seed)
    n_patients, n_genes = spec.n_patients, spec.n_genes
    rank = min(spec.latent_rank, n_genes, n_patients)

    # Low-rank latent structure: patients load on `rank` biological factors,
    # genes respond to them.  Factor magnitudes decay so the singular value
    # spectrum has a visible elbow at `rank`.
    patient_factors = rng.standard_normal((n_patients, rank))
    gene_loadings = rng.standard_normal((rank, n_genes))
    factor_scales = np.linspace(2.0, 0.8, rank)
    matrix = (patient_factors * factor_scales) @ gene_loadings

    # Co-regulated gene modules: add a shared per-patient signal to each
    # module so those gene pairs have high covariance (Q2's target).
    structure = PlantedStructure(latent_rank=rank)
    structure.gene_modules = _planted_modules(rng, spec)
    for module in structure.gene_modules:
        shared = rng.standard_normal(n_patients) * 1.5
        response = 0.5 + rng.random(len(module))
        matrix[:, module] += np.outer(shared, response)

    # Planted biclusters: blocks of patients x genes that are uniformly
    # under-expressed (values pulled toward a low constant), the pattern the
    # biclustering query looks for.
    n_biclusters = min(spec.n_biclusters, max(1, n_genes // 10), max(1, n_patients // 10))
    for _ in range(n_biclusters):
        n_rows = max(2, n_patients // 10)
        n_cols = max(2, n_genes // 10)
        row_idx = np.sort(rng.choice(n_patients, size=n_rows, replace=False))
        col_idx = np.sort(rng.choice(n_genes, size=n_cols, replace=False))
        matrix[np.ix_(row_idx, col_idx)] = (
            -3.0 + 0.1 * rng.standard_normal((n_rows, n_cols))
        )
        structure.bicluster_rows.append(row_idx)
        structure.bicluster_cols.append(col_idx)

    # Differentially expressed genes: a subset of genes get a consistent
    # positive shift, giving the enrichment query (Q5) something to find.
    n_diff = max(2, n_genes // 10)
    structure.differential_genes = np.sort(
        rng.choice(n_genes, size=n_diff, replace=False)
    )
    matrix[:, structure.differential_genes] += 2.0

    # Causal genes for the regression query are chosen here so that the
    # patient generator can build drug response from the same matrix.
    n_causal = min(spec.n_causal_genes, n_genes)
    structure.causal_genes = np.sort(rng.choice(n_genes, size=n_causal, replace=False))
    structure.causal_weights = rng.uniform(0.5, 1.5, size=n_causal) * rng.choice(
        [-1.0, 1.0], size=n_causal
    )

    # Additive measurement noise, then shift to positive intensities.
    matrix += noise_scale * rng.standard_normal((n_patients, n_genes))
    matrix = np.log1p(np.exp(matrix))  # softplus keeps intensities positive

    return MicroarrayData(matrix=np.ascontiguousarray(matrix), structure=structure)
